"""Table II, fixed-(Dm, V) rows — Corollary 4.6.

The paper proves RCQP drops from NEXPTIME-complete to Σᵖ₃-complete when
master data and constraints are fixed.  Its proof sketch relies on a CQ
subquery with non-monotone semantics (see
``repro.reductions.qsat_to_rcqp_fixed``); the executable construction here
instantiates the same machinery for the ∃∀ fragment, which still shows the
headline: with *one fixed* ``(Dm, V)``, RCQP remains NP-hard-and-beyond
(Σᵖ₂-hard), far above the coNP of the IND rows.

The benchmark enumerates ∃-assignments, checking each candidate witness
with the exact RCDP decider and cross-checking the overall verdict against
QBF expansion.
"""

import itertools
import random

import pytest

from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.reductions.qsat_to_rcqp_fixed import (
    reduce_exists_forall_3sat_to_rcqp)
from repro.solvers.qbf import random_exists_forall_3sat

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)



def _rcqp_by_witness_enumeration(instance) -> bool:
    formula = instance.formula
    for values in itertools.product((False, True),
                                    repeat=len(formula.existential)):
        assignment = dict(zip(formula.existential, values))
        witness = instance.witness_for(assignment)
        verdict = decide_rcdp(instance.query, witness, instance.master,
                              list(instance.constraints))
        if verdict.status is RCDPStatus.COMPLETE:
            return True
    return False


@pytest.mark.parametrize("num_vars", [1, 2, 3])
def test_fixed_rcqp_scaling(benchmark, num_vars):
    """Witness search cost grows exponentially with the ∃-block, on one
    fixed (Dm, V)."""
    rng = random.Random(num_vars)
    formula = random_exists_forall_3sat(num_vars, 2, 3, rng)
    instance = reduce_exists_forall_3sat_to_rcqp(formula)

    nonempty = benchmark(_rcqp_by_witness_enumeration, instance)
    assert nonempty == formula.is_true()
    benchmark.extra_info["existential_vars"] = num_vars
    benchmark.extra_info["formula_true"] = formula.is_true()


def test_fixed_master_and_constraints_are_shared(benchmark):
    """The construction's (Dm, V) must be identical across formulas —
    that is what 'fixed' means in Corollary 4.6."""
    rng = random.Random(7)
    formulas = [random_exists_forall_3sat(2, 2, rng.randint(1, 4), rng)
                for _ in range(4)]

    def build_all():
        return [reduce_exists_forall_3sat_to_rcqp(f) for f in formulas]

    instances = benchmark(build_all)
    first = instances[0]
    for other in instances[1:]:
        assert other.master == first.master
        assert [c.name for c in other.constraints] == \
            [c.name for c in first.constraints]


@pytest.mark.parametrize("seed", [0, 1])
def test_fixed_rcqp_agreement_batch(benchmark, seed):
    rng = random.Random(seed)
    formulas = [random_exists_forall_3sat(2, 2, rng.randint(1, 5), rng)
                for _ in range(4)]
    instances = [reduce_exists_forall_3sat_to_rcqp(f) for f in formulas]

    def run_batch():
        return [_rcqp_by_witness_enumeration(i) for i in instances]

    verdicts = benchmark(run_batch)
    agreement = sum(v == f.is_true()
                    for v, f in zip(verdicts, formulas))
    assert agreement == len(formulas)
    benchmark.extra_info["agreement"] = f"{agreement}/{len(formulas)}"
