"""CHAR experiments: the characterizations versus brute force.

Proposition 3.3 / Corollaries 3.4–3.5 say the valuation-based conditions
C1–C4 decide RCDP; Propositions 4.2/4.3 say E1–E6 decide RCQP.  These
benches measure both sides of that trade on identical random workloads:

* the characterization-based decider (polynomial-space enumeration over
  the active domain), versus
* the definition-level brute-force oracle (enumerating extension sets).

Agreement is asserted on every instance; the timing ratio is the measured
value of the small-model property.
"""

import random

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.containment import satisfies_all
from repro.constraints.ind import InclusionDependency
from repro.core.bounded import brute_force_rcdp, brute_force_rcqp
from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)


SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
IND = InclusionDependency(
    "S", ["cid"], "M", ["cid"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)
QUERY = cq([var("c")], [rel("S", "e0", var("c"))], name="Q")


def _random_databases(seed: int, count: int):
    rng = random.Random(seed)
    rows_space = [("e0", "c1"), ("e0", "c2"), ("e1", "c1"), ("e1", "c2")]
    databases = []
    for _ in range(count):
        rows = {row for row in rows_space if rng.random() < 0.5}
        databases.append(Instance(SCHEMA, {"S": rows}))
    return databases


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_char_c_rcdp_characterization(benchmark, seed):
    """CHAR-C: the C1–C3 decider on a batch of random databases."""
    databases = [db for db in _random_databases(seed, 8)
                 if satisfies_all(db, DM, [IND])]

    def run():
        return [decide_rcdp(QUERY, db, DM, [IND]) for db in databases]

    verdicts = benchmark(run)
    # agreement with the brute-force oracle on every instance
    for db, verdict in zip(databases, verdicts):
        oracle = brute_force_rcdp(QUERY, db, DM, [IND], max_extra_facts=1)
        expected_incomplete = oracle.status is RCDPStatus.INCOMPLETE
        assert verdict.is_incomplete == expected_incomplete
    benchmark.extra_info["databases"] = len(databases)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_char_c_brute_force_baseline(benchmark, seed):
    """The definition-level oracle on the same batch (the baseline)."""
    databases = [db for db in _random_databases(seed, 8)
                 if satisfies_all(db, DM, [IND])]

    def run():
        return [brute_force_rcdp(QUERY, db, DM, [IND], max_extra_facts=1)
                for db in databases]

    benchmark(run)
    benchmark.extra_info["databases"] = len(databases)


def test_char_e_rcqp_characterization_vs_witness_search(benchmark):
    """CHAR-E: the E-condition decider vs brute-force witness search on
    the Example 4.1 workload."""
    constraints = FunctionalDependency(
        "S", ["eid"], ["cid"]).to_containment_constraints(SCHEMA)
    query = cq([var("c")], [rel("S", "e0", var("c"))], name="Q")

    result = benchmark(decide_rcqp, query, Instance(MASTER_SCHEMA),
                       constraints, SCHEMA)
    assert result.status is RCQPStatus.NONEMPTY
    # the oracle agrees
    oracle = brute_force_rcqp(query, Instance(MASTER_SCHEMA), constraints,
                              SCHEMA, max_database_size=1)
    assert oracle.status is RCQPStatus.NONEMPTY


def test_char_e_witness_search_baseline(benchmark):
    constraints = FunctionalDependency(
        "S", ["eid"], ["cid"]).to_containment_constraints(SCHEMA)
    query = cq([var("c")], [rel("S", "e0", var("c"))], name="Q")

    result = benchmark(brute_force_rcqp, query, Instance(MASTER_SCHEMA),
                       constraints, SCHEMA, max_database_size=1)
    assert result.status is RCQPStatus.NONEMPTY
