"""Shared shape of every ``BENCH_*.json`` report.

Each ``benchmarks/bench_*.py`` entry point that writes a JSON report
routes it through this module, so CI artifacts and local runs share one
schema regardless of which bench produced them::

    {
      "bench_report_version": 1,
      "name": "engine",              # bench identity (BENCH_<name>.json)
      "smoke": false,
      "rows": [                      # one normalized row per measurement
        {"name": "rcdp/n=6",
         "wall_s": 0.41,             # the row's headline wall time
         "ticks": {"valuations": 6144},   # governor tick ledger (or {})
         "verdicts": {"complete": 1},     # verdict → count (or {})
         "extra": {...}}             # bench-specific detail, free-form
      ],
      "gates": [                     # regression gates, pass/fail
        {"name": "engine_speedup", "required": 5.0, "measured": 27.3,
         "higher_is_better": true, "enforced": true, "passed": true}
      ],
      "extra": {...}                 # bench-specific report detail
    }

The helpers are deliberately dumb: rows and gates are plain dicts, the
writer pretty-prints with a trailing newline, and :func:`check_gates`
is the one place the "did any enforced gate fail" exit-code logic
lives.
"""

from __future__ import annotations

import json
import os
import sys

REPORT_VERSION = 1

__all__ = ["REPORT_VERSION", "bench_row", "bench_gate", "bench_report",
           "write_report", "check_gates"]


def bench_row(name: str, wall_s: float, *,
              ticks: dict | None = None,
              verdicts: dict | None = None,
              extra: dict | None = None) -> dict:
    """One normalized measurement row."""
    return {
        "name": name,
        "wall_s": round(float(wall_s), 6),
        "ticks": dict(ticks or {}),
        "verdicts": dict(verdicts or {}),
        "extra": dict(extra or {}),
    }


def bench_gate(name: str, *, required: float, measured: float | None,
               higher_is_better: bool = True, enforced: bool = True,
               note: str | None = None) -> dict:
    """One regression gate.  ``passed`` is computed here so every bench
    agrees on the comparison direction; an unenforced or unmeasured gate
    trivially passes (it is recorded, not judged)."""
    if measured is None or not enforced:
        passed = True
    elif higher_is_better:
        passed = measured >= required
    else:
        passed = measured <= required
    gate = {
        "name": name,
        "required": required,
        "measured": measured,
        "higher_is_better": higher_is_better,
        "enforced": enforced,
        "passed": passed,
    }
    if note:
        gate["note"] = note
    return gate


def bench_report(name: str, rows: list[dict], *, smoke: bool,
                 gates: list[dict] | None = None,
                 extra: dict | None = None) -> dict:
    return {
        "bench_report_version": REPORT_VERSION,
        "name": name,
        "smoke": bool(smoke),
        "rows": list(rows),
        "gates": list(gates or []),
        "extra": dict(extra or {}),
    }


def write_report(path: str, report: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, ensure_ascii=False)
        handle.write("\n")
    print(f"wrote {path}")
    _ledger_append(report)


def _ledger_append(report: dict) -> None:
    """With ``$REPRO_LEDGER`` set, every bench row also lands in the
    persistent run ledger (procedure ``bench-<name>``), so benchmark
    history accumulates next to CLI and corpus runs."""
    path = os.environ.get("REPRO_LEDGER")
    if not path:
        return
    try:
        from repro.obs.ledger import RunRecord, append_record
    except ImportError:  # pragma: no cover - bench run without src
        return
    for row in report.get("rows", []):
        verdicts = row.get("verdicts") or {}
        verdict = (max(sorted(verdicts), key=verdicts.get)
                   if verdicts else "")
        append_record(path, RunRecord(
            procedure=f"bench-{report.get('name', '?')}",
            label=row.get("name", "?"), verdict=verdict, backend="-",
            workers=0, wall_s=row.get("wall_s", 0.0),
            ticks=dict(row.get("ticks") or {}),
            extra={"smoke": bool(report.get("smoke"))}))


def check_gates(report: dict, *, stream=None) -> int:
    """Print a FAIL line per failed enforced gate; return the exit code
    (0 = all gates pass, 1 = at least one failed)."""
    stream = stream if stream is not None else sys.stderr
    failed = 0
    for gate in report.get("gates", []):
        if gate.get("enforced") and not gate.get("passed"):
            direction = "≥" if gate.get("higher_is_better", True) else "≤"
            print(f"FAIL: gate {gate['name']}: measured "
                  f"{gate['measured']} violates required {direction} "
                  f"{gate['required']}", file=stream)
            failed += 1
    return 1 if failed else 0
