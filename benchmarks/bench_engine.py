"""Engine ablation benchmark: naive vs indexed vs delta evaluation.

Times the Table-1 RCDP workload that motivated the engine — ``Q2`` under
the Example 2.1 constraints ``supt⊆dcust`` (IND) and ``φ1`` (at-most-k,
a (k+1)-way ``Supt`` self-join with pairwise inequalities) on generated
CRM scenarios — in two decider modes:

* **naive** — ``decide_rcdp(use_engine=False)``: the pre-engine
  backtracking evaluators, full-relation rescans, every candidate
  extension materialized and re-evaluated from scratch;
* **engine** — ``decide_rcdp(use_engine=True)``: compiled plans,
  hash-indexed joins, memoized master projections, and semi-naive delta
  evaluation of the per-valuation extension checks.

A second section isolates the evaluation strategies on the φ1 check
itself (the decider hot loop's unit of work): naive re-evaluation vs
indexed re-evaluation vs the semi-naive delta rule.

A third section pins the observability contract: a governed decider run
with a *disabled* :class:`~repro.obs.Observation` attached must stay
within ``OBS_OFF_OVERHEAD`` of the same run with no observation at all
(the enabled-tracing cost is reported informationally).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke]

Writes ``BENCH_engine.json`` (normalized ``report_schema`` shape) and,
unless ``--smoke``, gates on the engine's ≥ 5× speedup over naive at
the largest scenario size and on the disabled-observation overhead.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from contextlib import contextmanager

from report_schema import (bench_gate, bench_report, bench_row,
                           check_gates, write_report)
from repro.core.rcdp import decide_rcdp
from repro.engine import EvaluationContext
from repro.mdm.generators import GeneratorConfig, generate_scenario
from repro.obs import Observation
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instance import extend_unvalidated
from repro.runtime import Budget, ExecutionGovernor

REQUIRED_SPEEDUP = 5.0
#: Disabled tracing must cost < 5% on a governed decider run.
OBS_OFF_OVERHEAD = 1.05


@contextmanager
def seed_evaluators():
    """Restore the pre-engine behavior: ``evaluate`` becomes the
    backtracking ``evaluate_naive`` (kept on every query class as the
    testing oracle).  This is the honest *naive* baseline — plain
    ``evaluate`` is engine-backed even without a context."""
    patched = []
    for cls in (ConjunctiveQuery, UnionOfConjunctiveQueries):
        patched.append((cls, cls.evaluate))
        cls.evaluate = (
            lambda self, instance, *, context=None:
            self.evaluate_naive(instance))
    try:
        yield
    finally:
        for cls, original in patched:
            cls.evaluate = original


def _scenario(num_domestic: int):
    config = GeneratorConfig(
        num_domestic=num_domestic, num_international=0,
        num_employees=3, support_probability=1.0,
        missing_support_fraction=0.0)
    return generate_scenario(config, random.Random(42))


def _time(fn, repeats: int) -> tuple[float, object]:
    """Best-of-*repeats* wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_rcdp(num_domestic: int, repeats: int) -> dict:
    """Full decider, engine on vs off, verdicts cross-checked.

    Every employee supports exactly ``k = num_domestic - 1`` customers
    while master data holds one more, so every candidate extension the
    search proposes passes the IND prefilter and must be rejected by the
    (k+1)-way φ1 self-join — the decider certifies COMPLETE through the
    expensive constraint-check path, which is exactly what the engine's
    delta rule accelerates.
    """
    scenario = _scenario(num_domestic)
    spare = f"c{num_domestic - 1}"
    missing = [(f"e{i}", spare) for i in range(3)]
    database = scenario.database(missing_support=missing)
    master = scenario.master()
    k = num_domestic - 1
    constraints = [scenario.supt_cid_ind(), scenario.phi1_at_most_k(k)]
    query = scenario.q2_all_supported_by("e0")

    with seed_evaluators():
        naive_s, naive = _time(
            lambda: decide_rcdp(query, database, master, constraints,
                                use_engine=False), repeats)
    indexed_s, indexed = _time(
        lambda: decide_rcdp(query, database, master, constraints,
                            use_engine=False), repeats)
    engine_s, engine = _time(
        lambda: decide_rcdp(query, database, master, constraints),
        repeats)
    assert engine.status is indexed.status is naive.status, (
        f"verdict mismatch at n={num_domestic}: engine {engine.status}, "
        f"indexed {indexed.status}, naive {naive.status}")
    stats = engine.statistics
    return {
        "num_domestic": num_domestic,
        "k": k,
        "supt_rows": len(database.relation("Supt")),
        "verdict": engine.status.value,
        "naive_s": round(naive_s, 6),
        "indexed_s": round(indexed_s, 6),
        "engine_s": round(engine_s, 6),
        "indexed_speedup": round(naive_s / indexed_s, 2)
        if indexed_s else None,
        "speedup": round(naive_s / engine_s, 2) if engine_s else None,
        "engine_stats": {
            "valuations_examined": stats.valuations_examined,
            "plans_compiled": stats.plans_compiled,
            "index_builds": stats.index_builds,
            "engine_cache_hits": stats.engine_cache_hits,
            "delta_evaluations": stats.delta_evaluations,
            "full_evaluations": stats.full_evaluations,
        },
    }


def bench_extension_check(num_domestic: int, repeats: int) -> dict:
    """One hot-loop unit of work, three ways: is the φ1 query's answer
    changed by adding a single Supt fact?"""
    scenario = _scenario(num_domestic)
    database = scenario.database()
    k = num_domestic
    phi1 = scenario.phi1_at_most_k(k).query
    delta = [("Supt", ("e0", "sales", f"c{num_domestic}"))]

    def naive():
        return phi1.evaluate_naive(extend_unvalidated(database, delta))

    def indexed():
        return phi1.evaluate(extend_unvalidated(database, delta))

    context = EvaluationContext()
    context.evaluate(phi1, database)  # warm: Q(D) cached, indexes built

    def via_delta():
        return context.evaluate_extension(phi1, database, delta)

    naive_s, naive_rows = _time(naive, repeats)
    indexed_s, indexed_rows = _time(indexed, repeats)
    delta_s, delta_rows = _time(via_delta, repeats)
    assert naive_rows == indexed_rows == delta_rows
    return {
        "num_domestic": num_domestic,
        "k": k,
        "naive_s": round(naive_s, 6),
        "indexed_s": round(indexed_s, 6),
        "delta_s": round(delta_s, 6),
        "indexed_speedup": round(naive_s / indexed_s, 2)
        if indexed_s else None,
        "delta_speedup": round(naive_s / delta_s, 2) if delta_s else None,
    }


def bench_obs_overhead(num_domestic: int, repeats: int) -> dict:
    """The same governed decider run four ways: no observation,
    observation attached but disabled (what every governed production
    run pays), observation enabled (full span capture), and the
    run-ledger path (decide + one crash-safe ``RunRecord`` append —
    what ``--ledger`` adds to a production run).

    Each timed call builds a fresh governor with an unlimited tick
    ledger so the variants differ *only* in the attachment — the
    disabled case exercises the ``obs_of``/null-span fast path at every
    instrumented site, and the ledger case pins that persistence is an
    O(1) post-verdict append, not an in-loop cost.
    """
    scenario = _scenario(num_domestic)
    spare = f"c{num_domestic - 1}"
    missing = [(f"e{i}", spare) for i in range(3)]
    database = scenario.database(missing_support=missing)
    master = scenario.master()
    constraints = [scenario.supt_cid_ind(),
                   scenario.phi1_at_most_k(num_domestic - 1)]
    query = scenario.q2_all_supported_by("e0")

    def run(attach: bool | None):
        governor = ExecutionGovernor(budget=Budget())
        if attach is not None:
            Observation.attach(governor, enabled=attach)
        return decide_rcdp(query, database, master, constraints,
                           governor=governor)

    import os
    import tempfile

    from repro.obs.ledger import RunRecord, append_record, run_key

    def run_with_ledger(ledger_path: str):
        governor = ExecutionGovernor(budget=Budget())
        result = decide_rcdp(query, database, master, constraints,
                             governor=governor)
        append_record(ledger_path, RunRecord(
            procedure="rcdp", label=f"bench-n{num_domestic}",
            key=run_key("rcdp", query, database, master, constraints),
            verdict=result.status.value,
            ticks=dict(governor.budget.snapshot()),
            statistics={"valuations_examined":
                        result.statistics.valuations_examined}))
        return result

    gov_s, bare = _time(lambda: run(None), repeats)
    obs_off_s, off = _time(lambda: run(False), repeats)
    obs_on_s, on = _time(lambda: run(True), repeats)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        ledger_path = os.path.join(tmp, "ledger.jsonl")
        ledger_s, led = _time(lambda: run_with_ledger(ledger_path),
                              repeats)
    assert bare.status is off.status is on.status is led.status, (
        f"verdict changed under observation at n={num_domestic}")
    return {
        "num_domestic": num_domestic,
        "verdict": bare.status.value,
        "valuations": bare.statistics.valuations_examined,
        "gov_s": round(gov_s, 6),
        "obs_off_s": round(obs_off_s, 6),
        "obs_on_s": round(obs_on_s, 6),
        "ledger_s": round(ledger_s, 6),
        "off_overhead": round(obs_off_s / gov_s, 4) if gov_s else None,
        "on_overhead": round(obs_on_s / gov_s, 4) if gov_s else None,
        "ledger_overhead": round(ledger_s / gov_s, 4) if gov_s else None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, single repeat, no speedup gate "
                             "(the CI mode)")
    parser.add_argument("--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    rcdp_sizes = [2, 3] if args.smoke else [3, 4, 5, 6]
    extension_sizes = [2, 3] if args.smoke else [3, 4, 5, 6]
    repeats = 1 if args.smoke else 3
    # A 5% overhead gate needs noise suppression: a mid-ladder size
    # (long enough to time, short enough to repeat) and more best-of
    # rounds than the ablation rows.
    obs_size = 3 if args.smoke else 5
    obs_repeats = 2 if args.smoke else 5

    rcdp_rows = []
    for size in rcdp_sizes:
        # The naive decider is best-of-1: at the largest size one run
        # already takes tens of seconds.
        row = bench_rcdp(size, 1 if size >= 6 else repeats)
        rcdp_rows.append(row)
        print(f"rcdp n={size}: naive {row['naive_s']:.4f}s, "
              f"indexed {row['indexed_s']:.4f}s "
              f"({row['indexed_speedup']}x), "
              f"engine {row['engine_s']:.4f}s "
              f"({row['speedup']}x), verdict {row['verdict']}")

    extension_rows = []
    for size in extension_sizes:
        row = bench_extension_check(size, repeats)
        extension_rows.append(row)
        print(f"extension-check n={size}: naive {row['naive_s']:.4f}s, "
              f"indexed {row['indexed_s']:.4f}s "
              f"({row['indexed_speedup']}x), "
              f"delta {row['delta_s']:.4f}s ({row['delta_speedup']}x)")

    obs_row = bench_obs_overhead(obs_size, obs_repeats)
    print(f"obs-overhead n={obs_size}: governed {obs_row['gov_s']:.4f}s, "
          f"obs-off {obs_row['obs_off_s']:.4f}s "
          f"({obs_row['off_overhead']}x), "
          f"obs-on {obs_row['obs_on_s']:.4f}s "
          f"({obs_row['on_overhead']}x)")

    largest = rcdp_rows[-1]
    rows = [bench_row(f"rcdp/n={row['num_domestic']}", row["engine_s"],
                      ticks={"valuations":
                             row["engine_stats"]["valuations_examined"]},
                      verdicts={row["verdict"]: 1}, extra=row)
            for row in rcdp_rows]
    rows += [bench_row(f"extension-check/n={row['num_domestic']}",
                       row["delta_s"], extra=row)
             for row in extension_rows]
    rows.append(bench_row(f"obs-overhead/n={obs_row['num_domestic']}",
                          obs_row["obs_off_s"],
                          ticks={"valuations": obs_row["valuations"]},
                          verdicts={obs_row["verdict"]: 1},
                          extra=obs_row))
    gates = [
        bench_gate("engine_speedup", required=REQUIRED_SPEEDUP,
                   measured=largest["speedup"],
                   enforced=not args.smoke),
        bench_gate("obs_disabled_overhead", required=OBS_OFF_OVERHEAD,
                   measured=obs_row["off_overhead"],
                   higher_is_better=False, enforced=not args.smoke),
        bench_gate("ledger_overhead", required=OBS_OFF_OVERHEAD,
                   measured=obs_row["ledger_overhead"],
                   higher_is_better=False, enforced=not args.smoke,
                   note="decide + one RunRecord append vs bare "
                        "governed decide"),
    ]
    report = bench_report(
        "engine", rows, smoke=args.smoke, gates=gates,
        extra={"workload": "RCDP Q2 + {supt⊆dcust, φ1(at-most-k)} on "
                           "generated CRM scenarios (Table-1 (CQ, CQ) "
                           "row)",
               "required_speedup": REQUIRED_SPEEDUP,
               "largest_size_speedup": largest["speedup"]})
    write_report(args.output, report)
    return check_gates(report, stream=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
