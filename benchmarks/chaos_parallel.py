"""Chaos harness: supervised parallel search under injected crashes.

Runs the Table-1 RCDP true-family workload at ``--workers`` (default 3)
with process-level fault injection — every governor tick is a
``--crash-probability`` chance the worker dies — across several seeds,
and asserts the supervised pool's contract on each run:

* the verdict, explanation, and exact full-enumeration statistics
  equal the serial run's (full differential equality);
* the supervision counters account for what happened (a crash was
  either retried or quarantined, never dropped);
* the final seed's run is traced, and the trace passes the full
  ``check_trace`` accounting (span tree, per-lane overlap, root tick
  deltas vs. the governor ledger, ledger vs. statistics) — validate
  the written file independently with ``repro trace --check``.

Run from the repository root::

    PYTHONPATH=src:benchmarks python benchmarks/chaos_parallel.py
        [--seeds N] [--workers N] [--crash-probability P]
        [--trace-out FILE.jsonl]

Exits 0 when every seed upholds the contract, 1 otherwise.  The crash
probability must stay < 1: quarantine guarantees termination at any
rate, but a certain-crash schedule never exercises the retry path.
"""

from __future__ import annotations

import argparse
import sys
import time

from bench_parallel import _workload
from repro import Budget, ExecutionGovernor, FaultInjector, RetryPolicy
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.obs import Observation, check_trace, trace_records, write_trace


def chaos_run(args_tuple, serial, *, workers: int, seed: int,
              crash_probability: float, observe: bool):
    governor = ExecutionGovernor(
        budget=Budget(),
        faults=FaultInjector(crash_probability=crash_probability,
                             seed=seed),
        retry=RetryPolicy(max_retries=2, backoff_base=0.001,
                          backoff_cap=0.05, heartbeat=0.05))
    if observe:
        Observation.attach(governor)
    start = time.perf_counter()
    result = decide_rcdp(*args_tuple, workers=workers, governor=governor)
    elapsed = time.perf_counter() - start

    problems = []
    if result.status is not serial.status:
        problems.append(f"verdict {result.status} != {serial.status}")
    if result.explanation != serial.explanation:
        problems.append("explanation diverged from serial")
    if (result.statistics.valuations_examined
            != serial.statistics.valuations_examined):
        problems.append(
            f"valuations_examined {result.statistics.valuations_examined}"
            f" != serial {serial.statistics.valuations_examined}")
    return governor, result, elapsed, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--crash-probability", type=float, default=0.2)
    parser.add_argument("--size", type=int, default=5, metavar="N",
                        help="universal variables in the workload")
    parser.add_argument("--trace-out", default="CHAOS_trace.jsonl")
    args = parser.parse_args(argv)
    if not 0.0 <= args.crash_probability < 1.0:
        parser.error("--crash-probability must be in [0, 1)")

    instance = _workload(args.size)
    decide_args = (instance.query, instance.database, instance.master,
                   list(instance.constraints))
    serial = decide_rcdp(*decide_args)
    assert serial.status is RCDPStatus.COMPLETE
    print(f"serial: {serial.status.name}, "
          f"{serial.statistics.valuations_examined} valuations")

    failed = 0
    crashes = retries = quarantines = 0
    for index in range(args.seeds):
        observe = index == args.seeds - 1
        governor, result, elapsed, problems = chaos_run(
            decide_args, serial, workers=args.workers, seed=index,
            crash_probability=args.crash_probability, observe=observe)
        counters = (governor.obs.metrics.counters if observe else {})
        status = "ok" if not problems else "FAIL"
        print(f"seed {index}: {status} {result.status.name} "
              f"{result.statistics.valuations_examined} valuations "
              f"in {elapsed:.2f}s")
        for problem in problems:
            print(f"  FAIL: {problem}", file=sys.stderr)
            failed += 1
        if observe:
            crashes = counters.get("parallel.crash", 0)
            retries = counters.get("parallel.retry", 0)
            quarantines = counters.get("parallel.quarantine", 0)
            observation = governor.obs
            observation.finalize(governor, result.statistics)
            payload = observation.payload()
            records = trace_records(
                payload["spans"], procedure="rcdp",
                command=f"chaos_parallel --seeds {args.seeds} "
                        f"--workers {args.workers}",
                metrics=payload["metrics"],
                statistics=result.statistics,
                ticks=dict(governor.budget.snapshot()),
                verdict=result.status.name, exhausted=False)
            trace_problems = check_trace(records)
            for problem in trace_problems:
                print(f"  FAIL trace: {problem}", file=sys.stderr)
                failed += 1
            write_trace(args.trace_out, records)
            # Every crash must be accounted for: retried or quarantined.
            if crashes > retries + quarantines:
                print(f"  FAIL: {crashes} crash(es) but only {retries} "
                      f"retry(s) + {quarantines} quarantine(s)",
                      file=sys.stderr)
                failed += 1

    print(f"traced seed: {crashes} crash(es), {retries} retry(s), "
          f"{quarantines} quarantine(s); trace written to "
          f"{args.trace_out}")
    if failed:
        print(f"{failed} chaos check(s) failed", file=sys.stderr)
        return 1
    print(f"all {args.seeds} chaos seed(s) match the serial run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
