"""Analyzer benchmark: lint cost as scenarios grow.

The static analyzer runs inside every decider call (the cheap pass) and
over whole bundles in CI (the deep pass), so its cost has to stay
negligible next to the exponential searches it guards.  This bench times
both passes on generated bundles with a growing constraint set:

* **cheap** — ``lint_bundle(deep=False, flow=False)``: what the
  deciders pay on every call (parse + safety + schema + union-find
  satisfiability);
* **deep** — ``lint_bundle(deep=True, flow=False)``: adds the NP-hard
  Chandra–Merlin minimization (RC005) and pairwise constraint
  subsumption (RC103), which is quadratic in the constraint count;
* **flow** — ``lint_bundle(deep=True, flow=True)``: adds the
  whole-scenario pass (RC3xx interaction graph + RC4xx cost model);
  its *delta* over the deep pass is gated, since ``repro lint`` runs
  it by default.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_lint.py [--smoke]

Writes ``BENCH_lint.json`` (normalized ``report_schema`` shape).
Unless ``--smoke``, gates on the cheap pass staying under
``CHEAP_BUDGET_S`` per bundle at the largest size — the regression
guard for the decider fast-fail path.
"""

from __future__ import annotations

import argparse
import sys
import time

from report_schema import (bench_gate, bench_report, bench_row,
                           check_gates, write_report)
from repro.analysis import lint_bundle

#: The decider-path pass must stay well under a millisecond-scale
#: budget; a 50 ms ceiling at 48 constraints leaves 10× headroom.
CHEAP_BUDGET_S = 0.050

#: The flow pass rides on every ``repro lint`` invocation; its delta
#: over the deep pass must stay interactive at the largest size.
FLOW_BUDGET_S = 0.200


def make_bundle(num_constraints: int) -> dict:
    """A bundle whose constraint set grows linearly: one IND anchor,
    then alternating narrowed (subsumed), vacuous, and fresh-column
    variants so every rule family has work to do."""
    constraints = [
        {"name": "anchor", "query": {"language": "CQ",
         "text": "V(x) :- R(x, y)"},
         "projection": {"relation": "M", "columns": [0]}},
    ]
    for index in range(num_constraints - 1):
        kind = index % 3
        if kind == 0:      # subsumed by the anchor (RC103 work)
            text = f"V(x) :- R(x, {index})"
        elif kind == 1:    # vacuous (RC102 work)
            text = f"V(x) :- R(x, y), x = {index}, x = {index + 1}"
        else:              # distinct self-join (containment work)
            text = f"V(x) :- R(x, y), R(y, z), z = {index}"
        constraints.append(
            {"name": f"c{index}", "query": {"language": "CQ",
             "text": text},
             "projection": {"relation": "M", "columns": [0]}})
    return {
        "schema": {"relations": [
            {"name": "R",
             "attributes": [{"name": "a"}, {"name": "b"}]}]},
        "master_schema": {"relations": [
            {"name": "M", "attributes": [{"name": "a"}]}]},
        "database": {"R": [[0, 1], [1, 2]]},
        "master": {"M": [[0], [1], [2]]},
        "query": {"language": "UCQ", "text":
                  "Q(x) :- R(x, y), R(y, z)\n"
                  "Q(x) :- R(x, y), R(x, w), y = 0"},
        "constraints": constraints,
    }


def _time(fn, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, one repeat, no assertions")
    args = parser.parse_args(argv)

    sizes = [3, 6] if args.smoke else [6, 12, 24, 48]
    repeats = 1 if args.smoke else 5

    rows = []
    for size in sizes:
        bundle = make_bundle(size)
        cheap_s, cheap_report = _time(
            lambda bundle=bundle: lint_bundle(bundle, deep=False,
                                              flow=False),
            repeats)
        deep_s, deep_report = _time(
            lambda bundle=bundle: lint_bundle(bundle, deep=True,
                                              flow=False),
            repeats)
        flow_s, flow_report = _time(
            lambda bundle=bundle: lint_bundle(bundle, deep=True,
                                              flow=True),
            repeats)
        row = {
            "constraints": size,
            "cheap_s": cheap_s,
            "deep_s": deep_s,
            "flow_s": flow_s,
            "flow_delta_s": max(0.0, flow_s - deep_s),
            "cheap_diagnostics": len(cheap_report),
            "deep_diagnostics": len(deep_report),
            "flow_diagnostics": len(flow_report),
        }
        rows.append(row)
        print(f"constraints={size:3d}  cheap={cheap_s * 1e3:8.3f} ms "
              f"({len(cheap_report)} findings)  "
              f"deep={deep_s * 1e3:8.3f} ms "
              f"({len(deep_report)} findings)  "
              f"flow={flow_s * 1e3:8.3f} ms "
              f"({len(flow_report)} findings)")
        # The generated bundles are intentionally warning-laden but must
        # never produce errors — the bench measures analysis, not
        # rejection.
        assert flow_report.exit_code <= 1, flow_report.render()

    worst_cheap = max(row["cheap_s"] for row in rows)
    worst_flow_delta = max(row["flow_delta_s"] for row in rows)
    report = bench_report(
        "lint",
        [bench_row(f"lint/constraints={row['constraints']}",
                   row["cheap_s"],
                   verdicts={"cheap_diagnostics":
                             row["cheap_diagnostics"],
                             "deep_diagnostics": row["deep_diagnostics"],
                             "flow_diagnostics": row["flow_diagnostics"]},
                   extra=row) for row in rows],
        smoke=args.smoke,
        gates=[bench_gate("cheap_pass_budget_s", required=CHEAP_BUDGET_S,
                          measured=worst_cheap, higher_is_better=False,
                          enforced=not args.smoke),
               bench_gate("flow_pass_delta_budget_s",
                          required=FLOW_BUDGET_S,
                          measured=worst_flow_delta,
                          higher_is_better=False,
                          enforced=not args.smoke)],
        extra={"cheap_budget_s": CHEAP_BUDGET_S,
               "flow_budget_s": FLOW_BUDGET_S})
    write_report("BENCH_lint.json", report)
    return check_gates(report, stream=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
