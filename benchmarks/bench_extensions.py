"""Benchmarks for the extension features: missing values (§5), the
completeness margin, and semi-naive datalog.

These are not rows of the paper's tables; they measure the library's
extension surface so regressions show up alongside the table benches.
"""

import pytest

from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import enumerate_missing_answers
from repro.incomplete.completeness import decide_rcdp_with_missing_values
from repro.incomplete.nulls import MarkedNull
from repro.incomplete.tables import IncompleteDatabase
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.datalog import DatalogQuery, rule
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",), ("c3",)}})
IND = InclusionDependency(
    "S", ["cid"], "M", ["cid"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)
Q = cq([var("c")], [rel("S", "e0", var("c"))], name="Q")


@pytest.mark.parametrize("num_nulls", [1, 2, 3])
def test_possible_worlds_scaling(benchmark, num_nulls):
    """EXT-1: world count is |domain|^#nulls — the enumerative price of
    the §5 extension."""
    rows = {("e0", "c1")} | {
        ("e0", MarkedNull(f"x{i}")) for i in range(num_nulls)}
    db = IncompleteDatabase(SCHEMA, {"S": rows})
    domain = ["c1", "c2", "c3"]

    report = benchmark(
        decide_rcdp_with_missing_values, Q, db, DM, [IND], domain)
    assert report.worlds_total == 3 ** num_nulls
    benchmark.extra_info["nulls"] = num_nulls
    benchmark.extra_info["worlds"] = report.worlds_total


@pytest.mark.parametrize("known", [0, 1, 2, 3])
def test_missing_answer_margin(benchmark, known):
    """EXT-2: the completeness margin shrinks as data is collected."""
    rows = {("e0", f"c{i + 1}") for i in range(known)}
    db = Instance(SCHEMA, {"S": rows})

    missing = benchmark(enumerate_missing_answers, Q, db, DM, [IND])
    assert len(missing) == 3 - known
    benchmark.extra_info["known"] = known
    benchmark.extra_info["margin"] = len(missing)


GRAPH = DatabaseSchema([RelationSchema("E", ["src", "dst"])])


def _chain(length: int) -> Instance:
    return Instance(GRAPH, {"E": {(i, i + 1) for i in range(length)}})


def _tc(strategy: str) -> DatalogQuery:
    x, y, z = var("x"), var("y"), var("z")
    return DatalogQuery([
        rule(rel("T", x, y), rel("E", x, y)),
        rule(rel("T", x, z), rel("E", x, y), rel("T", y, z)),
    ], goal="T", strategy=strategy)


@pytest.mark.parametrize("strategy", ["seminaive", "naive"])
def test_datalog_strategy_comparison(benchmark, strategy):
    """EXT-3: semi-naive vs naive on a 24-edge chain (closure has 300
    facts; naive rederives all of them every round)."""
    instance = _chain(24)
    query = _tc(strategy)

    closure = benchmark(query.evaluate, instance)
    assert len(closure) == 24 * 25 // 2
    benchmark.extra_info["strategy"] = strategy
