"""Table II, coNP rows: RCQP for (CQ, INDs), (UCQ, INDs), (∃FO⁺, INDs) —
Theorem 4.5(1) and Proposition 4.3.

Two regimes, matching the theorem's structure:

* the *syntactic* boundedness test (conditions E3/E4) is cheap — its cost
  grows polynomially with query size;
* the hardness lives in the valid-valuation existence check, exercised via
  the 3SAT reduction: satisfiable formulas (checked against DPLL) mean
  **no** relatively complete database exists.
"""

import random

import pytest

from repro.constraints.ind import InclusionDependency
from repro.core.rcqp import decide_rcqp_with_inds
from repro.core.results import RCQPStatus
from repro.queries.atoms import RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Var
from repro.reductions.sat_to_rcqp import reduce_3sat_to_rcqp
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.solvers.sat import dpll_satisfiable, random_3sat

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)



@pytest.mark.parametrize("num_vars", [3, 4, 5])
def test_rcqp_inds_3sat_scaling(benchmark, num_vars):
    """T2 row (CQ, INDs): the 3SAT reduction with growing variable count;
    verdicts cross-checked against DPLL."""
    rng = random.Random(num_vars)
    cnf = random_3sat(num_vars, 2 * num_vars, rng)
    instance = reduce_3sat_to_rcqp(cnf)

    result = benchmark(
        decide_rcqp_with_inds, instance.query, instance.master,
        list(instance.constraints), instance.schema)
    satisfiable = dpll_satisfiable(cnf) is not None
    assert (result.status is RCQPStatus.EMPTY) == satisfiable
    benchmark.extra_info["variables"] = num_vars
    benchmark.extra_info["satisfiable"] = satisfiable


@pytest.mark.parametrize("seed", [0, 1])
def test_rcqp_inds_agreement_batch(benchmark, seed):
    rng = random.Random(seed)
    cnfs = [random_3sat(3, rng.randint(1, 10), rng) for _ in range(5)]
    instances = [reduce_3sat_to_rcqp(c) for c in cnfs]

    def run_batch():
        return [decide_rcqp_with_inds(
            inst.query, inst.master, list(inst.constraints), inst.schema)
            for inst in instances]

    verdicts = benchmark(run_batch)
    agreement = sum(
        (v.status is RCQPStatus.EMPTY)
        == (dpll_satisfiable(c) is not None)
        for v, c in zip(verdicts, cnfs))
    assert agreement == len(cnfs)
    benchmark.extra_info["agreement"] = f"{agreement}/{len(cnfs)}"


# ---------------------------------------------------------------------------
# The polynomial syntactic test (E3/E4) on wide queries
# ---------------------------------------------------------------------------


def _wide_world(num_columns: int):
    schema = DatabaseSchema([
        RelationSchema("R", [f"a{i}" for i in range(num_columns)])])
    master_schema = DatabaseSchema([
        RelationSchema("M", [f"a{i}" for i in range(num_columns)])])
    master = Instance(master_schema, {
        "M": {tuple(f"v{i}" for i in range(num_columns))}})
    constraints = [InclusionDependency(
        "R", [f"a{i}" for i in range(num_columns)],
        "M", [f"a{i}" for i in range(num_columns)],
        name="covering").to_containment_constraint(schema, master_schema)]
    variables = [Var(f"x{i}") for i in range(num_columns)]
    query = ConjunctiveQuery(variables, [RelAtom("R", variables)],
                             name="Qwide")
    return query, master, constraints, schema


@pytest.mark.parametrize("num_columns", [2, 4, 6])
def test_rcqp_syntactic_check_polynomial(benchmark, num_columns):
    """The E3/E4 test over growing arity: all output variables covered by
    the IND → NONEMPTY, cheaply.  Witness construction (exponential in
    arity by design — it covers every achievable output tuple) is
    disabled: this bench isolates the *decision* cost."""
    query, master, constraints, schema = _wide_world(num_columns)
    result = benchmark(decide_rcqp_with_inds, query, master, constraints,
                       schema, construct_witness=False)
    assert result.status is RCQPStatus.NONEMPTY
    benchmark.extra_info["columns"] = num_columns


def test_rcqp_uncovered_column_empty(benchmark):
    """Dropping one column from the IND flips the verdict to EMPTY."""
    num_columns = 4
    schema = DatabaseSchema([
        RelationSchema("R", [f"a{i}" for i in range(num_columns)])])
    master_schema = DatabaseSchema([
        RelationSchema("M", [f"a{i}" for i in range(num_columns - 1)])])
    master = Instance(master_schema, {
        "M": {tuple(f"v{i}" for i in range(num_columns - 1))}})
    constraints = [InclusionDependency(
        "R", [f"a{i}" for i in range(num_columns - 1)],
        "M", [f"a{i}" for i in range(num_columns - 1)],
        name="partial").to_containment_constraint(schema, master_schema)]
    variables = [Var(f"x{i}") for i in range(num_columns)]
    query = ConjunctiveQuery(variables, [RelAtom("R", variables)],
                             name="Qwide")

    result = benchmark(decide_rcqp_with_inds, query, master, constraints,
                       schema)
    assert result.status is RCQPStatus.EMPTY
