"""Table I, decidable rows: RCDP is Πᵖ₂-complete for
(CQ, INDs), (∃FO⁺, INDs), (CQ, CQ), (UCQ, UCQ), (∃FO⁺, ∃FO⁺).

* The Πᵖ₂-hardness rows are exercised through the Theorem 3.6 reduction:
  ∀∃-3SAT instances of growing variable count.  Every decision is
  cross-checked against the independent QBF evaluator, and the timing
  series exhibits the exponential growth the bound demands.
* The membership rows are exercised on CRM workloads per language pair.
"""

import random

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.mdm.generators import GeneratorConfig, generate_scenario
from repro.queries.cq import cq
from repro.queries.atoms import rel
from repro.queries.efo import EFOQuery, atom_f, exists, or_
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.reductions.qsat_to_rcdp import reduce_forall_exists_3sat_to_rcdp
from repro.solvers.qbf import random_forall_exists_3sat

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)



# ---------------------------------------------------------------------------
# Πᵖ₂ lower-bound shape: ∀∃-3SAT reduction, growing variable count
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("num_vars", [2, 3, 4])
def test_rcdp_cq_inds_qsat_scaling(benchmark, num_vars):
    """T1 rows (CQ, INDs): exponential scaling in the 3SAT variable count,
    verdicts checked against QBF expansion."""
    rng = random.Random(num_vars)
    formula = random_forall_exists_3sat(num_vars, num_vars, 4, rng)
    instance = reduce_forall_exists_3sat_to_rcdp(formula)

    result = benchmark(
        decide_rcdp, instance.query, instance.database, instance.master,
        list(instance.constraints))
    expected = formula.is_true()
    assert (result.status is RCDPStatus.COMPLETE) == expected
    benchmark.extra_info["universal_vars"] = num_vars
    benchmark.extra_info["formula_true"] = expected
    benchmark.extra_info["valuations"] = \
        result.statistics.valuations_examined


@pytest.mark.parametrize("num_universal", [1, 2, 3, 4, 5])
def test_rcdp_qsat_true_family_scaling(benchmark, num_universal):
    """Deterministic exponential-shape series: ``∀x1..xn ∃y ⋀(xi ∨ y)``
    is always true, so the decider must certify COMPLETE by exhausting
    the (pruned) valuation space — no early exit."""
    from repro.solvers.qbf import ForallExists3SAT
    from repro.solvers.sat import CNF

    n = num_universal
    clauses = [(i, i, n + 1) for i in range(1, n + 1)]
    formula = ForallExists3SAT(list(range(1, n + 1)), [n + 1],
                               CNF(clauses))
    assert formula.is_true()
    instance = reduce_forall_exists_3sat_to_rcdp(formula)

    result = benchmark(
        decide_rcdp, instance.query, instance.database, instance.master,
        list(instance.constraints))
    assert result.status is RCDPStatus.COMPLETE
    benchmark.extra_info["universal_vars"] = n
    benchmark.extra_info["valuations"] = \
        result.statistics.valuations_examined


@pytest.mark.parametrize("seed", [0, 1])
def test_rcdp_reduction_agreement_batch(benchmark, seed):
    """A batch of random reduction instances must agree with QBF exactly;
    the benchmark measures the whole batch."""
    rng = random.Random(seed)
    formulas = [random_forall_exists_3sat(2, 2, rng.randint(1, 6), rng)
                for _ in range(5)]
    instances = [reduce_forall_exists_3sat_to_rcdp(f) for f in formulas]

    def run_batch():
        verdicts = []
        for inst in instances:
            verdicts.append(decide_rcdp(
                inst.query, inst.database, inst.master,
                list(inst.constraints)))
        return verdicts

    verdicts = benchmark(run_batch)
    agreement = sum(
        (v.status is RCDPStatus.COMPLETE) == f.is_true()
        for v, f in zip(verdicts, formulas))
    assert agreement == len(formulas)
    benchmark.extra_info["agreement"] = f"{agreement}/{len(formulas)}"


# ---------------------------------------------------------------------------
# Membership rows on CRM workloads: (CQ, INDs), (CQ, CQ), (UCQ, UCQ),
# (∃FO⁺, ∃FO⁺)
# ---------------------------------------------------------------------------


def _crm(num_customers: int, missing: float):
    config = GeneratorConfig(
        num_domestic=num_customers, num_international=0,
        num_employees=2, support_probability=1.0,
        missing_support_fraction=missing)
    scenario = generate_scenario(config, random.Random(42))
    return scenario


@pytest.mark.parametrize("num_customers", [4, 8, 12])
def test_rcdp_cq_with_inds_crm(benchmark, num_customers):
    """T1 row (CQ, INDs) on the CRM workload, complete case."""
    scenario = _crm(num_customers, missing=0.0)
    database = scenario.database()
    master = scenario.master()
    constraints = [scenario.supt_cid_ind()]
    query = scenario.q2_all_supported_by("e0")

    result = benchmark(decide_rcdp, query, database, master, constraints)
    # e0 supports every master customer → complete
    assert result.status is RCDPStatus.COMPLETE
    benchmark.extra_info["customers"] = num_customers


def test_rcdp_cq_with_cq_constraints_crm(benchmark):
    """T1 row (CQ, CQ): the at-most-k CQ constraint (φ1 of Example 2.1)
    on a small CRM workload — a k+1-way self-join per valuation, so the
    instance is kept deliberately tiny."""
    scenario = _crm(3, missing=0.0)
    database = scenario.database()
    master = scenario.master()
    constraints = [scenario.phi1_at_most_k(len(scenario.domestic))]
    query = scenario.q2_all_supported_by("e0")

    result = benchmark(decide_rcdp, query, database, master, constraints)
    assert result.status is RCDPStatus.COMPLETE
    benchmark.extra_info["constraint"] = "at-most-k (CQ, empty target)"


def test_rcdp_ucq_crm(benchmark):
    """T1 row (UCQ, UCQ/INDs): union query over two employees."""
    scenario = _crm(4, missing=0.0)
    database = scenario.database()
    master = scenario.master()
    constraints = [scenario.supt_cid_ind()]
    query = ucq([
        cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))]),
        cq([var("c")], [rel("Supt", "e1", var("d"), var("c"))]),
    ], name="Qucq")

    result = benchmark(decide_rcdp, query, database, master, constraints)
    assert result.status is RCDPStatus.COMPLETE


def test_rcdp_efo_crm(benchmark):
    """T1 row (∃FO⁺, INDs): disjunctive formula query."""
    scenario = _crm(4, missing=0.0)
    database = scenario.database()
    master = scenario.master()
    constraints = [scenario.supt_cid_ind()]
    formula = or_(
        atom_f(rel("Supt", "e0", var("d"), var("c"))),
        atom_f(rel("Supt", "e1", var("d"), var("c"))))
    query = EFOQuery([var("c")], exists([var("d")], formula), name="Qefo")

    result = benchmark(decide_rcdp, query, database, master, constraints)
    assert result.status is RCDPStatus.COMPLETE


def test_rcdp_incomplete_with_certificate(benchmark):
    """Incomplete case: verdict plus actionable certificate."""
    scenario = _crm(8, missing=0.5)
    database = scenario.database()
    master = scenario.master()
    constraints = [scenario.supt_cid_ind()]
    query = scenario.q2_all_supported_by("e0")

    result = benchmark(decide_rcdp, query, database, master, constraints)
    if result.status is RCDPStatus.INCOMPLETE:
        assert result.certificate is not None
    benchmark.extra_info["status"] = result.status.value
