"""Table II, undecidable rows: RCQP for (FO, fixed FO), (CQ, FO),
(FP, fixed FP), (CQ, FP) — Theorem 4.1.

As with Table I's undecidable rows, no decision procedure can exist; the
reproduction demonstrates the guard behaviour and the bounded witness
search on the FP-query side (the 2-head DFA encoding), where a machine
with empty language trivially admits the empty database as 'complete up to
the bound', while a machine with nonempty language keeps every candidate
incomplete within the explored pool.
"""

import pytest

from repro.core.bounded import brute_force_rcqp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCQPStatus
from repro.errors import UndecidableConfigurationError
from repro.reductions.dfa_encodings import reduce_dfa_emptiness_to_rcdp
from repro.solvers.twohead import EPSILON, TwoHeadDFA

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)



def zeros_then_ones() -> TwoHeadDFA:
    return TwoHeadDFA(
        states={"s", "m", "acc"},
        transitions={
            ("s", "0", "0"): ("s", 0, 1),
            ("s", "0", "1"): ("m", 1, 1),
            ("m", "0", "1"): ("m", 1, 1),
            ("m", "1", EPSILON): ("acc", 0, 0),
        },
        initial="s", accepting="acc")


def dead_machine() -> TwoHeadDFA:
    return TwoHeadDFA(states={"q", "acc"}, transitions={},
                      initial="q", accepting="acc")


def test_exact_rcqp_refuses_fp(benchmark):
    """T2 rows (FP, ·): the guard must fire."""
    instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())

    def attempt():
        try:
            decide_rcqp(instance.query, instance.master,
                        list(instance.constraints), instance.schema)
        except UndecidableConfigurationError:
            return "refused"
        return "accepted"

    assert benchmark(attempt) == "refused"


def test_bounded_rcqp_empty_language(benchmark):
    """A dead machine: the empty database is a bounded witness (the FP
    query never fires), found immediately."""
    instance = reduce_dfa_emptiness_to_rcdp(dead_machine())

    result = benchmark(
        brute_force_rcqp, instance.query, instance.master,
        list(instance.constraints), instance.schema,
        max_database_size=0, values=[0], completeness_bound=2)
    assert result.status is RCQPStatus.NONEMPTY
    assert "undecidable" in result.explanation


def test_bounded_rcqp_nonempty_language(benchmark):
    """A live machine: within a small pool no candidate database is
    complete (the encoding of '01' always extends it)."""
    instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())

    result = benchmark(
        brute_force_rcqp, instance.query, instance.master,
        list(instance.constraints), instance.schema,
        max_database_size=0, values=[0, 1, 2], completeness_bound=5)
    assert result.status is RCQPStatus.EMPTY_UP_TO_BOUND
