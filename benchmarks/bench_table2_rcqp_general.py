"""Table II, NEXPTIME rows: RCQP for (CQ, CQ), (UCQ, UCQ), (∃FO⁺, ∃FO⁺) —
Theorem 4.5(2), Propositions 4.2 / Corollary 4.4.

* The E1/E2 valuation-set search is run on the paper's own Example 4.1
  workloads (FD constraints), where the decider must both *find* bounding
  valuation sets (Q2 with the full FD, Q4's blocking witness) and
  *exhaust* the space (Q2 with the partial FD).
* The NEXPTIME lower-bound construction (tiling) is exercised by building
  the hypertile witness from a solved board and verifying its relative
  completeness — board exponents 1 and 2 (the bound forbids more).
"""

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.reductions.tiling_to_rcqp import reduce_tiling_to_rcqp
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.solvers.tiling import TilingInstance, solve_tiling

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)


SCHEMA = DatabaseSchema([RelationSchema("Supt", ["eid", "dept", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("Empty", ["z"])])
MASTER = Instance(MASTER_SCHEMA)


def q2():
    return cq([var("e"), var("d"), var("c")],
              [rel("Supt", var("e"), var("d"), var("c")),
               eq(var("e"), "e0")], name="Q2")


def q4():
    return cq([var("e"), var("d"), var("c")],
              [rel("Supt", var("e"), var("d"), var("c")),
               eq(var("e"), "e0"), eq(var("d"), "d0")], name="Q4")


def test_rcqp_e2_full_fd_nonempty(benchmark):
    """Example 4.1: Q2 with FD eid→dept,cid — a bounding set exists."""
    constraints = FunctionalDependency(
        "Supt", ["eid"], ["dept", "cid"]).to_containment_constraints(
        SCHEMA)

    result = benchmark(decide_rcqp, q2(), MASTER, constraints, SCHEMA)
    assert result.status is RCQPStatus.NONEMPTY
    benchmark.extra_info["sets_examined"] = \
        result.statistics.candidate_sets_examined


def test_rcqp_e2_partial_fd_exhaustive_search(benchmark):
    """Example 4.1: Q2 with only FD eid→dept — cid unbounded, the search
    must exhaust its budget without finding a bounding set."""
    constraints = FunctionalDependency(
        "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)

    result = benchmark(decide_rcqp, q2(), MASTER, constraints, SCHEMA,
                       max_valuation_set_size=2)
    assert result.status in (RCQPStatus.EMPTY,
                             RCQPStatus.EMPTY_UP_TO_BOUND)
    benchmark.extra_info["sets_examined"] = \
        result.statistics.candidate_sets_examined


def test_rcqp_e2_blocking_witness(benchmark):
    """Example 4.1: Q4 is relatively complete via a *blocking* witness
    whose query answer is empty."""
    constraints = FunctionalDependency(
        "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)

    result = benchmark(decide_rcqp, q4(), MASTER, constraints, SCHEMA)
    assert result.status is RCQPStatus.NONEMPTY
    assert q4().evaluate(result.witness) == frozenset()


def test_rcqp_e1_finite_domains(benchmark):
    """Condition E1/E5: finite-domain outputs are trivially bounded."""
    from repro.relational.domain import BOOLEAN
    from repro.relational.schema import Attribute

    schema = DatabaseSchema([
        RelationSchema("Flag", [Attribute("b", BOOLEAN)])])
    constraints = []
    query = cq([var("b")], [rel("Flag", var("b"))], name="Qflag")

    result = benchmark(decide_rcqp, query, MASTER, constraints, schema)
    assert result.status is RCQPStatus.NONEMPTY


# ---------------------------------------------------------------------------
# The NEXPTIME lower bound: tiling
# ---------------------------------------------------------------------------


def checkerboard(exponent: int) -> TilingInstance:
    return TilingInstance(
        tiles=(0, 1), vertical={(0, 1), (1, 0)},
        horizontal={(0, 1), (1, 0)}, first_tile=0, exponent=exponent)


def unsolvable(exponent: int) -> TilingInstance:
    return TilingInstance(
        tiles=(0, 1), vertical={(a, b) for a in (0, 1) for b in (0, 1)},
        horizontal={(1, 1)}, first_tile=0, exponent=exponent)


@pytest.mark.parametrize("exponent", [1, 2])
def test_tiling_witness_verification(benchmark, exponent):
    """T2 NEXPTIME rows: verify the hypertile witness of a solved board
    is relatively complete (the constructive half of Theorem 4.5(2))."""
    tiling = checkerboard(exponent)
    grid = solve_tiling(tiling)
    reduction = reduce_tiling_to_rcqp(tiling)
    witness = reduction.witness_from_grid(grid)

    result = benchmark(
        decide_rcdp, reduction.query, witness, reduction.master,
        list(reduction.constraints))
    assert result.status is RCDPStatus.COMPLETE
    benchmark.extra_info["board"] = f"{2 ** exponent}x{2 ** exponent}"
    benchmark.extra_info["constraints"] = len(reduction.constraints)


@pytest.mark.parametrize("exponent", [1, 2])
def test_tiling_unsolvable_probe_unbounded(benchmark, exponent):
    """The other half: without a tiling the probe stays unbounded, so
    candidates are never complete."""
    tiling = unsolvable(exponent)
    assert solve_tiling(tiling) is None
    reduction = reduce_tiling_to_rcqp(tiling)
    candidate = reduction.empty_candidate()

    result = benchmark(
        decide_rcdp, reduction.query, candidate, reduction.master,
        list(reduction.constraints))
    assert result.status is RCDPStatus.INCOMPLETE
