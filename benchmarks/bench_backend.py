"""Storage-backend benchmark: python vs columnar vs sqlite.

Times the Table-1 RCDP workload (``Q2`` under ``supt⊆dcust`` and the
at-most-k constraint ``φ1`` on generated CRM scenarios — the same
workload as ``bench_engine.py``) with the engine's instance storage
swapped between the three backends:

* **python** — the default frozenset-of-tuples storage with indexed
  tuple-at-a-time joins and semi-naive delta evaluation (the current
  indexed engine, i.e. the baseline);
* **columnar** — interned constants and set-at-a-time batch joins;
* **sqlite** — the whole compiled plan lowered to a single SQL
  statement over an in-memory SQLite database, with the φ1 violation
  check pushed down to an indexed ``EXISTS``/``LIMIT 1`` probe.

Verdicts and search statistics (valuations examined, constraint
checks) are cross-checked between the backends on every row: the
backends differ in *how* they evaluate, never in *what* they decide.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_backend.py [--smoke]

Writes ``BENCH_backend.json`` (normalized ``report_schema`` shape) and,
unless ``--smoke``, gates on the best alternative backend's ≥ 10×
speedup over the python backend at the largest scenario size.
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from report_schema import (bench_gate, bench_report, bench_row,
                           check_gates, write_report)
from repro.core.rcdp import decide_rcdp
from repro.mdm.generators import GeneratorConfig, generate_scenario

REQUIRED_SPEEDUP = 10.0
BACKENDS = ("python", "columnar", "sqlite")


def _scenario(num_domestic: int):
    config = GeneratorConfig(
        num_domestic=num_domestic, num_international=0,
        num_employees=3, support_probability=1.0,
        missing_support_fraction=0.0)
    return generate_scenario(config, random.Random(42))


def _time(fn, repeats: int) -> tuple[float, object]:
    """Best-of-*repeats* wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_backends(num_domestic: int, repeats: int) -> dict:
    """Full decider once per backend, verdicts and search statistics
    cross-checked.

    Every employee supports exactly ``k = num_domestic - 1`` customers
    while master data holds one more, so every candidate extension the
    search proposes passes the IND prefilter and must be rejected by
    the (k+1)-way φ1 self-join.  φ1's target is the empty set, so a
    violation is "any answer exists" — exactly the shape the sqlite
    backend turns into an indexed ``SELECT 1 … LIMIT 1`` probe.
    """
    scenario = _scenario(num_domestic)
    spare = f"c{num_domestic - 1}"
    missing = [(f"e{i}", spare) for i in range(3)]
    database = scenario.database(missing_support=missing)
    master = scenario.master()
    k = num_domestic - 1
    constraints = [scenario.supt_cid_ind(), scenario.phi1_at_most_k(k)]
    query = scenario.q2_all_supported_by("e0")

    row: dict = {
        "num_domestic": num_domestic,
        "k": k,
        "supt_rows": len(database.relation("Supt")),
    }
    results = {}
    for backend in BACKENDS:
        # Each timed call builds a fresh context (backend=...) so plan
        # compilation, storage attach, and bulk load are all included —
        # the backends compete on whole-decision wall time.
        seconds, result = _time(
            lambda backend=backend: decide_rcdp(
                query, database, master, constraints, backend=backend),
            repeats)
        results[backend] = result
        row[f"{backend}_s"] = round(seconds, 6)
    baseline = results["python"]
    row["verdict"] = baseline.status.value
    for backend in BACKENDS[1:]:
        other = results[backend]
        assert other.status is baseline.status, (
            f"verdict mismatch at n={num_domestic}: "
            f"{backend} {other.status}, python {baseline.status}")
        assert (other.statistics.valuations_examined
                == baseline.statistics.valuations_examined), (
            f"search divergence at n={num_domestic}: {backend} examined "
            f"{other.statistics.valuations_examined} valuations, python "
            f"{baseline.statistics.valuations_examined}")
        assert (other.statistics.constraint_checks
                == baseline.statistics.constraint_checks), (
            f"search divergence at n={num_domestic}: {backend} ran "
            f"{other.statistics.constraint_checks} constraint checks, "
            f"python {baseline.statistics.constraint_checks}")
        row[f"{backend}_speedup"] = (
            round(row["python_s"] / row[f"{backend}_s"], 2)
            if row[f"{backend}_s"] else None)
    row["valuations_examined"] = baseline.statistics.valuations_examined
    row["constraint_checks"] = baseline.statistics.constraint_checks
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, single repeat, no speedup gate "
                             "(the CI mode)")
    parser.add_argument("--output", default="BENCH_backend.json")
    args = parser.parse_args(argv)

    sizes = [2, 3] if args.smoke else [3, 4, 5, 6]
    repeats = 1 if args.smoke else 3

    bench_rows = []
    for size in sizes:
        # The python backend is best-of-1 at the largest size: one run
        # already takes seconds and the alternatives are timed within
        # the same row.
        row = bench_backends(size, 1 if size >= 6 else repeats)
        bench_rows.append(row)
        print(f"rcdp n={size}: python {row['python_s']:.4f}s, "
              f"columnar {row['columnar_s']:.4f}s "
              f"({row['columnar_speedup']}x), "
              f"sqlite {row['sqlite_s']:.4f}s "
              f"({row['sqlite_speedup']}x), verdict {row['verdict']}")

    largest = bench_rows[-1]
    best_speedup = max(largest["columnar_speedup"] or 0.0,
                       largest["sqlite_speedup"] or 0.0)
    rows = [bench_row(f"rcdp/n={row['num_domestic']}", row["python_s"],
                      ticks={"valuations": row["valuations_examined"]},
                      verdicts={row["verdict"]: 1}, extra=row)
            for row in bench_rows]
    gates = [
        bench_gate("backend_speedup", required=REQUIRED_SPEEDUP,
                   measured=best_speedup, enforced=not args.smoke,
                   note="best of columnar/sqlite vs the python backend "
                        "at the largest size"),
    ]
    report = bench_report(
        "backend", rows, smoke=args.smoke, gates=gates,
        extra={"workload": "RCDP Q2 + {supt⊆dcust, φ1(at-most-k)} on "
                           "generated CRM scenarios (Table-1 (CQ, CQ) "
                           "row), storage backend ablation",
               "backends": list(BACKENDS),
               "required_speedup": REQUIRED_SPEEDUP,
               "largest_size_best_speedup": best_speedup})
    write_report(args.output, report)
    return check_gates(report, stream=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
