"""Parallel search benchmark: ``repro.parallel`` on Table-1 RCDP work.

The workload is the Theorem 3.6 true-family ``∀x1..xn ∃y ⋀(xi ∨ y)``:
the formula is always true, so the decider must certify COMPLETE by
*exhausting* the pruned valuation space — no early exit, which makes it
the honest scaling target for sharded search (every worker's slice must
actually be scanned, and the merged statistics must equal the serial
run's exactly).

For each size the decider runs serially and at each ``--workers`` count;
verdicts, explanations, and ``valuations_examined`` are cross-checked
for worker-count invariance, and the speedup over serial is reported.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]
        [--stats-out STATS.json]

Writes ``BENCH_parallel.json`` (normalized ``report_schema`` shape;
with ``--stats-out``, also the merged ``SearchStatistics`` of every run
for CI artifact upload).  Speedup
gates apply only when the host actually has the cores to parallelize
on (``os.cpu_count()``): ≥ ``SMOKE_SPEEDUP`` at 2 workers in smoke mode
on ≥ 2 cores, ≥ ``FULL_SPEEDUP`` at 4 workers in full mode on ≥ 4
cores.  On smaller hosts the invariance checks still run and the gate
is skipped with a note — a 1-core container can validate determinism
but not wall-clock scaling.

A second gate is host-independent: the default supervised pool
(heartbeat snapshots + the supervisor's collection loop) must stay
within ``SUPERVISION_OVERHEAD`` of the retry-disabled pool on the same
fault-free 2-worker workload.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

from report_schema import (bench_gate, bench_report, bench_row,
                           check_gates, write_report)
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus, SearchStatistics
from repro.reductions.qsat_to_rcdp import reduce_forall_exists_3sat_to_rcdp
from repro.solvers.qbf import ForallExists3SAT
from repro.solvers.sat import CNF

#: Required speedup at 4 workers (full mode, ≥ 4 cores).
FULL_SPEEDUP = 2.0
#: Required speedup at 2 workers (smoke mode, ≥ 2 cores).
SMOKE_SPEEDUP = 1.15
#: Max wall-clock ratio of the default supervised pool over the
#: retry-disabled pool (2 workers, best-of-N): heartbeat publishing and
#: the supervisor's collection loop must cost less than 5%.
SUPERVISION_OVERHEAD = 1.05


def _workload(num_universal: int):
    n = num_universal
    clauses = [(i, i, n + 1) for i in range(1, n + 1)]
    formula = ForallExists3SAT(list(range(1, n + 1)), [n + 1],
                               CNF(clauses))
    assert formula.is_true()
    return reduce_forall_exists_3sat_to_rcdp(formula)


def _time(fn, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_size(num_universal: int, worker_counts: list[int],
               repeats: int) -> dict:
    """One ladder rung: serial vs each worker count, invariance-checked."""
    instance = _workload(num_universal)
    args = (instance.query, instance.database, instance.master,
            list(instance.constraints))

    serial_s, serial = _time(lambda: decide_rcdp(*args), repeats)
    assert serial.status is RCDPStatus.COMPLETE
    row = {
        "universal_vars": num_universal,
        "valuations": serial.statistics.valuations_examined,
        "serial_s": round(serial_s, 6),
        "workers": {},
    }
    stats_rows = [{"workers": 1,
                   "statistics": dataclasses.asdict(serial.statistics)}]
    for count in worker_counts:
        elapsed, result = _time(
            lambda: decide_rcdp(*args, workers=count), repeats)
        assert result.status is serial.status, (
            f"verdict changed at workers={count}: {result.status}")
        assert result.explanation == serial.explanation, (
            f"explanation changed at workers={count}")
        # COMPLETE = full enumeration: the merged counters are exact.
        assert (result.statistics.valuations_examined
                == serial.statistics.valuations_examined), (
            f"merged valuations_examined diverged at workers={count}: "
            f"{result.statistics.valuations_examined} != "
            f"{serial.statistics.valuations_examined}")
        row["workers"][str(count)] = {
            "elapsed_s": round(elapsed, 6),
            "speedup": round(serial_s / elapsed, 2) if elapsed else None,
        }
        stats_rows.append(
            {"workers": count,
             "statistics": dataclasses.asdict(result.statistics)})
    row["stats_rows"] = stats_rows
    return row


def bench_supervision_overhead(num_universal: int, rounds: int) -> dict:
    """Supervised (default policy) vs retry-disabled pool at 2 workers.

    Fault-free runs, so the two pools do identical search work; the
    ratio isolates the cost of heartbeat snapshots plus the
    supervisor's collection loop.  Measured as the **median of paired
    ratios** over *rounds* back-to-back (disabled, supervised) pairs
    with alternating order inside each pair — host-load drift between
    samples then cancels within a pair instead of biasing a ratio of
    minima, which matters on small shared hosts.  No multi-core
    requirement."""
    import statistics

    from repro import ExecutionGovernor, RetryPolicy

    instance = _workload(num_universal)
    args = (instance.query, instance.database, instance.master,
            list(instance.constraints))

    def run(retry):
        start = time.perf_counter()
        result = decide_rcdp(*args, workers=2,
                             governor=ExecutionGovernor(retry=retry))
        elapsed = time.perf_counter() - start
        assert result.status is RCDPStatus.COMPLETE
        return elapsed, result

    ratios = []
    disabled_best = supervised_best = float("inf")
    for index in range(rounds):
        first, second = (None, RetryPolicy.disabled())
        if index % 2 == 0:
            first, second = second, first
        elapsed_a, result_a = run(first)
        elapsed_b, result_b = run(second)
        assert (result_a.statistics.valuations_examined
                == result_b.statistics.valuations_examined)
        disabled_s, supervised_s = ((elapsed_a, elapsed_b)
                                    if index % 2 == 0
                                    else (elapsed_b, elapsed_a))
        ratios.append(supervised_s / disabled_s)
        disabled_best = min(disabled_best, disabled_s)
        supervised_best = min(supervised_best, supervised_s)
    return {
        "universal_vars": num_universal,
        "rounds": rounds,
        "disabled_s": round(disabled_best, 6),
        "supervised_s": round(supervised_best, 6),
        "ratio": round(statistics.median(ratios), 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, single repeat, 2-worker gate "
                             "only (the CI mode)")
    parser.add_argument("--output", default="BENCH_parallel.json")
    parser.add_argument("--stats-out", default=None, metavar="PATH",
                        help="also write every run's merged "
                             "SearchStatistics as JSON (CI artifact)")
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.smoke:
        sizes, worker_counts, repeats = [5, 6], [2], 1
    else:
        sizes, worker_counts, repeats = [6, 7, 8], [2, 4], 2

    rows = []
    for size in sizes:
        row = bench_size(size, worker_counts, repeats)
        rows.append(row)
        per_worker = ", ".join(
            f"W={count} {data['elapsed_s']:.3f}s ({data['speedup']}x)"
            for count, data in row["workers"].items())
        print(f"n={size}: {row['valuations']} valuations, "
              f"serial {row['serial_s']:.3f}s, {per_worker}")

    overhead = bench_supervision_overhead(sizes[-1],
                                          rounds=5 if args.smoke else 9)
    print(f"supervision overhead (n={overhead['universal_vars']}, "
          f"2 workers, {overhead['rounds']} paired rounds): best "
          f"disabled {overhead['disabled_s']:.3f}s, best supervised "
          f"{overhead['supervised_s']:.3f}s -> median paired ratio "
          f"{overhead['ratio']}")

    gate_workers = 2 if args.smoke else 4
    required = SMOKE_SPEEDUP if args.smoke else FULL_SPEEDUP
    largest = rows[-1]
    measured = largest["workers"].get(str(gate_workers), {}).get("speedup")
    enforced = cores >= gate_workers and measured is not None
    note = None
    if not enforced:
        note = (f"host has {cores} core(s); wall-clock scaling is not "
                f"measurable, invariance checks only")
        print(f"speedup gate skipped: {note}")

    bench_rows = []
    for row in rows:
        detail = {key: value for key, value in row.items()
                  if key != "stats_rows"}
        bench_rows.append(bench_row(
            f"serial/n={row['universal_vars']}", row["serial_s"],
            ticks={"valuations": row["valuations"]},
            verdicts={"complete": 1}, extra=detail))
        for count, data in row["workers"].items():
            bench_rows.append(bench_row(
                f"workers={count}/n={row['universal_vars']}",
                data["elapsed_s"],
                ticks={"valuations": row["valuations"]},
                verdicts={"complete": 1},
                extra={"speedup": data["speedup"]}))
    bench_rows.append(bench_row(
        f"supervision-overhead/n={overhead['universal_vars']}",
        overhead["supervised_s"], verdicts={"complete": 1},
        extra=overhead))
    report = bench_report(
        "parallel", bench_rows, smoke=args.smoke,
        gates=[bench_gate(f"speedup_at_{gate_workers}_workers",
                          required=required, measured=measured,
                          enforced=enforced, note=note),
               bench_gate("supervision_overhead_at_2_workers",
                          required=SUPERVISION_OVERHEAD,
                          measured=overhead["ratio"],
                          higher_is_better=False,
                          # On a single core the 2-worker pool and the
                          # supervisor's heartbeat threads time-slice
                          # one CPU, so the ratio measures scheduler
                          # contention, not supervision cost.
                          enforced=cores >= 2,
                          note=(None if cores >= 2 else
                                f"host has {cores} core(s); the paired "
                                f"ratio is scheduler noise there"))],
        extra={"workload": "RCDP qsat true-family ∀x1..xn ∃y ⋀(xi ∨ y) "
                           "(Theorem 3.6 reduction, full enumeration)",
               "cores": cores})
    write_report(args.output, report)

    if args.stats_out:
        merged = SearchStatistics()
        for row in rows:
            for stats_row in row["stats_rows"]:
                merged = merged.merged(
                    SearchStatistics(**stats_row["statistics"]))
        payload = {
            "merged": dataclasses.asdict(merged),
            "runs": [{"universal_vars": row["universal_vars"],
                      "stats_rows": row["stats_rows"]} for row in rows],
        }
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
        print(f"wrote {args.stats_out}")

    return check_gates(report, stream=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
