"""Cost-model benchmark: predicted vs. actual governor ticks.

The static cost model (:mod:`repro.analysis.cost`) predicts the
valuation ticks of a decision before the first tick is spent; the
governor's ``suggest_budget`` and the CLI preflight advisory are only as
good as that prediction.  This bench runs the *full* missing-answer
enumeration of every shipped bundle under a ledger governor and compares
``CostEstimate.predicted_ticks`` to the actual per-kind charges.

Full enumeration is the honest case for the model — RCDP proper may
exit at the first incompleteness certificate, so its actuals are a lower
bound the model deliberately brackets with ``lo=0``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_cost.py [--smoke]

Writes ``BENCH_cost.json`` (normalized ``report_schema`` shape) and
gates on every ratio staying within ``RATIO_GATE``× in either
direction.  ``--smoke`` skips bundles whose predicted enumeration
exceeds ``SMOKE_TICK_CEILING`` ticks (crm_q1's 6.4M-valuation space
takes minutes); the ratio gate stays enforced on the bundles that run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from report_schema import (bench_gate, bench_report, bench_row,
                           check_gates, write_report)
from repro.analysis.cost import estimate_decision
from repro.core.rcdp import missing_answers_report
from repro.io.json_io import load_bundle
from repro.runtime import Budget, ExecutionGovernor

#: Acceptance bar: predicted within 4× of actual, both directions.
RATIO_GATE = 4.0

#: Bundles predicted beyond this are skipped under ``--smoke``.
SMOKE_TICK_CEILING = 500_000

BUNDLES = Path(__file__).resolve().parent.parent / "examples" / "bundles"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="skip bundles with huge predicted spaces")
    args = parser.parse_args(argv)

    rows = []
    worst_ratio = None
    skipped = []
    for path in sorted(BUNDLES.glob("*.json")):
        bundle = load_bundle(str(path))
        started = time.perf_counter()
        estimate = estimate_decision(
            "missing", bundle["query"], bundle["database"],
            bundle["master"], tuple(bundle["constraints"]))
        estimate_s = time.perf_counter() - started
        predicted = estimate.total_predicted
        if args.smoke and predicted > SMOKE_TICK_CEILING:
            skipped.append(path.stem)
            print(f"{path.stem}: skipped under --smoke "
                  f"(predicted {predicted} ticks)")
            continue
        governor = ExecutionGovernor(budget=Budget())
        started = time.perf_counter()
        report = missing_answers_report(
            bundle["query"], bundle["database"], bundle["master"],
            bundle["constraints"], governor=governor)
        search_s = time.perf_counter() - started
        actual = governor.budget.spent_for("valuations")
        ratio = (predicted / actual) if actual else float("inf")
        spread = max(ratio, 1.0 / ratio) if actual else float("inf")
        worst_ratio = (spread if worst_ratio is None
                       else max(worst_ratio, spread))
        rows.append(bench_row(
            f"cost/{path.stem}", search_s,
            ticks={"predicted": predicted, "actual": actual},
            verdicts={"missing_answers": len(report.answers),
                      "exhaustive": report.exhaustive},
            extra={"ratio": round(ratio, 4),
                   "estimate_s": round(estimate_s, 6),
                   "adom_size": estimate.adom_size,
                   "dominant_phase": estimate.dominant_phase}))
        print(f"{path.stem}: predicted={predicted} actual={actual} "
              f"ratio={ratio:.3f} (estimate {estimate_s * 1e3:.2f} ms, "
              f"search {search_s:.2f} s)")

    report = bench_report(
        "cost", rows, smoke=args.smoke,
        gates=[bench_gate(
            "prediction_within_4x", required=RATIO_GATE,
            measured=worst_ratio, higher_is_better=False,
            note="max over bundles of max(pred/actual, actual/pred) "
                 "for full missing-answer enumerations")],
        extra={"ratio_gate": RATIO_GATE, "skipped": skipped})
    write_report("BENCH_cost.json", report)
    return check_gates(report, stream=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
