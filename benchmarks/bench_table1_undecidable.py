"""Table I, undecidable rows: RCDP for (FO, CQ), (CQ, FO), (FP, CQ),
(fixed FP, FP) — Theorem 3.1.

No decision procedure can exist; the reproduction demonstrates:

* the exact decider *refuses* these configurations (guard behaviour);
* the 2-head DFA encoding is faithful: the FP query fires on a word's
  relational encoding iff the automaton accepts the word;
* the bounded semi-decision procedure certifies INCOMPLETE for machines
  with nonempty language (a counterexample is finite) but can only ever
  report COMPLETE_UP_TO_BOUND for empty ones — and its cost grows with
  the bound without converging, which is the undecidability made visible.
"""

import pytest

from repro.core.bounded import brute_force_rcdp
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.errors import UndecidableConfigurationError
from repro.reductions.dfa_encodings import (encode_word,
                                            reduce_dfa_emptiness_to_rcdp)
from repro.solvers.twohead import EPSILON, TwoHeadDFA

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)



def zeros_then_ones() -> TwoHeadDFA:
    return TwoHeadDFA(
        states={"s", "m", "acc"},
        transitions={
            ("s", "0", "0"): ("s", 0, 1),
            ("s", "0", "1"): ("m", 1, 1),
            ("m", "0", "1"): ("m", 1, 1),
            ("m", "1", EPSILON): ("acc", 0, 0),
        },
        initial="s", accepting="acc")


def dead_machine() -> TwoHeadDFA:
    return TwoHeadDFA(states={"q", "acc"}, transitions={},
                      initial="q", accepting="acc")


def test_exact_decider_refuses_fp(benchmark):
    """T1 rows (FP, CQ): the guard must fire, immediately."""
    instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())

    def attempt():
        try:
            decide_rcdp(instance.query, instance.database,
                        instance.master, list(instance.constraints))
        except UndecidableConfigurationError:
            return "refused"
        return "accepted"

    outcome = benchmark(attempt)
    assert outcome == "refused"


@pytest.mark.parametrize("word", ["01", "0011", "000111"])
def test_fp_query_agrees_with_automaton(benchmark, word):
    """The encoding's fixpoint evaluation per word length."""
    automaton = zeros_then_ones()
    instance = reduce_dfa_emptiness_to_rcdp(automaton)
    encoding = encode_word(word, instance.schema)

    answers = benchmark(instance.query.evaluate, encoding)
    assert bool(answers) == automaton.accepts(word)
    benchmark.extra_info["word_length"] = len(word)


@pytest.mark.parametrize("positions", [2])
def test_bounded_search_nonempty_language(benchmark, positions):
    """Semi-decision: a machine accepting '01' is caught by bounded
    search once the pool has enough positions."""
    instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())

    result = benchmark(
        brute_force_rcdp, instance.query, instance.database,
        instance.master, list(instance.constraints),
        max_extra_facts=5, values=list(range(positions + 1)))
    assert result.status is RCDPStatus.INCOMPLETE
    benchmark.extra_info["positions"] = positions


@pytest.mark.parametrize("bound", [2, 3])
def test_bounded_search_empty_language_never_concludes(benchmark, bound):
    """For an empty-language machine the bounded verdict is only ever
    COMPLETE_UP_TO_BOUND — raising the bound raises cost, not certainty.
    This is Table I's 'undecidable' made operational."""
    instance = reduce_dfa_emptiness_to_rcdp(dead_machine())

    result = benchmark(
        brute_force_rcdp, instance.query, instance.database,
        instance.master, list(instance.constraints),
        max_extra_facts=bound, values=[0, 1])
    assert result.status is RCDPStatus.COMPLETE_UP_TO_BOUND
    benchmark.extra_info["bound"] = bound
    benchmark.extra_info["combinations"] = \
        result.statistics.valuations_examined
