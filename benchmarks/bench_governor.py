"""Overhead of the execution governor on the core decision procedures.

The governor's tick is a counter increment plus a few ``None`` checks per
enumeration step.  This bench pins that claim: governed runs (bare
governor, budget, and deadline variants) are timed against the same
ungoverned decision and must stay within noise of it — while a run with
a tight budget must degrade gracefully instead of paying for the full
search.

Run standalone (``python benchmarks/bench_governor.py``) it writes a
``BENCH_governor.json`` report with two enforced gates:

* ``governor_overhead`` — governed-with-limits over ungoverned wall
  time must stay ≤ 1.25×;
* ``exhaustion_cheap`` — a 16-tick budget exhaustion must cost ≤ 0.5×
  the full ungoverned search.
"""

import argparse
import random
import time

import pytest

from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.mdm.generators import GeneratorConfig, generate_scenario
from repro.runtime import Budget, Deadline, ExecutionGovernor
from repro.solvers.qbf import random_forall_exists_3sat
from repro.reductions.qsat_to_rcdp import reduce_forall_exists_3sat_to_rcdp

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)


def _qsat_instance(num_vars=3, seed=3):
    rng = random.Random(seed)
    formula = random_forall_exists_3sat(num_vars, num_vars, 4, rng)
    return reduce_forall_exists_3sat_to_rcdp(formula)


def _decide(instance, governor=None, on_exhausted="error"):
    return decide_rcdp(instance.query, instance.database, instance.master,
                       list(instance.constraints), governor=governor,
                       on_exhausted=on_exhausted)


def test_rcdp_ungoverned_baseline(benchmark):
    instance = _qsat_instance()
    result = benchmark(_decide, instance)
    assert result.status is not RCDPStatus.EXHAUSTED
    benchmark.extra_info["valuations"] = \
        result.statistics.valuations_examined


def test_rcdp_bare_governor_overhead(benchmark):
    """A governor with no limits: pure tick-counting overhead."""
    instance = _qsat_instance()
    result = benchmark(lambda: _decide(instance,
                                       governor=ExecutionGovernor()))
    assert result.status is not RCDPStatus.EXHAUSTED


def test_rcdp_budget_and_deadline_overhead(benchmark):
    """Generous limits that never trip: the full tick path is exercised."""
    instance = _qsat_instance()

    def governed():
        governor = ExecutionGovernor(budget=Budget(limit=10_000_000),
                                     deadline=Deadline.after(600))
        return _decide(instance, governor=governor)

    result = benchmark(governed)
    assert result.status is not RCDPStatus.EXHAUSTED


def test_rcdp_tight_budget_degrades_cheaply(benchmark):
    """Exhaustion must cost ~the budget, not ~the search."""
    instance = _qsat_instance(num_vars=4, seed=5)

    def exhausted():
        governor = ExecutionGovernor(budget=Budget(limit=16))
        return _decide(instance, governor=governor,
                       on_exhausted="partial")

    result = benchmark(exhausted)
    assert result.status is RCDPStatus.EXHAUSTED
    assert result.checkpoint is not None
    benchmark.extra_info["valuations_at_interrupt"] = \
        result.statistics.valuations_examined


def test_rcdp_crm_governed_scenario(benchmark):
    """Governed decision on the CRM generator workload."""
    config = GeneratorConfig(num_domestic=6, num_international=0,
                             num_employees=2, support_probability=1.0)
    scenario = generate_scenario(config, random.Random(11))
    query = scenario.q2_all_supported_by("e0")

    def governed():
        governor = ExecutionGovernor(budget=Budget(limit=1_000_000))
        return decide_rcdp(query, scenario.database(), scenario.master(),
                           [scenario.supt_cid_ind()], governor=governor)

    result = benchmark(governed)
    assert result.status is not RCDPStatus.EXHAUSTED


def test_rcqp_governed_search(benchmark):
    """Governed RCQP candidate-set search (general path, FD constraints)."""
    from repro.constraints.cfd import FunctionalDependency
    from repro.queries.atoms import eq, rel
    from repro.queries.cq import cq
    from repro.queries.terms import var
    from repro.relational.instance import Instance
    from repro.relational.schema import DatabaseSchema, RelationSchema

    schema = DatabaseSchema([RelationSchema("Supt",
                                            ["eid", "dept", "cid"])])
    master_schema = DatabaseSchema([RelationSchema("DCust", ["cid"])])
    constraints = FunctionalDependency(
        "Supt", ["eid"], ["dept"]).to_containment_constraints(schema)
    query = cq([var("e"), var("d"), var("c")],
               [rel("Supt", var("e"), var("d"), var("c")),
                eq(var("e"), "e0"), eq(var("d"), "d0")])

    def governed():
        governor = ExecutionGovernor(budget=Budget(limit=1_000_000))
        return decide_rcqp(query, Instance(master_schema),
                           list(constraints), schema, governor=governor)

    result = benchmark(governed)
    assert result.status is RCQPStatus.NONEMPTY


# --------------------------------------------------------------------
# Standalone report mode: python benchmarks/bench_governor.py
# --------------------------------------------------------------------

GOVERNOR_OVERHEAD = 1.25
EXHAUSTION_RATIO = 0.5


def _time(fn, repeats):
    """Best-of-N wall time and the (last) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def main(argv=None) -> int:
    from report_schema import (bench_gate, bench_report, bench_row,
                               check_gates, write_report)

    parser = argparse.ArgumentParser(
        description="governor overhead benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny instance, gates recorded but not "
                             "enforced")
    parser.add_argument("--output", default="BENCH_governor.json")
    args = parser.parse_args(argv)

    num_vars = 3 if args.smoke else 4
    repeats = 2 if args.smoke else 5
    instance = _qsat_instance(num_vars=num_vars, seed=3)
    tight = _qsat_instance(num_vars=num_vars + 1, seed=5)

    ungoverned_s, base = _time(lambda: _decide(instance), repeats)
    bare_s, bare = _time(
        lambda: _decide(instance, governor=ExecutionGovernor()), repeats)

    def with_limits():
        governor = ExecutionGovernor(budget=Budget(limit=10_000_000),
                                     deadline=Deadline.after(600))
        return _decide(instance, governor=governor)

    limits_s, limited = _time(with_limits, repeats)

    def exhausted_run():
        governor = ExecutionGovernor(budget=Budget(limit=16))
        return _decide(tight, governor=governor, on_exhausted="partial")

    exhausted_s, exhausted = _time(exhausted_run, repeats)

    assert base.status is bare.status is limited.status
    assert exhausted.status is RCDPStatus.EXHAUSTED

    def row(name, wall_s, result, size):
        return bench_row(
            name, wall_s, verdicts={result.status.value: 1},
            extra={"valuations":
                   result.statistics.valuations_examined,
                   "num_vars": size})

    rows = [
        row(f"rcdp/ungoverned/n={num_vars}", ungoverned_s, base,
            num_vars),
        row(f"rcdp/bare-governor/n={num_vars}", bare_s, bare,
            num_vars),
        row(f"rcdp/budget+deadline/n={num_vars}", limits_s, limited,
            num_vars),
        row(f"rcdp/tight-budget/n={num_vars + 1}", exhausted_s,
            exhausted, num_vars + 1),
    ]
    gates = [
        bench_gate("governor_overhead", required=GOVERNOR_OVERHEAD,
                   measured=round(limits_s / ungoverned_s, 4)
                   if ungoverned_s else None,
                   higher_is_better=False, enforced=not args.smoke,
                   note="budget+deadline governed over ungoverned"),
        bench_gate("exhaustion_cheap", required=EXHAUSTION_RATIO,
                   measured=round(exhausted_s / ungoverned_s, 4)
                   if ungoverned_s else None,
                   higher_is_better=False, enforced=not args.smoke,
                   note="16-tick exhaustion over full ungoverned "
                        "search"),
    ]
    report = bench_report("governor", rows, smoke=args.smoke,
                          gates=gates,
                          extra={"repeats": repeats})
    write_report(args.output, report)
    return check_gates(report)


if __name__ == "__main__":
    raise SystemExit(main())
