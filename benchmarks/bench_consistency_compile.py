"""PROP-2.1 experiment: consistency constraints as containment constraints.

Measures the compiled-CC enforcement path against direct integrity-
constraint semantics on growing instances, asserting agreement on every
instance (the content of Proposition 2.1).
"""

import random

import pytest

from repro.constraints.cfd import (ConditionalFunctionalDependency,
                                   FunctionalDependency)
from repro.constraints.cind import ConditionalInclusionDependency
from repro.constraints.containment import satisfies_all
from repro.constraints.denial import DenialConstraint
from repro.queries.atoms import neq, rel
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)


SCHEMA = DatabaseSchema([
    RelationSchema("Supt", ["eid", "dept", "cid"]),
    RelationSchema("Emp", ["eid", "dept"]),
])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("Empty", ["z"])])
MASTER = Instance(MASTER_SCHEMA)


def _random_instance(size: int, seed: int) -> Instance:
    rng = random.Random(seed)
    supt = {(f"e{rng.randint(0, 4)}", f"d{rng.randint(0, 2)}",
             f"c{rng.randint(0, 6)}") for _ in range(size)}
    emp = {(f"e{i}", f"d{rng.randint(0, 2)}") for i in range(5)}
    return Instance(SCHEMA, {"Supt": supt, "Emp": emp})


@pytest.mark.parametrize("size", [10, 30, 60])
def test_fd_compiled_enforcement(benchmark, size):
    fd = FunctionalDependency("Supt", ["eid"], ["dept", "cid"])
    compiled = fd.to_containment_constraints(SCHEMA)
    instance = _random_instance(size, seed=size)

    via_cc = benchmark(satisfies_all, instance, MASTER, compiled)
    assert via_cc == fd.is_satisfied(instance)
    benchmark.extra_info["tuples"] = instance.total_tuples


@pytest.mark.parametrize("size", [10, 30])
def test_cfd_compiled_enforcement(benchmark, size):
    cfd = ConditionalFunctionalDependency(
        "Supt", ["eid", "dept"], ["cid"], lhs_pattern={"dept": "d0"})
    compiled = cfd.to_containment_constraints(SCHEMA)
    instance = _random_instance(size, seed=100 + size)

    via_cc = benchmark(satisfies_all, instance, MASTER, compiled)
    assert via_cc == cfd.is_satisfied(instance)


@pytest.mark.parametrize("size", [10, 30])
def test_denial_compiled_enforcement(benchmark, size):
    dc = DenialConstraint([
        rel("Supt", var("e"), var("d1"), var("c")),
        rel("Supt", var("e"), var("d2"), var("c")),
        neq(var("d1"), var("d2"))])
    compiled = [dc.to_containment_constraint()]
    instance = _random_instance(size, seed=200 + size)

    via_cc = benchmark(satisfies_all, instance, MASTER, compiled)
    assert via_cc == dc.is_satisfied(instance)


@pytest.mark.parametrize("size", [10, 20])
def test_cind_compiled_enforcement(benchmark, size):
    cind = ConditionalInclusionDependency(
        "Supt", ["eid", "dept"], "Emp", ["eid", "dept"])
    compiled = [cind.to_containment_constraint(SCHEMA)]
    instance = _random_instance(size, seed=300 + size)

    via_cc = benchmark(satisfies_all, instance, MASTER, compiled)
    assert via_cc == cind.is_satisfied(instance)
    benchmark.extra_info["note"] = "CIND compiles to FO (Prop 2.1(c))"


@pytest.mark.parametrize("size", [10, 30])
def test_direct_semantics_baseline(benchmark, size):
    fd = FunctionalDependency("Supt", ["eid"], ["dept", "cid"])
    instance = _random_instance(size, seed=size)
    benchmark(fd.is_satisfied, instance)
