"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates part of Table I or Table II of the paper (the
complexity bounds for RCDP/RCQP).  Since the paper's "evaluation" is a
complexity table rather than a measurements table, each bench:

1. runs the decision procedure on generated instances,
2. **asserts agreement with an independent reference solver** (DPLL, QBF
   expansion, tiling search, brute-force oracle), and
3. records timing so the scaling *shape* (exponential for the hard rows,
   polynomial for the syntactic IND test) is visible in the
   pytest-benchmark output.

Run:  pytest benchmarks/ --benchmark-only
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
# The JSON-writing benches import the shared report schema bare
# (``from report_schema import ...``) so they run as plain scripts;
# mirror the script-mode sys.path here for pytest collection.
sys.path.insert(0, str(Path(__file__).resolve().parent))
