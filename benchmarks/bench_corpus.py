"""Corpus sweep benchmark: the generator + differential runner at scale.

Generates a seeded scenario corpus (4 domain families × language tiers
× constraint classes × sizes × target verdicts), runs every scenario
through the full decider matrix (``python``/``columnar``/``sqlite`` ×
workers 1/2, counting legs included) against the python-serial oracle,
and reports per-family pass rates and latency distributions.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_corpus.py [--smoke]

Writes ``BENCH_corpus.json`` (the corpus report already *is* the
normalized ``report_schema`` shape).  The per-family 100 % pass-rate
gates are enforced in both modes — a single divergent backend cell is
a soundness bug, not a perf regression.  ``--smoke`` shrinks the sweep
(6 scenarios per family instead of 25) for the CI leg.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro.corpus import (build_report, check_report, generate_corpus,
                          render_report, run_corpus)

DEFAULT_SEED = 9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep: 6 scenarios per family "
                             "(the CI mode)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--per-family", type=int, default=None,
                        help="override the sweep size "
                             "(default: 25, or 6 with --smoke)")
    parser.add_argument("--output", default="BENCH_corpus.json")
    args = parser.parse_args(argv)

    per_family = args.per_family or (6 if args.smoke else 25)
    with tempfile.TemporaryDirectory(prefix="repro-corpus-") as tmp:
        start = time.perf_counter()
        manifest = generate_corpus(tmp, seed=args.seed,
                                   per_family=per_family)
        generate_s = time.perf_counter() - start
        print(f"generated {len(manifest['scenarios'])} scenarios "
              f"(seed {args.seed}) in {generate_s:.2f}s")

        start = time.perf_counter()
        result = run_corpus(tmp)
        run_s = time.perf_counter() - start

    report = build_report(result, smoke=args.smoke)
    report["extra"]["generate_s"] = round(generate_s, 6)
    report["extra"]["run_s"] = round(run_s, 6)
    print(render_report(report))

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    status = check_report(report)
    if status:
        print("corpus pass-rate gate FAILED", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
