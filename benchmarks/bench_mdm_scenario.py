"""EX-1.1 experiment: the running CRM example at synthetic scale.

Runs the §2.3 audit cascade (RCDP → RCQP → completion guidance) on
generated CRM scenarios of growing size, recording verdicts and the volume
of suggested records.
"""

import random

import pytest

from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.core.witness import make_complete
from repro.mdm.audit import AuditVerdict, CompletenessAudit
from repro.mdm.generators import GeneratorConfig, generate_scenario

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)



def _scenario(num_customers: int, missing: float, seed: int = 11):
    config = GeneratorConfig(
        num_domestic=num_customers, num_international=0,
        num_employees=2, support_probability=1.0,
        missing_support_fraction=missing)
    return generate_scenario(config, random.Random(seed))


@pytest.mark.parametrize("num_customers", [5, 10, 15])
def test_audit_complete_database(benchmark, num_customers):
    scenario = _scenario(num_customers, missing=0.0)
    audit = CompletenessAudit(
        master=scenario.master(), constraints=[scenario.supt_cid_ind()],
        schema=scenario.schema)
    query = scenario.q2_all_supported_by("e0")
    database = scenario.database()

    report = benchmark(audit.assess, query, database)
    assert report.verdict is AuditVerdict.TRUSTWORTHY
    benchmark.extra_info["customers"] = num_customers


@pytest.mark.parametrize("missing", [0.3, 0.6])
def test_audit_incomplete_database(benchmark, missing):
    scenario = _scenario(10, missing=missing)
    audit = CompletenessAudit(
        master=scenario.master(), constraints=[scenario.supt_cid_ind()],
        schema=scenario.schema)
    query = scenario.q2_all_supported_by("e0")
    database = scenario.database()

    report = benchmark(audit.assess, query, database)
    assert report.verdict in (AuditVerdict.TRUSTWORTHY,
                              AuditVerdict.COLLECT_DATA)
    benchmark.extra_info["missing_fraction"] = missing
    benchmark.extra_info["suggested"] = len(report.suggested_facts)


@pytest.mark.parametrize("num_customers", [5, 10])
def test_completion_loop_cost(benchmark, num_customers):
    """Paradigm 2 in isolation: certificate-completion on a half-empty
    database."""
    scenario = _scenario(num_customers, missing=0.5, seed=23)
    master = scenario.master()
    constraints = [scenario.supt_cid_ind()]
    query = scenario.q2_all_supported_by("e0")
    database = scenario.database()

    outcome = benchmark(make_complete, query, database, master,
                        constraints)
    assert outcome.complete
    final = decide_rcdp(query, outcome.database, master, constraints)
    assert final.status is RCDPStatus.COMPLETE
    benchmark.extra_info["rounds"] = outcome.rounds
    benchmark.extra_info["facts_added"] = len(outcome.added_facts)
