"""Ablations for the design choices DESIGN.md calls out.

1. **IND row-pruning** (Corollary 3.4 made operational): with pruning the
   decider explores only constraint-consistent branches of the valuation
   tree; without it, every valuation is materialized and checked.  On the
   gate-table reductions the difference is orders of magnitude.
2. **Dedicated fresh values** vs the whole fresh pool: the enumeration
   soundness argument in ``repro.core.valuations`` lets each variable use
   only its own fresh value; the ablation quantifies the saving.
3. **Witness verification** in RCQP: NONEMPTY verdicts re-check the
   constructed witness through the RCDP decider; the ablation shows what
   that insurance costs.
"""

import pytest

from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp_with_inds
from repro.core.results import RCDPStatus, RCQPStatus
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.queries.tableau import Tableau
from repro.reductions.qsat_to_rcdp import reduce_forall_exists_3sat_to_rcdp
from repro.reductions.sat_to_rcqp import reduce_3sat_to_rcqp
from repro.solvers.qbf import ForallExists3SAT
from repro.solvers.sat import CNF

pytestmark = pytest.mark.benchmark(
    min_rounds=1, max_time=0.5, warmup=False)


def _qsat_instance(n: int):
    clauses = [(i, i, n + 1) for i in range(1, n + 1)]
    formula = ForallExists3SAT(list(range(1, n + 1)), [n + 1],
                               CNF(clauses))
    return reduce_forall_exists_3sat_to_rcdp(formula)


@pytest.mark.parametrize("pruning", [True, False])
def test_ablation_ind_row_pruning(benchmark, pruning):
    """ABL-1: the same Πᵖ₂ instance with and without IND row-pruning."""
    instance = _qsat_instance(3)

    result = benchmark(
        decide_rcdp, instance.query, instance.database, instance.master,
        list(instance.constraints), use_ind_pruning=pruning)
    assert result.status is RCDPStatus.COMPLETE
    benchmark.extra_info["pruning"] = pruning
    benchmark.extra_info["valuations"] = \
        result.statistics.valuations_examined


@pytest.mark.parametrize("fresh", ["own", "all"])
def test_ablation_fresh_value_policy(benchmark, fresh):
    """ABL-2: valuation-space size under the two fresh-value policies, on
    a join query over infinite-domain columns (the policies only differ
    there; the gate-table reductions are all finite-domain)."""
    from repro.queries.atoms import rel
    from repro.queries.cq import cq
    from repro.queries.terms import var
    from repro.relational.instance import Instance
    from repro.relational.schema import DatabaseSchema, RelationSchema

    schema = DatabaseSchema([RelationSchema("R", ["a", "b"])])
    database = Instance(schema, {"R": {(1, 2), (2, 3), (3, 4)}})
    query = cq([var("x"), var("z")],
               [rel("R", var("x"), var("y")),
                rel("R", var("y"), var("z")),
                rel("R", var("z"), var("w"))], name="Qjoin")
    tableau = Tableau(query, schema)
    adom = ActiveDomain.build(instances=(database,), queries=[query],
                              tableaux=[tableau])
    # register every variable so the "all" pool has 4 fresh values
    for variable in tableau.ordered_variables():
        adom.fresh_for(variable)

    def enumerate_all():
        return sum(1 for _ in iter_valid_valuations(
            tableau, adom, fresh=fresh))

    count = benchmark(enumerate_all)
    benchmark.extra_info["fresh_policy"] = fresh
    benchmark.extra_info["valuations"] = count
    # own: (4 constants + 1 fresh)^4; all: (4 constants + 4 fresh)^4
    expected = 5 ** 4 if fresh == "own" else 8 ** 4
    assert count == expected


@pytest.mark.parametrize("verify", [True, False])
def test_ablation_witness_verification(benchmark, verify):
    """ABL-3: the cost of re-verifying RCQP witnesses through RCDP."""
    cnf = CNF([(1, 2, 2), (-1, -2, -2), (1, -2, -2), (-1, 2, 2)])  # unsat
    instance = reduce_3sat_to_rcqp(cnf)

    result = benchmark(
        decide_rcqp_with_inds, instance.query, instance.master,
        list(instance.constraints), instance.schema,
        verify_witness=verify)
    assert result.status is RCQPStatus.NONEMPTY
    benchmark.extra_info["verify_witness"] = verify
