"""Example 1.1's Q3: completeness is relative to the query language.

``Manage`` contains all master reporting pairs and is bounded by them, so
under the IND ``Manage ⊆ Managem`` the relation cannot grow at all — it is
closed.  The *datalog* query "everyone above e0" is therefore complete.
The *CQ* approximation (paths of one fixed length) is complete too, but it
answers a different, weaker question; and without the closing IND, the CQ
answer is incomplete as soon as master data would admit longer chains.

The exact deciders refuse FP (RCDP is undecidable there — Theorem 3.1);
the bounded procedure is the honest tool, and because the IND freezes
``Manage``, its COMPLETE_UP_TO_BOUND verdict is conclusive here.

Run:  python examples/management_hierarchy.py
"""

from repro.core import brute_force_rcdp, decide_rcdp
from repro.core.results import RCDPStatus
from repro.errors import UndecidableConfigurationError
from repro.mdm import CRMScenario


def main() -> None:
    scenario = CRMScenario.example()
    database = scenario.database()
    master = scenario.master()
    constraints = [scenario.manage_ind()]

    q3_fp = scenario.q3_management_chain("e0")
    print(f"FP query Q3: {q3_fp}")
    print("answer:", sorted(q3_fp.evaluate(database)))
    print()

    # The exact decider refuses FP — Theorem 3.1 says it must.
    try:
        decide_rcdp(q3_fp, database, master, constraints)
    except UndecidableConfigurationError as error:
        print(f"exact decider: {error}")
    print()

    # Bounded procedure: Manage is frozen by the IND, so no extension of
    # any size exists — the bounded verdict is conclusive.
    employees = sorted({e for pair in scenario.manage_master
                        for e in pair} | {"e9"})
    verdict = brute_force_rcdp(
        q3_fp, database, master, constraints, max_extra_facts=2,
        values=employees, relations=["Manage"])
    print(f"bounded RCDP for Q3 (FP): {verdict.status.value}")
    print(f"  {verdict.explanation}")
    assert verdict.status is RCDPStatus.COMPLETE_UP_TO_BOUND
    print()

    # The CQ variant asks only for managers exactly 2 levels up.
    q3_cq = scenario.q3_management_chain_cq("e0", depth=2)
    print(f"CQ variant: {q3_cq}")
    print("answer:", sorted(q3_cq.evaluate(database)))
    exact = decide_rcdp(q3_cq, database, master, constraints)
    print(f"exact RCDP for the CQ variant: {exact.status.value}")
    print()
    print("with the closing IND both are complete — but only the FP")
    print("query computes the full chain; a CQ of any fixed depth")
    print("answers a strictly weaker question (the paper's point that")
    print("completeness is relative to the query language).")


if __name__ == "__main__":
    main()
