"""Supply-chain completeness: the same theory, a different domain.

Section 2.3 mentions SCM alongside CRM; this example audits shipment data
against two master relations (approved suppliers and a part catalog) and
shows all three §2.3 outcomes on one schema, plus the completeness
*margin* (how many answers could still appear).

Run:  python examples/supply_chain.py
"""

from repro.core import (decide_rcdp, enumerate_missing_answers,
                        make_complete)
from repro.core.analysis import analyze_boundedness
from repro.core.results import RCDPStatus
from repro.mdm.scm import SCMScenario


def main() -> None:
    scenario = SCMScenario.example()
    master = scenario.master()
    constraints = scenario.default_constraints()
    database = scenario.database()

    print("master data:")
    print(master.pretty())
    print()
    print("shipments:")
    print(database.pretty())
    print()

    print("=" * 64)
    print("Which suppliers shipped bolts?  (bounded by ApprovedSup)")
    print("=" * 64)
    q_bolts = scenario.q_suppliers_of_category("bolts")
    verdict = decide_rcdp(q_bolts, database, master, constraints)
    print(f"RCDP: {verdict.status.value}")
    margin = enumerate_missing_answers(q_bolts, database, master,
                                       constraints)
    print(f"answers that could still appear: {sorted(margin)}")
    outcome = make_complete(q_bolts, database, master, constraints)
    print(f"to close the gap, collect: {list(outcome.added_facts)}")
    final = decide_rcdp(q_bolts, outcome.database, master, constraints)
    assert final.status is RCDPStatus.COMPLETE
    print("after collection: complete ✓")
    print()

    print("=" * 64)
    print("Which parts has acme shipped?  (bounded by the catalog)")
    print("=" * 64)
    q_parts = scenario.q_parts_from("acme")
    margin = enumerate_missing_answers(q_parts, database, master,
                                       constraints)
    print(f"missing parts: {sorted(margin)} — acme may yet ship them")
    print()

    print("=" * 64)
    print("Which shipment ids exist?  (ids are not mastered)")
    print("=" * 64)
    q_sids = scenario.q_shipment_ids()
    ind_only = [scenario.supplier_ind(), scenario.part_ind(),
                scenario.part_info_ind()]
    report = analyze_boundedness(q_sids, ind_only, scenario.schema)
    for suggestion in report.master_data_suggestions():
        print(f"→ {suggestion}")
    print("no master relation bounds shipment ids: this query can never")
    print("be relatively complete until shipment ids are mastered.")


if __name__ == "__main__":
    main()
