"""Regenerate Tables I and II of the paper, row by row, with evidence.

The paper's evaluation is two complexity tables.  For every row this
script prints the paper's bound next to what this implementation
*demonstrates* for it: verdict agreement between the decision procedure
and an independent reference solver on reduction-generated instances, or
— for the undecidable rows — the guard/bounded behaviour.

Run:  python examples/reproduce_tables.py        (~20 s)
"""

import itertools
import random
import time

from repro.core import (brute_force_rcdp, decide_rcdp,
                        decide_rcqp, decide_rcqp_with_inds)
from repro.core.results import RCDPStatus, RCQPStatus
from repro.errors import UndecidableConfigurationError
from repro.reductions import (reduce_3sat_to_rcqp,
                              reduce_dfa_emptiness_to_rcdp,
                              reduce_exists_forall_3sat_to_rcqp,
                              reduce_forall_exists_3sat_to_rcdp,
                              reduce_tiling_to_rcqp)
from repro.solvers import (TilingInstance, TwoHeadDFA, dpll_satisfiable,
                           random_3sat, random_exists_forall_3sat,
                           random_forall_exists_3sat, solve_tiling)
from repro.solvers.twohead import EPSILON

WIDTH = 78


def row(cells: tuple[str, str, str]) -> None:
    name, bound, evidence = cells
    print(f"  {name:<22} {bound:<18} {evidence}")


def header(title: str) -> None:
    print()
    print("=" * WIDTH)
    print(title)
    print("=" * WIDTH)
    row(("(L_Q, L_C)", "paper bound", "measured evidence"))
    print("-" * WIDTH)


def table_one() -> None:
    header("Table I — RCDP(L_Q, L_C)")

    # Undecidable rows: guard + DFA encoding behaviour.
    automaton = TwoHeadDFA(
        states={"s", "m", "acc"},
        transitions={
            ("s", "0", "0"): ("s", 0, 1),
            ("s", "0", "1"): ("m", 1, 1),
            ("m", "0", "1"): ("m", 1, 1),
            ("m", "1", EPSILON): ("acc", 0, 0),
        },
        initial="s", accepting="acc")
    instance = reduce_dfa_emptiness_to_rcdp(automaton)
    try:
        decide_rcdp(instance.query, instance.database, instance.master,
                    list(instance.constraints))
        guard = "GUARD MISSING!"
    except UndecidableConfigurationError:
        guard = "exact decider refuses; "
    bounded = brute_force_rcdp(
        instance.query, instance.database, instance.master,
        list(instance.constraints), max_extra_facts=5, values=[0, 1, 2])
    guard += f"bounded search: {bounded.status.value} (L(A) ∋ '01')"
    for name in ("(FO, CQ)", "(CQ, FO)", "(FP, CQ)", "(fix FP, FP)"):
        row((name, "undecidable", guard if name == "(FP, CQ)"
             else "exact decider refuses the configuration"))

    # Πᵖ₂ rows: ∀∃-3SAT reduction vs QBF.
    rng = random.Random(0)
    agree = total = 0
    start = time.perf_counter()
    for _ in range(6):
        formula = random_forall_exists_3sat(2, 2, rng.randint(1, 6), rng)
        red = reduce_forall_exists_3sat_to_rcdp(formula)
        verdict = decide_rcdp(red.query, red.database, red.master,
                              list(red.constraints))
        agree += ((verdict.status is RCDPStatus.COMPLETE)
                  == formula.is_true())
        total += 1
    elapsed = time.perf_counter() - start
    evidence = (f"∀∃-3SAT reduction: {agree}/{total} agree with QBF "
                f"({elapsed:.2f}s)")
    for name in ("(CQ, INDs)", "(∃FO⁺, INDs)", "(CQ, CQ)",
                 "(UCQ, UCQ)", "(∃FO⁺, ∃FO⁺)"):
        row((name, "Πᵖ₂-complete", evidence if name == "(CQ, INDs)"
             else "same decider; see bench_table1_rcdp.py"))


def table_two() -> None:
    header("Table II — RCQP(L_Q, L_C)")

    for name in ("(FO, fix FO)", "(CQ, FO)", "(FP, fix FP)", "(CQ, FP)"):
        row((name, "undecidable",
             "exact decider refuses; bounded witness search only"))

    # coNP rows: 3SAT reduction vs DPLL.
    rng = random.Random(1)
    agree = total = 0
    start = time.perf_counter()
    for _ in range(6):
        cnf = random_3sat(3, rng.randint(1, 9), rng)
        red = reduce_3sat_to_rcqp(cnf)
        verdict = decide_rcqp_with_inds(
            red.query, red.master, list(red.constraints), red.schema,
            construct_witness=False)
        agree += ((verdict.status is RCQPStatus.EMPTY)
                  == (dpll_satisfiable(cnf) is not None))
        total += 1
    elapsed = time.perf_counter() - start
    evidence = (f"3SAT reduction: {agree}/{total} agree with DPLL "
                f"({elapsed:.2f}s)")
    for name in ("(CQ, INDs)", "(UCQ, INDs)", "(∃FO⁺, INDs)"):
        row((name, "coNP-complete", evidence if name == "(CQ, INDs)"
             else "same syntactic E3/E4 decider"))

    # NEXPTIME rows: tiling reduction vs solver.
    start = time.perf_counter()
    checker = TilingInstance((0, 1), {(0, 1), (1, 0)}, {(0, 1), (1, 0)},
                             0, 2)
    grid = solve_tiling(checker)
    red = reduce_tiling_to_rcqp(checker)
    witness = red.witness_from_grid(grid)
    ok = decide_rcdp(red.query, witness, red.master,
                     list(red.constraints)).status is RCDPStatus.COMPLETE
    broken = TilingInstance((0, 1),
                            {(a, b) for a in (0, 1) for b in (0, 1)},
                            {(1, 1)}, 0, 2)
    red2 = reduce_tiling_to_rcqp(broken)
    bad = decide_rcdp(red2.query, red2.empty_candidate(), red2.master,
                      list(red2.constraints)).status \
        is RCDPStatus.INCOMPLETE
    elapsed = time.perf_counter() - start
    evidence = (f"4×4 tiling: witness {'✓' if ok else '✗'}, "
                f"unsolvable stays incomplete {'✓' if bad else '✗'} "
                f"({elapsed:.2f}s)")
    for name in ("(CQ, CQ)", "(UCQ, UCQ)", "(∃FO⁺, ∃FO⁺)"):
        row((name, "NEXPTIME-complete",
             evidence if name == "(CQ, CQ)"
             else "same construction; see bench_table2_rcqp_general.py"))

    # Fixed (Dm, V) rows.
    rng = random.Random(2)
    agree = total = 0
    start = time.perf_counter()
    for _ in range(4):
        formula = random_exists_forall_3sat(2, 2, rng.randint(1, 5), rng)
        red = reduce_exists_forall_3sat_to_rcqp(formula)
        found = False
        for values in itertools.product(
                (False, True), repeat=len(formula.existential)):
            witness = red.witness_for(
                dict(zip(formula.existential, values)))
            verdict = decide_rcdp(red.query, witness, red.master,
                                  list(red.constraints))
            if verdict.status is RCDPStatus.COMPLETE:
                found = True
                break
        agree += (found == formula.is_true())
        total += 1
    elapsed = time.perf_counter() - start
    row(("fixed (Dm, V)", "Σᵖ₃-complete",
         f"∃∀ fragment executable: {agree}/{total} agree with QBF "
         f"({elapsed:.2f}s; see EXPERIMENTS.md deviation note)"))


def main() -> None:
    print("Regenerating the paper's complexity tables with executable")
    print("evidence (verdict agreement against independent solvers).")
    table_one()
    table_two()
    print()
    print("Full matrices: pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
