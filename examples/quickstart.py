"""Quickstart: is my database complete enough to answer this query?

A support desk stores which employee supports which customer.  Master data
holds the closed-world list of customers.  The containment constraint says
every supported customer must be a master customer — so once employee e0
supports *all* master customers, no consistent extension can change the
answer to "which customers does e0 support?".

Run:  python examples/quickstart.py
"""

from repro import (ContainmentConstraint, DatabaseSchema, Instance,
                   InclusionDependency, RCDPStatus, RCQPStatus,
                   RelationSchema, cq, decide_rcdp, decide_rcqp,
                   make_complete, rel, var)


def build_world():
    schema = DatabaseSchema([RelationSchema("Supt", ["eid", "cid"])])
    master_schema = DatabaseSchema([RelationSchema("Customers", ["cid"])])
    master = Instance(master_schema, {
        "Customers": {("c1",), ("c2",), ("c3",)}})
    constraint = InclusionDependency(
        "Supt", ["cid"], "Customers", ["cid"],
        name="supported⊆customers").to_containment_constraint(
        schema, master_schema)
    return schema, master, [constraint]


def main() -> None:
    schema, master, constraints = build_world()
    query = cq([var("c")], [rel("Supt", "e0", var("c"))], name="Q")
    print(f"query: {query}")
    print(f"constraint: {constraints[0]}")
    print()

    # An incomplete database: e0 supports only c1.
    partial = Instance(schema, {"Supt": {("e0", "c1")}})
    verdict = decide_rcdp(query, partial, master, constraints)
    print(f"D = {partial}")
    print(f"RCDP: {verdict.status.value} — {verdict.explanation}")
    assert verdict.status is RCDPStatus.INCOMPLETE
    print(f"certificate: {verdict.certificate}")
    print()

    # Does a complete database exist at all?  (It does: the output column
    # is bounded by the IND.)
    existence = decide_rcqp(query, master, constraints, schema)
    print(f"RCQP: {existence.status.value} — {existence.explanation}")
    assert existence.status is RCQPStatus.NONEMPTY
    print()

    # The §2.3 guidance: what should we collect?
    outcome = make_complete(query, partial, master, constraints)
    print(f"completion: {outcome}")
    for name, row in outcome.added_facts:
        print(f"  collect {name}{row!r}")
    final = decide_rcdp(query, outcome.database, master, constraints)
    print(f"after collection RCDP: {final.status.value}")
    assert final.status is RCDPStatus.COMPLETE


if __name__ == "__main__":
    main()
