"""Missing values, not just missing tuples (the paper's §5 extension).

A support record is known to exist but its customer field was never filled
in.  With v-tables/c-tables we can still ask: *is the answer to Q complete
no matter what the missing value turns out to be?*

Run:  python examples/missing_values.py
"""

from repro import (DatabaseSchema, InclusionDependency, Instance,
                   RelationSchema, cq, rel, var)
from repro.incomplete import (ConditionalRow, IncompleteDatabase,
                              MarkedNull, NeqCondition, conjunction,
                              decide_rcdp_with_missing_values)


def main() -> None:
    schema = DatabaseSchema([RelationSchema("Supt", ["eid", "cid"])])
    master_schema = DatabaseSchema([RelationSchema("M", ["cid"])])
    master = Instance(master_schema, {"M": {("c1",), ("c2",)}})
    constraints = [InclusionDependency(
        "Supt", ["cid"], "M", ["cid"]).to_containment_constraint(
        schema, master_schema)]
    query = cq([var("c")], [rel("Supt", "e0", var("c"))], name="Q")
    domain = ["c1", "c2"]

    x = MarkedNull("x")

    print("=" * 64)
    print("Case 1: the unknown value decides completeness")
    print("=" * 64)
    db1 = IncompleteDatabase(schema, {"Supt": {("e0", "c1"), ("e0", x)}})
    print(f"D = {db1}")
    print("certain answers:", sorted(db1.certain_answers(query, domain)))
    print("possible answers:",
          sorted(db1.possible_answers(query, domain)))
    report = decide_rcdp_with_missing_values(
        query, db1, master, constraints, domain)
    print(report)
    print(f"certainly complete: {report.certainly_complete}")
    print(f"possibly complete:  {report.possibly_complete}")
    print("→ if ⊥x turns out to be c2, e0 covers all master customers;")
    print("  if it is c1, customer c2 is still missing.")
    print()

    print("=" * 64)
    print("Case 2: complete whatever the unknown value is")
    print("=" * 64)
    db2 = IncompleteDatabase(schema, {
        "Supt": {("e0", "c1"), ("e0", "c2"), ("e0", x)}})
    report2 = decide_rcdp_with_missing_values(
        query, db2, master, constraints, domain)
    print(f"D = {db2}")
    print(report2)
    assert report2.certainly_complete
    print("→ both master customers are covered by known records, so the")
    print("  unknown value cannot break completeness.")
    print()

    print("=" * 64)
    print("Case 3: a c-table condition prunes worlds")
    print("=" * 64)
    row = ConditionalRow(("e0", x), conjunction(NeqCondition(x, "c1")))
    db3 = IncompleteDatabase(schema, {"Supt": [("e0", "c1"), row]})
    report3 = decide_rcdp_with_missing_values(
        query, db3, master, constraints, domain)
    print(f"D = {db3}")
    print(report3)
    print("→ the condition ⊥x ≠ c1 kills the world where the unknown row")
    print("  duplicates (e0, c1); in the surviving world ⊥x = c2 and the")
    print("  database is complete — but the x=c1 world has an EMPTY row")
    print("  set for the conditional tuple, leaving c2 unsupported.")


if __name__ == "__main__":
    main()
