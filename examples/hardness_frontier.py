"""Touring the complexity frontier with executable reductions.

The paper's lower bounds are constructive; this example runs three of them
end-to-end on concrete instances and checks the decider's verdict against
an independent solver:

* Πᵖ₂ (Theorem 3.6): a ∀∃-3SAT formula becomes an RCDP instance;
* coNP (Theorem 4.5(1)): a 3SAT formula becomes an RCQP instance with
  fixed INDs, decided by the *syntactic* E3/E4 test;
* NEXPTIME (Theorem 4.5(2)): a 2×2 tiling problem becomes an RCQP
  instance whose witness stores the tiling's hypertile decomposition.

Run:  python examples/hardness_frontier.py
"""

from repro.core import decide_rcdp, decide_rcqp_with_inds
from repro.core.results import RCDPStatus, RCQPStatus
from repro.reductions import (reduce_3sat_to_rcqp,
                              reduce_forall_exists_3sat_to_rcdp,
                              reduce_tiling_to_rcqp)
from repro.solvers import (CNF, ForallExists3SAT, TilingInstance,
                           dpll_satisfiable, solve_tiling)


def forall_exists_demo() -> None:
    print("=" * 64)
    print("Πᵖ₂: ∀x ∃y. (x ∨ y) ∧ (¬x ∨ ¬y)   [true: pick y = ¬x]")
    print("=" * 64)
    formula = ForallExists3SAT([1], [2], CNF([(1, 2), (-1, -2)]))
    instance = reduce_forall_exists_3sat_to_rcdp(formula)
    verdict = decide_rcdp(instance.query, instance.database,
                          instance.master, list(instance.constraints))
    print(f"QBF solver: {formula.is_true()}")
    print(f"RCDP verdict: {verdict.status.value} "
          f"({verdict.statistics.valuations_examined} valuations)")
    assert verdict.status is RCDPStatus.COMPLETE
    print()


def sat_demo() -> None:
    print("=" * 64)
    print("coNP: 3SAT ⟶ RCQP with INDs "
          "(satisfiable ⇒ NO complete database)")
    print("=" * 64)
    satisfiable = CNF([(1, 2, 3)])
    unsatisfiable = CNF([(1, 2, 2), (-1, -2, -2), (1, -2, -2), (-1, 2, 2)])
    for label, cnf in (("satisfiable", satisfiable),
                       ("unsatisfiable", unsatisfiable)):
        instance = reduce_3sat_to_rcqp(cnf)
        verdict = decide_rcqp_with_inds(
            instance.query, instance.master, list(instance.constraints),
            instance.schema)
        model = dpll_satisfiable(cnf)
        print(f"{label}: DPLL={'sat' if model else 'unsat'}  "
              f"RCQP={verdict.status.value}")
        assert (verdict.status is RCQPStatus.EMPTY) == (model is not None)
    print()


def tiling_demo() -> None:
    print("=" * 64)
    print("NEXPTIME: 2×2 checkerboard tiling ⟶ RCQP(CQ, CQ)")
    print("=" * 64)
    tiling = TilingInstance(
        tiles=(0, 1), vertical={(0, 1), (1, 0)},
        horizontal={(0, 1), (1, 0)}, first_tile=0, exponent=1)
    grid = solve_tiling(tiling)
    print(f"tiling solver found: {grid}")
    reduction = reduce_tiling_to_rcqp(tiling)
    witness = reduction.witness_from_grid(grid)
    verdict = decide_rcdp(reduction.query, witness, reduction.master,
                          list(reduction.constraints))
    print(f"hypertile witness stores {witness.total_tuples} tuple(s); "
          f"RCDP on it: {verdict.status.value}")
    assert verdict.status is RCDPStatus.COMPLETE
    print()
    print("the witness is relatively complete exactly because the final")
    print("containment constraint 'sees' the stored tiling and freezes")
    print("the probe relation — no tiling, no freeze, no completeness.")


def main() -> None:
    forall_exists_demo()
    sat_demo()
    tiling_demo()


if __name__ == "__main__":
    main()
