"""Proposition 2.1: consistency and completeness in one framework.

Denial constraints, (conditional) functional dependencies, and conditional
inclusion dependencies all compile into containment constraints with an
empty master target — so one set ``V`` of CCs simultaneously enforces that
databases are *consistent* and bounds how they may grow.

This example compiles a CFD and a denial constraint, shows the compiled CCs
agree with direct semantics, and then demonstrates the paper's Example 3.1:
under the FD ``eid → dept, cid``, the answer to "customers supported by e0"
is complete as soon as it is nonempty.

Run:  python examples/consistency_constraints.py
"""

from repro import (ConditionalFunctionalDependency, DatabaseSchema,
                   DenialConstraint, FunctionalDependency, Instance,
                   RCDPStatus, RelationSchema, compile_all, cq,
                   decide_rcdp, neq, rel, satisfies_all, var)

SCHEMA = DatabaseSchema([RelationSchema("Supt", ["eid", "dept", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("Empty", ["z"])])
MASTER = Instance(MASTER_SCHEMA)


def main() -> None:
    # --- compile integrity constraints to CCs -------------------------
    cfd = ConditionalFunctionalDependency(
        "Supt", ["eid", "dept"], ["cid"], lhs_pattern={"dept": "BU"},
        name="BU-key")
    denial = DenialConstraint(
        [rel("Supt", var("e"), var("d1"), var("c")),
         rel("Supt", var("e"), var("d2"), var("c")),
         neq(var("d1"), var("d2"))],
        name="one-dept-per-support")
    compiled = compile_all([cfd, denial], SCHEMA, MASTER_SCHEMA)
    print(f"compiled {len(compiled)} containment constraint(s):")
    for cc in compiled:
        print(f"  {cc}")
    print()

    consistent = Instance(SCHEMA, {
        "Supt": {("e0", "BU", "c1"), ("e1", "sales", "c2")}})
    inconsistent = Instance(SCHEMA, {
        "Supt": {("e0", "BU", "c1"), ("e0", "BU", "c2")}})
    for name, db in (("consistent", consistent),
                     ("inconsistent", inconsistent)):
        direct = cfd.is_satisfied(db) and denial.is_satisfied(db)
        via_cc = satisfies_all(db, MASTER, compiled)
        print(f"{name}: direct={direct}  via CCs={via_cc}")
        assert direct == via_cc
    print()

    # --- Example 3.1: FD makes a nonempty answer complete --------------
    fd = FunctionalDependency("Supt", ["eid"], ["dept", "cid"])
    v = fd.to_containment_constraints(SCHEMA)
    q2 = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))], name="Q2")

    nonempty = Instance(SCHEMA, {"Supt": {("e0", "sales", "c1")}})
    empty = Instance(SCHEMA, {"Supt": {("e9", "sales", "c1")}})
    for label, db in (("nonempty answer", nonempty),
                      ("empty answer", empty)):
        verdict = decide_rcdp(q2, db, MASTER, v)
        print(f"Q2 with FD eid→dept,cid; {label}: "
              f"{verdict.status.value}")
    print()
    print("the FD caps e0 at one support tuple, so one answer row is")
    print("already the whole answer — exactly Example 3.1 of the paper.")
    assert decide_rcdp(q2, nonempty, MASTER, v).status \
        is RCDPStatus.COMPLETE


if __name__ == "__main__":
    main()
