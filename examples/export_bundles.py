"""Export the example scenarios as JSON bundles.

Writes the bundles under ``examples/bundles/``; CI lints them
(``repro lint examples/bundles/*.json``) and expects every one to come
out clean (exit 0 — info-level findings allowed), and the bundle-corpus
regression test replays each one against its ``expected`` golden block.
Run this script again after changing :mod:`repro.mdm.scenario`, the
corpus generator, or the wire format.

Two kinds of bundle are exported:

* the three hand-built CRM bundles of the paper's narrative — their
  existing golden blocks (``expected``, ``trace``) are *preserved*
  across re-export, so regenerating the problem payload does not wipe
  the goldens;
* one generated corpus scenario per domain family, pinned by seed —
  their ``expected`` blocks are stamped fresh by the generation oracle,
  so the goldens move with the generator (bump the pinned seed/index
  deliberately, never silently).
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.io.json_io import dump_bundle  # noqa: E402
from repro.corpus.generate import dump_scenario  # noqa: E402
from repro.mdm.scenario import CRMScenario  # noqa: E402

BUNDLES_DIR = pathlib.Path(__file__).resolve().parent / "bundles"

#: (family, index) pinned into examples/bundles/ — a tier/size/verdict
#: mix: crm #3 and hierarchy #5 are INCOMPLETE (witness goldens), erp #0
#: and scm #1 are COMPLETE (scm #1 adds the FD denial CCs).
GOLDEN_SEED = 9
GOLDEN_SCENARIOS = (("crm", 3), ("erp", 0), ("scm", 1), ("hierarchy", 5))

_PROBLEM_KEYS = frozenset((
    "schema", "master_schema", "database", "master", "query",
    "constraints"))


def _preserved_extra(path: pathlib.Path) -> dict:
    """The non-problem blocks of an existing bundle (goldens ride along
    across re-export instead of being clobbered)."""
    if not path.exists():
        return {}
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return {key: value for key, value in payload.items()
            if key not in _PROBLEM_KEYS}


def _dump_preserving(path: pathlib.Path, **problem) -> None:
    dump_bundle(str(path), extra=_preserved_extra(path), **problem)


def export() -> list[pathlib.Path]:
    BUNDLES_DIR.mkdir(exist_ok=True)
    scenario = CRMScenario.example()
    written = []

    # q0 over the default constraint set (φ0, cust01, manage⊆managem):
    # the paper's "domestic customers in area code 908" query.
    path = BUNDLES_DIR / "crm_q0_area_code.json"
    _dump_preserving(path, schema=scenario.schema,
                     master_schema=scenario.master_schema,
                     database=scenario.database(),
                     master=scenario.master(),
                     query=scenario.q0_customers_with_area_code(),
                     constraints=scenario.default_constraints())
    written.append(path)

    # q1 (customers supported by e0 in area 908) — Example 1.1's query.
    path = BUNDLES_DIR / "crm_q1_supported.json"
    _dump_preserving(path, schema=scenario.schema,
                     master_schema=scenario.master_schema,
                     database=scenario.database(),
                     master=scenario.master(),
                     query=scenario.q1_customers_supported_by(),
                     constraints=scenario.default_constraints())
    written.append(path)

    # q2 (all customers supported by e0) against the domestic-support
    # IND: the support table is restricted to domestic customers so that
    # (D, Dm) is partially closed under supt⊆dcust.
    domestic = CRMScenario.example()
    domestic.support = {(e, d, c) for e, d, c in domestic.support
                        if not c.startswith("i")}
    path = BUNDLES_DIR / "crm_q2_supported_ind.json"
    _dump_preserving(path, schema=domestic.schema,
                     master_schema=domestic.master_schema,
                     database=domestic.database(),
                     master=domestic.master(),
                     query=domestic.q2_all_supported_by(),
                     constraints=[domestic.supt_cid_ind()])
    written.append(path)

    # One generated corpus scenario per family, seed-pinned; the
    # generation oracle stamps the expected block.
    for family, index in GOLDEN_SCENARIOS:
        spec = dump_scenario(
            str(BUNDLES_DIR / f"gen_{family}_golden.json"),
            family, GOLDEN_SEED, index)
        written.append(BUNDLES_DIR / f"gen_{family}_golden.json")
        print(f"  {family} golden: tier={spec.tier} size={spec.size} "
              f"target={spec.target}")

    return written


if __name__ == "__main__":
    for path in export():
        print(f"wrote {path}")
