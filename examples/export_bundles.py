"""Export the CRM example scenarios as JSON bundles.

Writes the bundles under ``examples/bundles/``; CI lints them
(``repro lint examples/bundles/*.json``) and expects every one to come
out clean (exit 0 — info-level findings allowed).  Run this script again
after changing :mod:`repro.mdm.scenario` or the wire format.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.io.json_io import dump_bundle  # noqa: E402
from repro.mdm.scenario import CRMScenario  # noqa: E402

BUNDLES_DIR = pathlib.Path(__file__).resolve().parent / "bundles"


def export() -> list[pathlib.Path]:
    BUNDLES_DIR.mkdir(exist_ok=True)
    scenario = CRMScenario.example()
    written = []

    # q0 over the default constraint set (φ0, cust01, manage⊆managem):
    # the paper's "domestic customers in area code 908" query.
    path = BUNDLES_DIR / "crm_q0_area_code.json"
    dump_bundle(str(path), schema=scenario.schema,
                master_schema=scenario.master_schema,
                database=scenario.database(), master=scenario.master(),
                query=scenario.q0_customers_with_area_code(),
                constraints=scenario.default_constraints())
    written.append(path)

    # q1 (customers supported by e0 in area 908) — Example 1.1's query.
    path = BUNDLES_DIR / "crm_q1_supported.json"
    dump_bundle(str(path), schema=scenario.schema,
                master_schema=scenario.master_schema,
                database=scenario.database(), master=scenario.master(),
                query=scenario.q1_customers_supported_by(),
                constraints=scenario.default_constraints())
    written.append(path)

    # q2 (all customers supported by e0) against the domestic-support
    # IND: the support table is restricted to domestic customers so that
    # (D, Dm) is partially closed under supt⊆dcust.
    domestic = CRMScenario.example()
    domestic.support = {(e, d, c) for e, d, c in domestic.support
                        if not c.startswith("i")}
    path = BUNDLES_DIR / "crm_q2_supported_ind.json"
    dump_bundle(str(path), schema=domestic.schema,
                master_schema=domestic.master_schema,
                database=domestic.database(), master=domestic.master(),
                query=domestic.q2_all_supported_by(),
                constraints=[domestic.supt_cid_ind()])
    written.append(path)

    return written


if __name__ == "__main__":
    for path in export():
        print(f"wrote {path}")
