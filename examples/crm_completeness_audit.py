"""The paper's Section 2.3 walkthrough: auditing a CRM database.

Reproduces the three paradigms on the running CRM example (Examples 1.1,
2.1, 2.2):

1. *Assess the data* — RCDP tells us whether Q's answer can be trusted;
2. *Guide data collection* — RCQP + certificates tell us what to collect;
3. *Guide master-data expansion* — when no complete database exists, the
   master data itself is the bottleneck.

Run:  python examples/crm_completeness_audit.py
"""

from repro.mdm import CompletenessAudit, CRMScenario
from repro.queries import cq, rel, var


def main() -> None:
    scenario = CRMScenario.example()
    # Keep only domestic support so the strict IND applies (Example 1.1's
    # point about international customers is made separately below).
    scenario.support = {(e, d, c) for e, d, c in scenario.support
                        if not c.startswith("i")}

    audit = CompletenessAudit(
        master=scenario.master(),
        constraints=[scenario.supt_cid_ind()],
        schema=scenario.schema)
    database = scenario.database()

    print("=" * 64)
    print("Paradigm 1+2: Q2 = customers supported by e0")
    print("=" * 64)
    q2 = scenario.q2_all_supported_by("e0")
    report = audit.assess(q2, database)
    print(report.summary())
    print()
    print("e0 supports", sorted(q2.evaluate(database)))
    print("the audit recommends collecting:")
    for name, row in report.suggested_facts:
        print(f"  + {name}{row!r}")
    print()

    print("=" * 64)
    print("Paradigm 1: once collected, the answer is trustworthy")
    print("=" * 64)
    assert report.completion is not None
    repaired = report.completion.database
    report2 = audit.assess(q2, repaired)
    print(report2.summary())
    print()

    print("=" * 64)
    print("Paradigm 3: Q asking for *employees* can never be complete")
    print("=" * 64)
    q_employees = cq([var("e")],
                     [rel("Supt", var("e"), var("d"), var("c"))],
                     name="Qemp")
    report3 = audit.assess(q_employees, database)
    print(report3.summary())
    print()
    print("no master relation bounds employees: to answer this query")
    print("completely, the company must master employee data first.")


if __name__ == "__main__":
    main()
