"""Smoke tests: every example script must run to completion.

The examples contain their own assertions (they double as executable
documentation), so a clean exit is a meaningful check.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("name", [
    "quickstart",
    "crm_completeness_audit",
    "consistency_constraints",
    "management_hierarchy",
    "hardness_frontier",
    "missing_values",
    "supply_chain",
    "reproduce_tables",
])
def test_example_runs(name, capsys):
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        module = importlib.import_module(name)
        module.main()
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
    out = capsys.readouterr().out
    assert out  # each example narrates what it does
