"""Tests for the supply-chain MDM scenario."""

import pytest

from repro.constraints.containment import satisfies_all
from repro.core.analysis import analyze_boundedness
from repro.core.rcdp import decide_rcdp, enumerate_missing_answers
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.mdm.audit import AuditVerdict, CompletenessAudit
from repro.mdm.scm import SCMScenario


@pytest.fixture
def scenario():
    return SCMScenario.example()


class TestScenario:
    def test_database_partially_closed(self, scenario):
        assert satisfies_all(scenario.database(), scenario.master(),
                             scenario.default_constraints())

    def test_missing_shipments_knob(self, scenario):
        db = scenario.database(missing_shipments=["s1"])
        sids = {row[0] for row in db["Ship"]}
        assert "s1" not in sids and "s2" in sids

    def test_q_parts_from(self, scenario):
        q = scenario.q_parts_from("acme")
        assert q.evaluate(scenario.database()) == frozenset(
            {("p1",), ("p2",)})

    def test_q_suppliers_of_category(self, scenario):
        q = scenario.q_suppliers_of_category("bolts")
        assert q.evaluate(scenario.database()) == frozenset({("acme",)})


class TestCompleteness:
    def test_category_suppliers_bounded_by_master(self, scenario):
        # globex has not shipped bolts yet, so the answer can still grow.
        q = scenario.q_suppliers_of_category("bolts")
        result = decide_rcdp(q, scenario.database(), scenario.master(),
                             scenario.default_constraints())
        assert result.status is RCDPStatus.INCOMPLETE
        missing = enumerate_missing_answers(
            q, scenario.database(), scenario.master(),
            scenario.default_constraints())
        assert missing == frozenset({("globex",)})

    def test_category_suppliers_complete_once_both_ship(self, scenario):
        scenario.shipments.add(("s4", "globex", "p1"))
        q = scenario.q_suppliers_of_category("bolts")
        result = decide_rcdp(q, scenario.database(), scenario.master(),
                             scenario.default_constraints())
        assert result.status is RCDPStatus.COMPLETE

    def test_parts_from_supplier_bounded_by_catalog(self, scenario):
        # acme could still ship p3 — incomplete until it has shipped every
        # catalog part.
        q = scenario.q_parts_from("acme")
        result = decide_rcdp(q, scenario.database(), scenario.master(),
                             scenario.default_constraints())
        assert result.status is RCDPStatus.INCOMPLETE
        scenario.shipments.add(("s5", "acme", "p3"))
        result = decide_rcdp(q, scenario.database(), scenario.master(),
                             scenario.default_constraints())
        assert result.status is RCDPStatus.COMPLETE

    def test_shipment_ids_need_master_expansion(self, scenario):
        q = scenario.q_shipment_ids()
        result = decide_rcqp(q, scenario.master(),
                             scenario.default_constraints(),
                             scenario.schema,
                             max_valuation_set_size=1)
        assert result.status in (RCQPStatus.EMPTY,
                                 RCQPStatus.EMPTY_UP_TO_BOUND)
        # With IND-only constraints the report is exact: sid is unbounded
        # and the suggestion names its column.  (Under the sid-key FD the
        # variable is merely CONSTRAINED — the FD touches the column but
        # cannot bound an infinite key, as the decider verdict shows.)
        ind_only = [scenario.supplier_ind(), scenario.part_ind(),
                    scenario.part_info_ind()]
        report = analyze_boundedness(q, ind_only, scenario.schema)
        (suggestion,) = report.master_data_suggestions()
        assert "Ship.sid" in suggestion


class TestAudit:
    def test_audit_cascade(self, scenario):
        audit = CompletenessAudit(
            master=scenario.master(),
            constraints=[scenario.supplier_ind(), scenario.part_ind(),
                         scenario.part_info_ind()],
            schema=scenario.schema)
        q = scenario.q_suppliers_of_category("bolts")
        report = audit.assess(q, scenario.database())
        assert report.verdict is AuditVerdict.COLLECT_DATA
        suggested_suppliers = {
            row[1] for name, row in report.suggested_facts
            if name == "Ship"}
        assert "globex" in suggested_suppliers
