"""Tests for attribute domains and fresh values."""

import pytest

from repro.errors import DomainError
from repro.relational.domain import (BOOLEAN, FiniteDomain, FreshValue,
                                     FreshValueSupply, INFINITE,
                                     InfiniteDomain, is_fresh)


class TestInfiniteDomain:
    def test_contains_arbitrary_hashables(self):
        assert "abc" in INFINITE
        assert 42 in INFINITE
        assert (1, "a") in INFINITE

    def test_contains_fresh_values(self):
        assert FreshValue("x") in INFINITE

    def test_is_infinite(self):
        assert INFINITE.is_infinite

    def test_equality(self):
        assert INFINITE == InfiniteDomain()
        assert hash(INFINITE) == hash(InfiniteDomain())

    def test_validate_passes(self):
        INFINITE.validate("anything")


class TestFiniteDomain:
    def test_membership(self):
        dom = FiniteDomain({"a", "b", "c"})
        assert "a" in dom
        assert "z" not in dom

    def test_not_infinite(self):
        assert not FiniteDomain({"a", "b"}).is_infinite

    def test_requires_two_elements(self):
        with pytest.raises(DomainError):
            FiniteDomain({"only"})

    def test_rejects_fresh_values(self):
        with pytest.raises(DomainError):
            FiniteDomain({FreshValue("x"), "a"})

    def test_validate_raises_outside(self):
        dom = FiniteDomain({0, 1})
        with pytest.raises(DomainError):
            dom.validate(2, context="test")

    def test_iteration_is_deterministic(self):
        dom = FiniteDomain({"b", "a", "c"})
        assert list(dom) == list(dom)

    def test_len(self):
        assert len(FiniteDomain(range(5))) == 5

    def test_boolean_domain(self):
        assert 0 in BOOLEAN
        assert 1 in BOOLEAN
        assert 2 not in BOOLEAN
        assert len(BOOLEAN) == 2


class TestFreshValues:
    def test_identity_by_label(self):
        assert FreshValue("a") == FreshValue("a")
        assert FreshValue("a") != FreshValue("b")

    def test_never_equals_user_constants(self):
        assert FreshValue("a") != "a"

    def test_is_fresh(self):
        assert is_fresh(FreshValue("x"))
        assert not is_fresh("x")

    def test_supply_produces_distinct_values(self):
        supply = FreshValueSupply()
        values = supply.take_many(10)
        assert len(set(values)) == 10

    def test_distinct_supplies_distinct_prefixes(self):
        a = FreshValueSupply(prefix="a").take()
        b = FreshValueSupply(prefix="b").take()
        assert a != b

    def test_hint_embedded_in_label(self):
        value = FreshValueSupply().take(hint="myvar")
        assert "myvar" in value.label

    def test_hashable(self):
        assert len({FreshValue("a"), FreshValue("a"), FreshValue("b")}) == 2
