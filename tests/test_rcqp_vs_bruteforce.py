"""Cross-validation of the RCQP engines.

The characterization-based decider (:func:`repro.core.rcqp.decide_rcqp`)
and the definition-level witness search
(:func:`repro.core.bounded.brute_force_rcqp`) must never contradict each
other:

* an exact EMPTY from the characterization forbids the search from finding
  any witness;
* a NONEMPTY from either engine must come with a witness the exact RCDP
  decider certifies.
"""

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.ind import InclusionDependency
from repro.core.bounded import brute_force_rcqp
from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

SCHEMA = DatabaseSchema([
    RelationSchema("S", ["eid", "cid"]),
    RelationSchema("F", [Attribute("b", BOOLEAN)]),
])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
EMPTY_DM = Instance(MASTER_SCHEMA)


def _ind():
    return InclusionDependency(
        "S", ["cid"], "M", ["cid"]).to_containment_constraint(
        SCHEMA, MASTER_SCHEMA)


def _fd(*rhs):
    return FunctionalDependency(
        "S", ["eid"], list(rhs)).to_containment_constraints(SCHEMA)


CONFIGURATIONS = [
    # (name, query, master, constraints)
    ("ind-covered",
     cq([var("c")], [rel("S", "e0", var("c"))]), DM, [_ind()]),
    ("ind-uncovered",
     cq([var("e")], [rel("S", var("e"), var("c"))]), DM, [_ind()]),
    ("fd-full",
     cq([var("e"), var("c")],
        [rel("S", var("e"), var("c")), eq(var("e"), "e0")]),
     EMPTY_DM, _fd("cid")),
    ("no-constraints-finite",
     cq([var("b")], [rel("F", var("b"))]), EMPTY_DM, []),
    ("no-constraints-infinite",
     cq([var("c")], [rel("S", "e0", var("c"))]), EMPTY_DM, []),
    ("at-most-one-blocking",
     cq([var("e"), var("c")],
        [rel("S", var("e"), var("c")), eq(var("e"), "e0"),
         eq(var("c"), "c0")]),
     EMPTY_DM, _fd("cid")),
]


@pytest.mark.parametrize(
    "name, query, master, constraints",
    CONFIGURATIONS, ids=[c[0] for c in CONFIGURATIONS])
def test_engines_never_contradict(name, query, master, constraints):
    exact = decide_rcqp(query, master, constraints, SCHEMA,
                        max_valuation_set_size=2)
    search = brute_force_rcqp(query, master, constraints, SCHEMA,
                              max_database_size=2)

    if exact.status is RCQPStatus.NONEMPTY:
        # the witness must be genuinely complete
        verdict = decide_rcdp(query, exact.witness, master, constraints)
        assert verdict.status is RCDPStatus.COMPLETE
    if exact.status is RCQPStatus.EMPTY:
        # the definition-level search cannot find what does not exist
        assert search.status is not RCQPStatus.NONEMPTY
    if search.status is RCQPStatus.NONEMPTY:
        assert exact.status is not RCQPStatus.EMPTY
        verdict = decide_rcdp(query, search.witness, master, constraints)
        assert verdict.status is RCDPStatus.COMPLETE


@pytest.mark.parametrize(
    "name, query, master, constraints",
    CONFIGURATIONS, ids=[c[0] for c in CONFIGURATIONS])
def test_expected_verdicts(name, query, master, constraints):
    """Pin the expected verdict per configuration (regression guard)."""
    expected = {
        "ind-covered": RCQPStatus.NONEMPTY,
        "ind-uncovered": RCQPStatus.EMPTY,
        "fd-full": RCQPStatus.NONEMPTY,
        "no-constraints-finite": RCQPStatus.NONEMPTY,
        "no-constraints-infinite": RCQPStatus.EMPTY,
        "at-most-one-blocking": RCQPStatus.NONEMPTY,
    }[name]
    result = decide_rcqp(query, master, constraints, SCHEMA,
                         max_valuation_set_size=2)
    assert result.status is expected
