"""Governed interruption of the reduction solvers (SAT, QBF, tiling, 2DFA).

Each backtracking solver ticks the shared execution governor per node
expansion; these tests verify that an injected or real budget stops the
search with node statistics attached, and that governing a search to
completion never changes its answer.
"""

import pytest

from repro.core.results import SearchStatistics
from repro.errors import ExecutionInterrupted, SearchBudgetExceededError
from repro.runtime import Budget, ExecutionGovernor, FaultInjector
from repro.solvers.qbf import (ExistsForallExists3SAT, ForallExists3SAT)
from repro.solvers.sat import CNF, dpll_satisfiable
from repro.solvers.tiling import TilingInstance, solve_tiling, verify_tiling
from repro.solvers.twohead import EPSILON, TwoHeadDFA, bounded_emptiness


def injected(after):
    return ExecutionGovernor(faults=FaultInjector(exhaust_after=after))


PIGEONHOLE = CNF(
    [(1, 2), (3, 4), (5, 6)]
    + [(-a, -b) for h in (0, 1)
       for i, a in enumerate([1 + h, 3 + h, 5 + h])
       for b in [1 + h, 3 + h, 5 + h][i + 1:]])


class TestGovernedDPLL:
    def test_interrupt_carries_node_statistics(self):
        with pytest.raises(ExecutionInterrupted) as excinfo:
            dpll_satisfiable(PIGEONHOLE, governor=injected(2))
        assert excinfo.value.reason == "budget"
        assert isinstance(excinfo.value.statistics, SearchStatistics)
        assert excinfo.value.statistics.nodes_examined == 2

    def test_real_budget_trips_too(self):
        governor = ExecutionGovernor(budget=Budget(nodes=1))
        with pytest.raises(SearchBudgetExceededError):
            dpll_satisfiable(PIGEONHOLE, governor=governor)

    def test_governed_run_matches_ungoverned(self):
        cnf = CNF([(1, 2, 3), (-1, -2), (-2, -3), (2,)])
        governor = ExecutionGovernor()
        assert dpll_satisfiable(cnf, governor=governor) == \
            dpll_satisfiable(cnf)
        assert governor.ticks > 0

    def test_ungoverned_call_unchanged(self):
        assert dpll_satisfiable(CNF([(1,)])) == {1: True}


class TestGovernedQBF:
    def test_forall_exists_interrupt(self):
        formula = ForallExists3SAT([1, 2], [3], CNF([(1, 2, 3), (-3, 1)]))
        with pytest.raises(ExecutionInterrupted):
            formula.is_true(governor=injected(1))

    def test_forall_exists_governed_answer_unchanged(self):
        formula = ForallExists3SAT([1], [2], CNF([(1, 2), (-1, -2)]))
        governor = ExecutionGovernor()
        assert formula.is_true(governor=governor) is formula.is_true()
        assert governor.ticks > 0

    def test_exists_forall_exists_interrupt(self):
        formula = ExistsForallExists3SAT(
            [1], [2], [3], CNF([(1,), (3, -2), (3, 2)]))
        with pytest.raises(ExecutionInterrupted):
            formula.is_true(governor=injected(1))

    def test_exists_forall_exists_governed_answer_unchanged(self):
        formula = ExistsForallExists3SAT(
            [1], [2], [3], CNF([(2,), (1, -1), (3, -3)]))
        assert formula.is_true(governor=ExecutionGovernor()) is \
            formula.is_true()


class TestGovernedTiling:
    def _checkerboard(self):
        return TilingInstance(
            tiles=(0, 1),
            vertical={(0, 1), (1, 0)},
            horizontal={(0, 1), (1, 0)},
            first_tile=0, exponent=1)

    def test_interrupt_carries_node_statistics(self):
        with pytest.raises(ExecutionInterrupted) as excinfo:
            solve_tiling(self._checkerboard(), governor=injected(1))
        assert excinfo.value.statistics.nodes_examined >= 1

    def test_governed_solution_still_valid(self):
        instance = self._checkerboard()
        grid = solve_tiling(instance, governor=ExecutionGovernor())
        assert grid == [[0, 1], [1, 0]]
        assert verify_tiling(instance, grid)


def equal_halves_automaton():
    transitions = {
        ("s", "0", "0"): ("s", 0, 1),
        ("s", "0", "1"): ("m", 1, 1),
        ("m", "0", "1"): ("m", 1, 1),
        ("m", "1", EPSILON): ("acc", 0, 0),
    }
    return TwoHeadDFA(states={"s", "m", "acc"}, transitions=transitions,
                      initial="s", accepting="acc")


class TestGovernedTwoHead:
    def test_simulation_interrupt(self):
        with pytest.raises(ExecutionInterrupted):
            equal_halves_automaton().accepts("000111",
                                             governor=injected(2))

    def test_governed_simulation_answer_unchanged(self):
        automaton = equal_halves_automaton()
        governor = ExecutionGovernor()
        assert automaton.accepts("0011", governor=governor)
        assert not automaton.accepts("0010", governor=governor)
        assert governor.ticks > 0

    def test_emptiness_interrupt_counts_words(self):
        with pytest.raises(ExecutionInterrupted) as excinfo:
            bounded_emptiness(equal_halves_automaton(), max_length=4,
                              governor=injected(3))
        assert isinstance(excinfo.value.statistics, SearchStatistics)

    def test_governed_emptiness_answer_unchanged(self):
        automaton = equal_halves_automaton()
        governed = bounded_emptiness(automaton, max_length=3,
                                     governor=ExecutionGovernor())
        assert governed == bounded_emptiness(automaton, max_length=3)


class TestSharedGovernorAcrossSolvers:
    def test_one_budget_spans_heterogeneous_searches(self):
        governor = ExecutionGovernor(budget=Budget(limit=50))
        dpll_satisfiable(CNF([(1, 2), (-1, 2)]), governor=governor)
        solve_tiling(TilingInstance(
            tiles=(0,), vertical={(0, 0)}, horizontal={(0, 0)},
            first_tile=0, exponent=1), governor=governor)
        spent = governor.budget.spent_for("nodes")
        assert spent == governor.ticks
        assert 0 < spent <= 50
