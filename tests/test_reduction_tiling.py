"""Tests for the Theorem 4.5(2) reduction: 2ⁿ×2ⁿ tiling ⟶ RCQP(CQ, CQ)."""

import random

import pytest

from repro.constraints.containment import satisfies_all
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.errors import ReproError
from repro.reductions.tiling_to_rcqp import reduce_tiling_to_rcqp
from repro.solvers.tiling import (TilingInstance, random_tiling_instance,
                                  solve_tiling)


def all_pairs(tiles):
    return {(a, b) for a in tiles for b in tiles}


def checkerboard(exponent):
    return TilingInstance(
        tiles=(0, 1), vertical={(0, 1), (1, 0)},
        horizontal={(0, 1), (1, 0)}, first_tile=0, exponent=exponent)


def unsolvable(exponent):
    # tile 0 has no compatible right neighbour
    return TilingInstance(
        tiles=(0, 1), vertical=all_pairs((0, 1)),
        horizontal={(1, 1)}, first_tile=0, exponent=exponent)


class TestSolvableSide:
    @pytest.mark.parametrize("exponent", [1, 2])
    def test_grid_witness_is_partially_closed(self, exponent):
        tiling = checkerboard(exponent)
        grid = solve_tiling(tiling)
        reduction = reduce_tiling_to_rcqp(tiling)
        witness = reduction.witness_from_grid(grid)
        assert satisfies_all(witness, reduction.master,
                             list(reduction.constraints))

    @pytest.mark.parametrize("exponent", [1, 2])
    def test_grid_witness_is_relatively_complete(self, exponent):
        tiling = checkerboard(exponent)
        grid = solve_tiling(tiling)
        reduction = reduce_tiling_to_rcqp(tiling)
        witness = reduction.witness_from_grid(grid)
        verdict = decide_rcdp(reduction.query, witness, reduction.master,
                              list(reduction.constraints))
        assert verdict.status is RCDPStatus.COMPLETE

    def test_full_compatibility_board(self):
        tiling = TilingInstance((0, 1), all_pairs((0, 1)),
                                all_pairs((0, 1)), 0, 1)
        grid = solve_tiling(tiling)
        reduction = reduce_tiling_to_rcqp(tiling)
        witness = reduction.witness_from_grid(grid)
        verdict = decide_rcdp(reduction.query, witness, reduction.master,
                              list(reduction.constraints))
        assert verdict.status is RCDPStatus.COMPLETE


class TestUnsolvableSide:
    @pytest.mark.parametrize("exponent", [1, 2])
    def test_probe_never_bounded(self, exponent):
        tiling = unsolvable(exponent)
        assert solve_tiling(tiling) is None
        reduction = reduce_tiling_to_rcqp(tiling)
        candidate = reduction.empty_candidate()
        assert satisfies_all(candidate, reduction.master,
                             list(reduction.constraints))
        verdict = decide_rcdp(reduction.query, candidate, reduction.master,
                              list(reduction.constraints))
        assert verdict.status is RCDPStatus.INCOMPLETE

    def test_storing_an_invalid_square_violates_constraints(self):
        tiling = unsolvable(1)
        reduction = reduce_tiling_to_rcqp(tiling)
        # (0, 0 / 1, 1) breaks the horizontal condition of the top row.
        bad = reduction.empty_candidate().with_tuples(
            "R1", [("h", 0, 0, 1, 1, 0)])
        assert not satisfies_all(bad, reduction.master,
                                 list(reduction.constraints))

    def test_valid_square_with_wrong_first_tile_stays_incomplete(self):
        # A compatible square exists with top-left tile 1, but Z = t0 = 0
        # is required for the probe CC to fire, so Rb stays unbounded.
        tiling = unsolvable(1)
        reduction = reduce_tiling_to_rcqp(tiling)
        candidate = reduction.empty_candidate().with_tuples(
            "R1", [("h", 1, 1, 1, 1, 1)])
        assert satisfies_all(candidate, reduction.master,
                             list(reduction.constraints))
        verdict = decide_rcdp(reduction.query, candidate, reduction.master,
                              list(reduction.constraints))
        assert verdict.status is RCDPStatus.INCOMPLETE


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(8))
    def test_solver_and_reduction_agree_on_witnesses(self, seed):
        rng = random.Random(seed)
        tiling = random_tiling_instance(2, 0.55, 1, rng)
        grid = solve_tiling(tiling)
        reduction = reduce_tiling_to_rcqp(tiling)
        if grid is not None:
            witness = reduction.witness_from_grid(grid)
            verdict = decide_rcdp(
                reduction.query, witness, reduction.master,
                list(reduction.constraints))
            assert verdict.status is RCDPStatus.COMPLETE
        else:
            candidate = reduction.empty_candidate()
            verdict = decide_rcdp(
                reduction.query, candidate, reduction.master,
                list(reduction.constraints))
            assert verdict.status is RCDPStatus.INCOMPLETE


class TestConstruction:
    def test_exponent_zero_rejected(self):
        with pytest.raises(ReproError):
            reduce_tiling_to_rcqp(TilingInstance(
                (0,), set(), set(), first_tile=0, exponent=0))

    def test_constraint_count_grows_with_rank(self):
        r1 = reduce_tiling_to_rcqp(checkerboard(1))
        r2 = reduce_tiling_to_rcqp(checkerboard(2))
        assert len(r2.constraints) > len(r1.constraints)
