"""The decidable (L_Q, L_C) matrix, exercised pair by pair.

Tables I and II enumerate language pairs; this module runs both deciders
on one CRM-style scenario for every decidable combination of
L_Q ∈ {CQ, UCQ, ∃FO⁺} and L_C ∈ {INDs, CQ, UCQ, ∃FO⁺}, asserting the
expected verdicts.  It is the unit-test mirror of the benchmark tables.
"""

import pytest

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.efo import EFOQuery, and_, atom_f, exists, or_
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})

COMPLETE_DB = Instance(SCHEMA, {
    "S": {("e0", "c1"), ("e0", "c2"), ("e1", "c1"), ("e1", "c2")}})
PARTIAL_DB = Instance(SCHEMA, {"S": {("e0", "c1"), ("e1", "c1")}})


# --- L_Q variants: "customers supported by e0 (or e1)" ------------------

def q_cq():
    return cq([var("c")], [rel("S", "e0", var("c"))], name="q.cq")


def q_ucq():
    return ucq([
        cq([var("c")], [rel("S", "e0", var("c"))]),
        cq([var("c")], [rel("S", "e1", var("c"))]),
    ], name="q.ucq")


def q_efo():
    formula = or_(atom_f(rel("S", "e0", var("c"))),
                  atom_f(rel("S", "e1", var("c"))))
    return EFOQuery([var("c")], formula, name="q.efo")


# --- L_C variants: "supported customers are master customers" -----------

def v_ind():
    return [InclusionDependency(
        "S", ["cid"], "M", ["cid"],
        name="v.ind").to_containment_constraint(SCHEMA, MASTER_SCHEMA)]


def v_cq():
    # selection-style CQ (not a projection, hence not an IND)
    query = cq([var("c")],
               [rel("S", var("e"), var("c")), eq(var("e"), var("e"))],
               name="qv.cq")
    return [ContainmentConstraint(query, Projection.on("M", [0]),
                                  name="v.cq")]


def v_ucq():
    query = ucq([
        cq([var("c")], [rel("S", "e0", var("c"))]),
        cq([var("c")], [rel("S", var("e"), var("c"))]),
    ], name="qv.ucq")
    return [ContainmentConstraint(query, Projection.on("M", [0]),
                                  name="v.ucq")]


def v_efo():
    formula = exists([var("e")], and_(atom_f(rel("S", var("e"), var("c")))))
    query = EFOQuery([var("c")], formula, name="qv.efo")
    return [ContainmentConstraint(query, Projection.on("M", [0]),
                                  name="v.efo")]


QUERIES = {"CQ": q_cq, "UCQ": q_ucq, "EFO": q_efo}
CONSTRAINTS = {"IND": v_ind, "CQ": v_cq, "UCQ": v_ucq, "EFO": v_efo}
PAIRS = [(lq, lc) for lq in QUERIES for lc in CONSTRAINTS]
IDS = [f"{lq}-{lc}" for lq, lc in PAIRS]


@pytest.mark.parametrize("lq, lc", PAIRS, ids=IDS)
def test_rcdp_complete_case(lq, lc):
    """With every master customer supported by both employees, every
    language pair yields COMPLETE."""
    query = QUERIES[lq]()
    constraints = CONSTRAINTS[lc]()
    result = decide_rcdp(query, COMPLETE_DB, DM, constraints)
    assert result.status is RCDPStatus.COMPLETE, (lq, lc)


@pytest.mark.parametrize("lq, lc", PAIRS, ids=IDS)
def test_rcdp_incomplete_case(lq, lc):
    """With c2 unsupported, every pair yields INCOMPLETE with an
    actionable certificate."""
    query = QUERIES[lq]()
    constraints = CONSTRAINTS[lc]()
    result = decide_rcdp(query, PARTIAL_DB, DM, constraints)
    assert result.status is RCDPStatus.INCOMPLETE, (lq, lc)
    extended = result.certificate.apply_to(PARTIAL_DB)
    assert result.certificate.new_answer in query.evaluate(extended)


@pytest.mark.parametrize("lq, lc", PAIRS, ids=IDS)
def test_rcqp_nonempty(lq, lc):
    """The output column is bounded by master data under every constraint
    variant, so a relatively complete database exists for every pair."""
    query = QUERIES[lq]()
    constraints = CONSTRAINTS[lc]()
    result = decide_rcqp(query, DM, constraints, SCHEMA,
                         max_valuation_set_size=2)
    assert result.status is RCQPStatus.NONEMPTY, (lq, lc)
    verdict = decide_rcdp(query, result.witness, DM, constraints)
    assert verdict.status is RCDPStatus.COMPLETE
