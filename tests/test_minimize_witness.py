"""Tests for witness minimization."""

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.core.witness import minimize_witness
from repro.errors import ReproError
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
IND = InclusionDependency(
    "S", ["cid"], "M", ["cid"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)
Q = cq([var("c")], [rel("S", "e0", var("c"))], name="Q")


class TestMinimizeWitness:
    def test_drops_irrelevant_facts(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1"), ("e0", "c2"),
                                     ("e1", "c1"), ("e1", "c2")}})
        minimal = minimize_witness(Q, db, DM, [IND])
        assert minimal["S"] == frozenset({("e0", "c1"), ("e0", "c2")})

    def test_result_is_still_complete(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1"), ("e0", "c2"),
                                     ("e1", "c2")}})
        minimal = minimize_witness(Q, db, DM, [IND])
        verdict = decide_rcdp(Q, minimal, DM, [IND])
        assert verdict.status is RCDPStatus.COMPLETE

    def test_result_is_minimal(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1"), ("e0", "c2")}})
        minimal = minimize_witness(Q, db, DM, [IND])
        # removing any single remaining fact breaks completeness
        for name, row in minimal.facts():
            contents = {r: set(rows) for r, rows in minimal}
            contents[name].discard(row)
            shrunk = Instance(SCHEMA, contents, validate=False)
            verdict = decide_rcdp(Q, shrunk, DM, [IND])
            assert verdict.status is RCDPStatus.INCOMPLETE

    def test_incomplete_input_rejected(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1")}})
        with pytest.raises(ReproError):
            minimize_witness(Q, db, DM, [IND])

    def test_shrinks_rcqp_witness(self):
        # The Prop. 4.3 witness construction can over-approximate; the
        # minimizer brings it down to a minimal one.
        result = decide_rcqp(Q, DM, [IND], SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY
        minimal = minimize_witness(Q, result.witness, DM, [IND])
        assert minimal.total_tuples <= result.witness.total_tuples
        verdict = decide_rcdp(Q, minimal, DM, [IND])
        assert verdict.status is RCDPStatus.COMPLETE

    def test_blocking_witness_preserved(self):
        # Example 4.1: the blocking tuple cannot be dropped.
        schema = DatabaseSchema([
            RelationSchema("Supt", ["eid", "dept", "cid"])])
        master = Instance(DatabaseSchema([RelationSchema("X", ["z"])]))
        constraints = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(schema)
        q4 = cq([var("e"), var("d"), var("c")],
                [rel("Supt", var("e"), var("d"), var("c")),
                 eq(var("e"), "e0"), eq(var("d"), "d0")])
        blocker = Instance(schema, {"Supt": {("e0", "other", "c")}})
        minimal = minimize_witness(q4, blocker, master, constraints)
        assert minimal["Supt"]  # the blocker survives
