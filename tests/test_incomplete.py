"""Tests for the missing-values extension (v-tables / c-tables)."""

import pytest

from repro.constraints.ind import InclusionDependency
from repro.errors import ReproError
from repro.incomplete.completeness import decide_rcdp_with_missing_values
from repro.incomplete.conditions import (EqCondition, NeqCondition,
                                         conjunction)
from repro.incomplete.nulls import MarkedNull, is_null
from repro.incomplete.tables import ConditionalRow, IncompleteDatabase
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
IND = InclusionDependency(
    "S", ["cid"], "M", ["cid"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)
Q = cq([var("c")], [rel("S", "e0", var("c"))], name="Q")

X = MarkedNull("x")
Y = MarkedNull("y")


class TestNulls:
    def test_identity_by_name(self):
        assert MarkedNull("a") == MarkedNull("a")
        assert MarkedNull("a") != MarkedNull("b")
        assert is_null(X)
        assert not is_null("x")


class TestConditions:
    def test_eq_condition(self):
        cond = conjunction(EqCondition(X, "c1"))
        assert cond.holds({X: "c1"})
        assert not cond.holds({X: "c2"})

    def test_neq_condition(self):
        cond = conjunction(NeqCondition(X, Y))
        assert cond.holds({X: 1, Y: 2})
        assert not cond.holds({X: 1, Y: 1})

    def test_conjunction_semantics(self):
        cond = conjunction(EqCondition(X, "c1"), NeqCondition(Y, "c1"))
        assert cond.holds({X: "c1", Y: "c2"})
        assert not cond.holds({X: "c1", Y: "c1"})

    def test_uncovered_null_raises(self):
        cond = conjunction(EqCondition(X, "c1"))
        with pytest.raises(ReproError):
            cond.holds({})


class TestPossibleWorlds:
    def test_vtable_world_count(self):
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", X)}})
        worlds = list(db.possible_worlds(["c1", "c2"]))
        assert len(worlds) == 2
        answers = {frozenset(w["S"]) for w in worlds}
        assert answers == {frozenset({("e0", "c1")}),
                           frozenset({("e0", "c2")})}

    def test_shared_null_is_consistent(self):
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", X), ("e1", X)}})
        for world in db.possible_worlds(["c1", "c2"]):
            cids = {row[1] for row in world["S"]}
            assert len(cids) == 1  # both occurrences agree

    def test_condition_filters_rows(self):
        row = ConditionalRow(("e0", X),
                             conjunction(NeqCondition(X, "c1")))
        db = IncompleteDatabase(SCHEMA, {"S": [row]})
        worlds = list(db.possible_worlds(["c1", "c2"]))
        sizes = sorted(len(w["S"]) for w in worlds)
        assert sizes == [0, 1]  # the c1-world drops the row

    def test_world_limit_enforced(self):
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", X), ("e1", Y)}})
        with pytest.raises(ReproError):
            list(db.possible_worlds(["c1", "c2"], limit=3))

    def test_complete_database_single_world(self):
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", "c1")}})
        assert db.is_complete()
        (world,) = db.possible_worlds(["c1"])
        assert world["S"] == frozenset({("e0", "c1")})

    def test_arity_checked(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            IncompleteDatabase(SCHEMA, {"S": {("e0",)}})


class TestAnswers:
    def test_certain_vs_possible(self):
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", "c1"), ("e0", X)}})
        domain = ["c1", "c2"]
        certain = db.certain_answers(Q, domain)
        possible = db.possible_answers(Q, domain)
        assert certain == frozenset({("c1",)})
        assert possible == frozenset({("c1",), ("c2",)})

    def test_certain_answers_empty_when_worlds_disagree(self):
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", X)}})
        assert db.certain_answers(Q, ["c1", "c2"]) == frozenset()


class TestCompletenessAcrossWorlds:
    def test_certainly_complete(self):
        # Whatever X is (c1 or c2), e0 supports both master customers in
        # every legitimate world: S has (e0,c1), (e0,c2) plus a null row
        # that can only duplicate one of them.
        db = IncompleteDatabase(SCHEMA, {
            "S": {("e0", "c1"), ("e0", "c2"), ("e0", X)}})
        report = decide_rcdp_with_missing_values(
            Q, db, DM, [IND], domain=["c1", "c2"])
        assert report.certainly_complete

    def test_possibly_but_not_certainly_complete(self):
        # X decides whether c2 is supported: world X=c2 is complete,
        # world X=c1 is not.
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", "c1"), ("e0", X)}})
        report = decide_rcdp_with_missing_values(
            Q, db, DM, [IND], domain=["c1", "c2"])
        assert report.possibly_complete
        assert not report.certainly_complete
        assert report.worlds_partially_closed == 2
        assert report.worlds_complete == 1

    def test_illegitimate_worlds_skipped(self):
        # X = "c9" would violate the IND; restricting to the domain below,
        # one of three worlds is not partially closed.
        db = IncompleteDatabase(SCHEMA, {
            "S": {("e0", "c1"), ("e0", "c2"), ("e0", X)}})
        report = decide_rcdp_with_missing_values(
            Q, db, DM, [IND], domain=["c1", "c2", "c9"])
        assert report.worlds_total == 3
        assert report.worlds_partially_closed == 2
        assert report.certainly_complete

    def test_samples_are_reported(self):
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", X)}})
        report = decide_rcdp_with_missing_values(
            Q, db, DM, [IND], domain=["c1", "c2"], keep_samples=2)
        assert len(report.samples) == 2
        assert all(s.partially_closed for s in report.samples)
