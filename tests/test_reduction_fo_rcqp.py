"""Tests for the Theorem 4.1(2) reduction: FO satisfiability ⟶
RCQP(CQ, FO)."""

import pytest

from repro.constraints.containment import satisfies_all
from repro.core.bounded import brute_force_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus
from repro.errors import ReproError, UndecidableConfigurationError
from repro.queries.atoms import rel
from repro.queries.fo import FOQuery, fo_and, fo_atom, fo_not
from repro.queries.terms import var
from repro.reductions.fo_to_rcqp import reduce_fo_satisfiability_to_rcqp
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("P", ["x"])])


def satisfiable_query() -> FOQuery:
    return FOQuery([var("x")], fo_atom(rel("P", var("x"))), name="qsat")


def unsatisfiable_query() -> FOQuery:
    return FOQuery([var("x")], fo_and(
        fo_atom(rel("P", var("x"))),
        fo_not(fo_atom(rel("P", var("x"))))), name="qunsat")


class TestConstruction:
    def test_exact_decider_refuses(self):
        instance = reduce_fo_satisfiability_to_rcqp(
            satisfiable_query(), SCHEMA)
        with pytest.raises(UndecidableConfigurationError):
            decide_rcqp(instance.query, instance.master,
                        list(instance.constraints), instance.schema)

    def test_schema_extended_with_ru(self):
        instance = reduce_fo_satisfiability_to_rcqp(
            satisfiable_query(), SCHEMA)
        assert "Ru" in instance.schema

    def test_ru_clash_rejected(self):
        bad = DatabaseSchema([RelationSchema("Ru", ["x"])])
        q = FOQuery([var("x")], fo_atom(rel("Ru", var("x"))))
        with pytest.raises(ReproError):
            reduce_fo_satisfiability_to_rcqp(q, bad)

    def test_multi_relation_source_gives_ucq(self):
        schema = DatabaseSchema([RelationSchema("P", ["x"]),
                                 RelationSchema("R", ["x", "y"])])
        q = FOQuery([var("x")], fo_atom(rel("P", var("x"))))
        instance = reduce_fo_satisfiability_to_rcqp(q, schema)
        assert instance.query.language == "UCQ"


class TestConstraintSemantics:
    def test_empty_database_is_partially_closed(self):
        instance = reduce_fo_satisfiability_to_rcqp(
            satisfiable_query(), SCHEMA)
        empty = Instance.empty(instance.schema)
        assert satisfies_all(empty, instance.master,
                             list(instance.constraints))

    def test_q_firing_database_is_partially_closed(self):
        instance = reduce_fo_satisfiability_to_rcqp(
            satisfiable_query(), SCHEMA)
        db = Instance(instance.schema, {"P": {(1,)}})
        assert satisfies_all(db, instance.master,
                             list(instance.constraints))

    def test_q_silent_nonempty_database_violates(self):
        # With the unsatisfiable q, any nonempty P-part violates V.
        instance = reduce_fo_satisfiability_to_rcqp(
            unsatisfiable_query(), SCHEMA)
        db = Instance(instance.schema, {"P": {(1,)}})
        assert not satisfies_all(db, instance.master,
                                 list(instance.constraints))

    def test_ru_part_is_unconstrained(self):
        instance = reduce_fo_satisfiability_to_rcqp(
            unsatisfiable_query(), SCHEMA)
        db = Instance(instance.schema, {"Ru": {("tag",)}})
        assert satisfies_all(db, instance.master,
                             list(instance.constraints))


class TestBothDirections:
    def test_unsatisfiable_q_gives_complete_database(self):
        """q unsatisfiable ⇒ the empty database is relatively complete:
        bounded search over a meaningful pool finds no counterexample."""
        instance = reduce_fo_satisfiability_to_rcqp(
            unsatisfiable_query(), SCHEMA)
        empty = Instance.empty(instance.schema)
        verdict = brute_force_rcdp(
            instance.query, empty, instance.master,
            list(instance.constraints), max_extra_facts=2,
            values=[0, 1])
        assert verdict.status is RCDPStatus.COMPLETE_UP_TO_BOUND

    def test_satisfiable_q_defeats_every_candidate(self):
        """q satisfiable ⇒ any partially closed candidate is incomplete:
        a fresh Ru-tuple (plus a q-witness) changes the answer."""
        instance = reduce_fo_satisfiability_to_rcqp(
            satisfiable_query(), SCHEMA)
        candidates = [
            Instance.empty(instance.schema),
            Instance(instance.schema, {"P": {(1,)}}),
            Instance(instance.schema, {"P": {(1,)}, "Ru": {(7,)}}),
        ]
        for candidate in candidates:
            verdict = brute_force_rcdp(
                instance.query, candidate, instance.master,
                list(instance.constraints), max_extra_facts=2,
                values=[0, 1, 7, 99])
            assert verdict.status is RCDPStatus.INCOMPLETE
