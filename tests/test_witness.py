"""Tests for certificate-driven completion (Section 2.3 guidance)."""

from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.core.witness import make_complete
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",), ("c3",)}})


def ind():
    return InclusionDependency(
        "S", ["cid"], "M", ["cid"]).to_containment_constraint(
        SCHEMA, MASTER_SCHEMA)


class TestMakeComplete:
    def test_completes_missing_customers(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1")}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        outcome = make_complete(q, db, DM, [ind()])
        assert outcome.complete
        assert outcome.rounds >= 1
        verdict = decide_rcdp(q, outcome.database, DM, [ind()])
        assert verdict.status is RCDPStatus.COMPLETE
        # the guidance names the missing customers
        added_cids = {row[1] for name, row in outcome.added_facts
                      if name == "S"}
        assert added_cids == {"c2", "c3"}

    def test_already_complete_zero_rounds(self):
        db = Instance(SCHEMA, {"S": {("e0", c) for c in
                                     ("c1", "c2", "c3")}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        outcome = make_complete(q, db, DM, [ind()])
        assert outcome.complete
        assert outcome.rounds == 0
        assert outcome.added_facts == ()

    def test_hopeless_query_does_not_converge(self):
        # eid is unconstrained: no finite database is ever complete.
        db = Instance.empty(SCHEMA)
        q = cq([var("e")], [rel("S", var("e"), var("c"))])
        outcome = make_complete(q, db, DM, [ind()], max_rounds=3)
        assert not outcome.complete
        assert outcome.rounds == 3

    def test_original_database_preserved(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1")}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        make_complete(q, db, DM, [ind()])
        assert db["S"] == frozenset({("e0", "c1")})

    def test_outcome_repr(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1")}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        outcome = make_complete(q, db, DM, [ind()])
        assert "complete" in repr(outcome)
