"""Tests for CQ minimization and missing-answer enumeration."""

import pytest

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp, enumerate_missing_answers
from repro.core.results import RCDPStatus
from repro.queries.atoms import neq, rel
from repro.queries.containment import is_equivalent, minimize
from repro.queries.cq import ConjunctiveQuery, cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

GRAPH_SCHEMA = DatabaseSchema([RelationSchema("E", ["a", "b"])])


class TestMinimize:
    def test_redundant_atom_removed(self):
        q = cq([var("x"), var("y")],
               [rel("E", var("x"), var("y")), rel("E", var("x"), var("z"))])
        m = minimize(q, GRAPH_SCHEMA)
        assert len(m.relation_atoms) == 1
        assert is_equivalent(q, m, GRAPH_SCHEMA)

    def test_core_of_redundant_path(self):
        # E(x,y) ∧ E(u,v): the cross product collapses to one atom only
        # when head variables permit — with head (x, y) the (u, v) atom is
        # redundant.
        q = cq([var("x"), var("y")],
               [rel("E", var("x"), var("y")), rel("E", var("u"), var("v"))])
        m = minimize(q, GRAPH_SCHEMA)
        assert len(m.relation_atoms) == 1

    def test_non_redundant_atoms_kept(self):
        q = cq([var("x"), var("z")],
               [rel("E", var("x"), var("y")), rel("E", var("y"), var("z"))])
        m = minimize(q, GRAPH_SCHEMA)
        assert len(m.relation_atoms) == 2

    def test_constants_prevent_collapse(self):
        q = cq([var("x")],
               [rel("E", var("x"), 1), rel("E", var("x"), 2)])
        m = minimize(q, GRAPH_SCHEMA)
        assert len(m.relation_atoms) == 2

    def test_equality_folded_before_minimization_is_unneeded(self):
        # Triangle query with a redundant doubled atom.
        q = cq([var("x")],
               [rel("E", var("x"), var("y")), rel("E", var("y"), var("x")),
                rel("E", var("x"), var("y2")),
                ])
        m = minimize(q, GRAPH_SCHEMA)
        assert len(m.relation_atoms) == 2
        assert is_equivalent(q, m, GRAPH_SCHEMA)

    def test_inequalities_rejected(self):
        from repro.errors import QueryError

        q = cq([var("x")],
               [rel("E", var("x"), var("y")), neq(var("x"), var("y"))])
        with pytest.raises(QueryError):
            minimize(q, GRAPH_SCHEMA)


SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",), ("c3",)}})
IND = InclusionDependency(
    "S", ["cid"], "M", ["cid"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)
Q = cq([var("c")], [rel("S", "e0", var("c"))], name="Q")


class TestMissingAnswers:
    def test_names_the_missing_customers(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1")}})
        missing = enumerate_missing_answers(Q, db, DM, [IND])
        assert missing == frozenset({("c2",), ("c3",)})

    def test_empty_iff_complete(self):
        db = Instance(SCHEMA, {"S": {("e0", c) for c in
                                     ("c1", "c2", "c3")}})
        missing = enumerate_missing_answers(Q, db, DM, [IND])
        assert missing == frozenset()
        assert decide_rcdp(Q, db, DM, [IND]).status is RCDPStatus.COMPLETE

    def test_limit_truncates(self):
        db = Instance.empty(SCHEMA)
        missing = enumerate_missing_answers(Q, db, DM, [IND], limit=1)
        assert len(missing) == 1

    def test_at_most_k_margin(self):
        """Example 1.1: with 'at most k customers per employee', the
        missing-answer count is exactly k − k′."""
        k = 3
        body = [rel("S", var("e"), var(f"c{i}")) for i in range(k + 1)]
        for i in range(k + 1):
            for j in range(i + 1, k + 1):
                body.append(neq(var(f"c{i}"), var(f"c{j}")))
        at_most_k = ContainmentConstraint(
            ConjunctiveQuery([var("e")], body, name="qk"),
            Projection.empty(), name="φ1")
        db = Instance(SCHEMA, {"S": {("e0", "c1")}})  # k' = 1
        missing = enumerate_missing_answers(Q, db, DM, [at_most_k])
        # dom(cid) is effectively unbounded here, but over the active
        # domain the margin manifests as: adding up to k − k' = 2 values;
        # each candidate value (constants + the dedicated fresh value)
        # is individually addable.
        assert missing  # not complete
        # and with k' = k the margin closes entirely:
        full = Instance(SCHEMA, {"S": {("e0", "c1"), ("e0", "c2"),
                                       ("e0", "c3")}})
        assert enumerate_missing_answers(Q, full, DM, [at_most_k]) \
            == frozenset()

    def test_agrees_with_decider(self):
        for rows in ({("e0", "c1")}, {("e0", "c1"), ("e0", "c2")},
                     {("e0", "c1"), ("e0", "c2"), ("e0", "c3")}):
            db = Instance(SCHEMA, {"S": rows})
            missing = enumerate_missing_answers(Q, db, DM, [IND])
            verdict = decide_rcdp(Q, db, DM, [IND])
            assert bool(missing) == verdict.is_incomplete


class TestAblationFlag:
    def test_pruning_does_not_change_verdicts(self):
        for rows in ({("e0", "c1")},
                     {("e0", "c1"), ("e0", "c2"), ("e0", "c3")}):
            db = Instance(SCHEMA, {"S": rows})
            fast = decide_rcdp(Q, db, DM, [IND], use_ind_pruning=True)
            slow = decide_rcdp(Q, db, DM, [IND], use_ind_pruning=False)
            assert fast.status == slow.status

    def test_pruning_examines_fewer_valuations(self):
        db = Instance(SCHEMA, {"S": {("e0", c) for c in
                                     ("c1", "c2", "c3")}})
        fast = decide_rcdp(Q, db, DM, [IND], use_ind_pruning=True)
        slow = decide_rcdp(Q, db, DM, [IND], use_ind_pruning=False)
        assert (fast.statistics.valuations_examined
                < slow.statistics.valuations_examined)
