"""Bundle-corpus regression: golden verdicts, serial and sharded.

Every bundle under ``examples/bundles/`` carries an ``"expected"``
object with its golden verdicts (``load_bundle`` ignores the extra
key).  The corpus test decides each bundle at ``workers ∈ {1, 2}`` and
asserts the verdict — and the counterexample answer, which the
parallel drivers guarantee is the serial-first witness — against the
goldens, so a regression in either the deciders or the sharding layer
shows up as a golden mismatch on real example data.

The ``audit`` golden is optional per bundle: the §2.3 cascade includes
an RCQP search that is prohibitively slow for some of the shipped
scenarios, so only cheap bundles pin the audit verdict.
"""

import json
from pathlib import Path

import pytest

from repro.core.rcdp import decide_rcdp
from repro.io.json_io import load_bundle
from repro.mdm.audit import CompletenessAudit

BUNDLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples"
     / "bundles").glob("*.json"))


def _expected(path: Path) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert "expected" in payload, (
        f"{path.name} lacks the golden 'expected' block")
    return payload["expected"]


def test_corpus_is_nonempty():
    assert BUNDLES, "examples/bundles/ should ship golden bundles"


def test_every_generator_family_has_a_pinned_golden():
    """One seed-pinned generated scenario per domain family rides in the
    corpus (exported by ``examples/export_bundles.py``); its ``corpus``
    block records the generator coordinates that reproduce it."""
    from repro.corpus import FAMILIES
    by_name = {path.name: path for path in BUNDLES}
    for family in FAMILIES:
        name = f"gen_{family}_golden.json"
        assert name in by_name, f"missing generated golden for {family}"
        with open(by_name[name], encoding="utf-8") as handle:
            payload = json.load(handle)
        corpus = payload.get("corpus")
        assert corpus is not None, f"{name} lacks its 'corpus' block"
        assert corpus["family"] == family
        assert corpus["seed"] == 9
        assert "rcdp" in payload["expected"]


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize(
    "path", BUNDLES, ids=[path.stem for path in BUNDLES])
def test_rcdp_verdict_matches_golden(path, workers):
    expected = _expected(path)
    bundle = load_bundle(str(path))
    result = decide_rcdp(bundle["query"], bundle["database"],
                         bundle["master"], bundle["constraints"],
                         workers=workers)
    assert result.status.value == expected["rcdp"], (
        f"{path.name} at workers={workers}: "
        f"{result.status.value} != {expected['rcdp']}")
    if "new_answer" in expected:
        assert result.certificate is not None
        assert (list(result.certificate.new_answer)
                == expected["new_answer"])


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize(
    "path",
    [path for path in BUNDLES if "audit" in _expected(path)],
    ids=[path.stem for path in BUNDLES if "audit" in _expected(path)])
def test_audit_verdict_matches_golden(path, workers):
    expected = _expected(path)
    bundle = load_bundle(str(path))
    audit = CompletenessAudit(
        master=bundle["master"], constraints=bundle["constraints"],
        schema=bundle["schema"], workers=workers)
    report = audit.assess(bundle["query"], bundle["database"])
    assert report.verdict.value == expected["audit"], (
        f"{path.name} at workers={workers}: "
        f"{report.verdict.value} != {expected['audit']}")
