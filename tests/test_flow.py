"""Tests for the whole-scenario flow pass: interaction graphs, chase
classification, the static cost model, plan lints, and the guarantee
that none of it perturbs decider verdicts or statistics."""

import json
from pathlib import Path

import pytest

from repro.analysis import analyze, lint_path
from repro.analysis.cost import (Interval, estimate_decision,
                                 suggested_budget)
from repro.analysis.interaction import (ChaseClass, EdgeKind,
                                        build_interaction_graph,
                                        drop_inapplicable,
                                        forced_empty_relations,
                                        inapplicable_constraints)
from repro.analysis.planlint import lint_plan
from repro.cli import main
from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.io.json_io import load_bundle
from repro.parallel import suggest_workers
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.runtime import Budget, ExecutionGovernor

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "bundles"

# Shared relation name + arity between the two schemas: the only shape
# that can close interaction cycles.
SHARED = DatabaseSchema([RelationSchema("R", ["a", "b"])])


def _bundle(name):
    return load_bundle(str(EXAMPLES / f"{name}.json"))


class TestInteractionGraph:
    def test_shifted_projection_diverges(self):
        # R(y, x) ⊆ π₀(R) read as a TGD invents a fresh value at R.1
        # fed from R.1 itself — the classical non-terminating chase.
        phi = ContainmentConstraint(
            cq([var("x")], [rel("R", var("y"), var("x"))]),
            Projection.on("R", [0]), name="phi")
        graph = build_interaction_graph(
            [phi], schema=SHARED, master_schema=SHARED)
        assert graph.chase is ChaseClass.DIVERGENT
        assert any(edge.kind is EdgeKind.FRESH for edge in graph.cycle)
        assert "⇢" in graph.render_cycle()

    def test_full_projection_is_weakly_acyclic(self):
        # Identity projection: cycles, but no existential column.
        phi = ContainmentConstraint(
            cq([var("x"), var("y")], [rel("R", var("x"), var("y"))]),
            Projection.on("R", [0, 1]), name="phi")
        graph = build_interaction_graph(
            [phi], schema=SHARED, master_schema=SHARED)
        assert graph.chase is ChaseClass.WEAKLY_ACYCLIC
        assert graph.cycle  # a flow-only witness cycle is rendered
        assert all(edge.kind is EdgeKind.FLOW for edge in graph.cycle)

    def test_disjoint_relation_names_are_acyclic(self):
        schema = DatabaseSchema([RelationSchema("R", ["a"])])
        master = DatabaseSchema([RelationSchema("Mst", ["a", "b"])])
        phi = ContainmentConstraint(
            cq([var("x")], [rel("R", var("x"))]),
            Projection.on("Mst", [0]), name="phi")
        graph = build_interaction_graph(
            [phi], schema=schema, master_schema=master)
        assert graph.chase is ChaseClass.ACYCLIC
        assert graph.cycle == ()

    def test_arity_mismatch_does_not_merge_nodes(self):
        # Same name, different arity: distinct relations, no feedback.
        schema = DatabaseSchema([RelationSchema("R", ["a"])])
        master = DatabaseSchema([RelationSchema("R", ["a", "b", "c"])])
        phi = ContainmentConstraint(
            cq([var("x")], [rel("R", var("x"))]),
            Projection.on("R", [0]), name="phi")
        graph = build_interaction_graph(
            [phi], schema=schema, master_schema=master)
        assert graph.chase is ChaseClass.ACYCLIC

    def test_example_bundles_are_acyclic(self):
        for name in ("crm_q0_area_code", "crm_q1_supported",
                     "crm_q2_supported_ind"):
            bundle = _bundle(name)
            graph = build_interaction_graph(
                bundle["constraints"],
                schema=bundle["schema"],
                master_schema=bundle["master_schema"])
            assert graph.chase is ChaseClass.ACYCLIC, name

    def test_to_dict_is_json_serializable(self):
        phi = ContainmentConstraint(
            cq([var("x")], [rel("R", var("y"), var("x"))]),
            Projection.on("R", [0]), name="phi")
        graph = build_interaction_graph(
            [phi], schema=SHARED, master_schema=SHARED)
        payload = json.loads(json.dumps(graph.to_dict()))
        assert payload["chase"] == "divergent"
        assert payload["cycle"]


FORCED_SCHEMA = DatabaseSchema([RelationSchema("R", ["a"]),
                                RelationSchema("S", ["a"])])
FORCED_MASTER = DatabaseSchema([RelationSchema("M0", ["a"]),
                                RelationSchema("M1", ["a"])])


def _forced_scenario():
    master = Instance(FORCED_MASTER, {"M0": set(),
                                      "M1": {("a",), ("b",)}})
    keeper = ContainmentConstraint(
        cq([var("x")], [rel("R", var("x"))]),
        Projection.on("M0", [0]), name="keeper")
    dead = ContainmentConstraint(
        cq([var("x")], [rel("R", var("x")), rel("S", var("x"))]),
        Projection.on("M1", [0]), name="dead")
    return master, keeper, dead


class TestForcedEmpty:
    def test_empty_master_projection_forces_source(self):
        master, keeper, dead = _forced_scenario()
        assert forced_empty_relations([keeper, dead], master) == {
            "R": ["keeper"]}

    def test_empty_target_forces_source(self):
        denial = ContainmentConstraint(
            cq([var("x")], [rel("R", var("x"))]),
            Projection.empty(), name="denial")
        assert forced_empty_relations([denial], None) == {"R": ["denial"]}

    def test_keeper_is_never_inapplicable(self):
        master, keeper, dead = _forced_scenario()
        inapplicable = inapplicable_constraints([keeper, dead], master)
        assert set(inapplicable) == {"dead"}
        assert "keeper" in inapplicable["dead"]

    def test_drop_preserves_order_and_keeper(self):
        master, keeper, dead = _forced_scenario()
        inapplicable = inapplicable_constraints([keeper, dead], master)
        kept = drop_inapplicable([keeper, dead], inapplicable)
        assert [c.name for c in kept] == ["keeper"]

    def test_dropping_preserves_the_verdict(self):
        master, keeper, dead = _forced_scenario()
        database = Instance(FORCED_SCHEMA, {"R": set(), "S": {("a",)}})
        query = cq([var("x")], [rel("S", var("x"))])
        full = decide_rcdp(query, database, master, [keeper, dead])
        inapplicable = inapplicable_constraints([keeper, dead], master)
        dropped = decide_rcdp(
            query, database, master,
            drop_inapplicable([keeper, dead], inapplicable))
        assert full.status is dropped.status


class TestFlowRules:
    def test_rc301_reports_the_cycle(self):
        phi = ContainmentConstraint(
            cq([var("x")], [rel("R", var("y"), var("x"))]),
            Projection.on("R", [0]), name="phi")
        report = analyze(None, [phi], schema=SHARED,
                         master_schema=SHARED, flow=True)
        (diag,) = [d for d in report.diagnostics if d.code == "RC301"]
        assert "phi" in diag.message and "⇢" in diag.message
        assert report.facts.chase == "divergent"

    def test_rc302_names_the_forcer(self):
        master, keeper, dead = _forced_scenario()
        report = analyze(None, [keeper, dead], schema=FORCED_SCHEMA,
                         master_schema=FORCED_MASTER, master=master,
                         flow=True)
        (diag,) = [d for d in report.diagnostics if d.code == "RC302"]
        assert "'dead'" in diag.message
        assert report.facts.inapplicable_constraints == ("dead",)

    def test_rc303_flags_containment_in_a_denial(self):
        schema = DatabaseSchema([RelationSchema("S", ["a"]),
                                 RelationSchema("T", ["a"]),
                                 RelationSchema("U", ["a"])])
        master_schema = DatabaseSchema([RelationSchema("M0", ["a"])])
        denial = ContainmentConstraint(
            cq([var("x")], [rel("S", var("x")), rel("T", var("x"))]),
            Projection.empty(), name="denial")
        victim = ContainmentConstraint(
            cq([var("x")], [rel("S", var("x")), rel("T", var("x")),
                            rel("U", var("x"))]),
            Projection.on("M0", [0]), name="victim")
        assert not denial.is_ind()  # two atoms: RC302 cannot claim this
        report = analyze(
            None, [denial, victim], schema=schema,
            master_schema=master_schema,
            master=Instance(master_schema, {"M0": {("a",)}}), flow=True)
        (diag,) = [d for d in report.diagnostics if d.code == "RC303"]
        assert "'victim'" in diag.message and "'denial'" in diag.message
        assert "victim" in report.facts.inapplicable_constraints

    def test_flow_rules_never_run_in_the_decider_pass(self):
        phi = ContainmentConstraint(
            cq([var("x")], [rel("R", var("y"), var("x"))]),
            Projection.on("R", [0]), name="phi")
        report = analyze(None, [phi], schema=SHARED,
                         master_schema=SHARED, decider_only=True,
                         flow=True)
        assert not [d for d in report.diagnostics
                    if d.code.startswith(("RC3", "RC4"))]

    def test_facts_round_trip_through_report_json(self):
        bundle = _bundle("crm_q0_area_code")
        report = analyze(bundle["query"], bundle["constraints"],
                         schema=bundle["schema"],
                         master_schema=bundle["master_schema"],
                         database=bundle["database"],
                         master=bundle["master"], flow=True)
        payload = json.loads(json.dumps(report.to_dict()))
        facts = payload["facts"]
        assert facts["chase"] == "acyclic"
        estimate = facts["cost_estimate"]
        assert estimate["procedure"] == "rcdp"
        assert estimate["adom_size"] > 0


class TestPlanLint:
    def test_cross_product(self):
        query = cq([var("x"), var("y")],
                   [rel("R", var("x")), rel("S", var("y"))])
        kinds = {f.kind for f in lint_plan(query)}
        assert "cross-product" in kinds

    def test_post_filter_equality(self):
        query = cq([var("x"), var("y")],
                   [rel("Big", var("k"), var("x"), var("y"), var("z")),
                    eq(var("x"), var("y"))])
        kinds = {f.kind for f in lint_plan(query)}
        assert "post-filter-equality" in kinds

    def test_unkeyed_start_suggests_the_constant_atom(self):
        query = cq([var("x")],
                   [rel("R", var("x")),
                    rel("Big", "seed", var("x"), var("y"), var("z"))])
        (finding,) = [f for f in lint_plan(query)
                      if f.kind == "unkeyed-start"]
        assert "Big" in finding.suggestion

    def test_connected_keyed_plan_is_clean(self):
        query = cq([var("x")], [rel("R", "a", var("x"))])
        assert list(lint_plan(query)) == []


class TestCostModel:
    def test_interval_arithmetic(self):
        a = Interval(lo=2, hi=3)
        b = Interval(lo=0, hi=None)
        assert a + a == Interval(lo=4, hi=6)
        assert a * Interval.point(2) == Interval(lo=4, hi=6)
        assert (a * b).hi is None
        assert a.join(b) == Interval(lo=0, hi=None)
        assert "∞" in b.render()
        assert a.scaled(10) == Interval(lo=20, hi=30)

    def test_full_enumeration_prediction_is_within_4x(self):
        # The bench gates the whole corpus; in-tree we pin the two
        # bundles whose enumerations finish in seconds.
        for name in ("crm_q2_supported_ind", "crm_q0_area_code"):
            bundle = _bundle(name)
            estimate = estimate_decision(
                "missing", bundle["query"], bundle["database"],
                bundle["master"], tuple(bundle["constraints"]))
            governor = ExecutionGovernor(budget=Budget())
            missing_answers_report(
                bundle["query"], bundle["database"], bundle["master"],
                bundle["constraints"], governor=governor)
            actual = governor.budget.spent_for("valuations")
            assert actual > 0, name
            ratio = estimate.total_predicted / actual
            assert 0.25 <= ratio <= 4.0, (name, estimate.total_predicted,
                                          actual)

    def test_ind_cap_beats_the_adom_power_bound(self):
        # crm_q2's IND caps the valuation space at 69 — far below
        # |Adom|^k — and the enumeration hits exactly that.
        bundle = _bundle("crm_q2_supported_ind")
        estimate = estimate_decision(
            "missing", bundle["query"], bundle["database"],
            bundle["master"], tuple(bundle["constraints"]))
        assert estimate.total_predicted == 69
        assert any(cost.caps for cost in estimate.disjuncts)

    def test_rcdp_lower_bound_is_zero(self):
        bundle = _bundle("crm_q0_area_code")
        estimate = estimate_decision(
            "rcdp", bundle["query"], bundle["database"],
            bundle["master"], tuple(bundle["constraints"]))
        assert estimate.procedure == "rcdp"
        interval = estimate.intervals["valuations"]
        assert interval.lo == 0  # may exit at the first certificate

    def test_rcqp_requires_a_schema(self):
        bundle = _bundle("crm_q2_supported_ind")
        with pytest.raises(ValueError):
            estimate_decision("rcqp", bundle["query"], None,
                              bundle["master"],
                              tuple(bundle["constraints"]))
        estimate = estimate_decision(
            "rcqp", bundle["query"], None, bundle["master"],
            tuple(bundle["constraints"]), schema=bundle["schema"])
        assert estimate.total_predicted > 0

    def test_suggested_budget_scales_by_safety(self):
        assert suggested_budget(100) == 400
        assert suggested_budget(100, safety=2) == 200
        assert suggested_budget(0) == 4  # degenerate estimates stay live

    def test_governor_adopts_a_suggestion_once(self):
        governor = ExecutionGovernor()
        assert governor.suggest_budget(100, adopt=True) == 400
        assert governor.budget.limit == 400
        # An existing budget is never overwritten.
        assert governor.suggest_budget(1, adopt=True) == 4
        assert governor.budget.limit == 400

    def test_suggest_workers_floors_small_estimates(self):
        assert suggest_workers(100, cpu_count=8) == 1
        assert suggest_workers(100_000, cpu_count=8) == 4
        assert suggest_workers(10_000_000, cpu_count=8) == 8
        assert suggest_workers(10_000_000, cpu_count=1) == 1


class TestDeciderInvariance:
    """The acceptance bar: verdicts, witnesses, and statistics are
    bit-identical with the flow pass enabled vs. disabled."""

    @pytest.mark.parametrize("backend", ["python", "columnar", "sqlite"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_flow_pass_changes_nothing(self, backend, workers):
        bundle = _bundle("crm_q2_supported_ind")
        results = []
        for flow in (False, True):
            analysis = analyze(
                bundle["query"], bundle["constraints"],
                schema=bundle["schema"],
                master_schema=bundle["master_schema"],
                database=bundle["database"], master=bundle["master"],
                deep=False, decider_only=True, flow=flow)
            results.append(decide_rcdp(
                bundle["query"], bundle["database"], bundle["master"],
                bundle["constraints"], analysis=analysis,
                backend=backend, workers=workers))
        baseline, flowed = results
        assert baseline.status is flowed.status
        assert baseline.certificate == flowed.certificate
        assert baseline.statistics == flowed.statistics

    def test_missing_answers_identical_with_flow_analysis(self):
        bundle = _bundle("crm_q2_supported_ind")
        reports = []
        for flow in (False, True):
            analysis = analyze(
                bundle["query"], bundle["constraints"],
                schema=bundle["schema"],
                master_schema=bundle["master_schema"],
                database=bundle["database"], master=bundle["master"],
                deep=False, decider_only=True, flow=flow)
            reports.append(missing_answers_report(
                bundle["query"], bundle["database"], bundle["master"],
                bundle["constraints"], analysis=analysis))
        assert reports[0].answers == reports[1].answers
        assert reports[0].statistics == reports[1].statistics


class TestLintSurface:
    def test_example_bundles_flag_cost_not_errors(self):
        report = lint_path(str(EXAMPLES))
        codes = {d.code for d in report.diagnostics}
        assert "RC404" in codes  # crm_q0's 279841-tick enumeration
        assert not report.has_errors

    def test_directory_sources_are_filename_prefixed(self):
        report = lint_path(str(EXAMPLES))
        sources = {d.span.source for d in report.diagnostics
                   if d.span is not None}
        assert any(s.startswith("crm_q0_area_code.json:")
                   for s in sources)

    def test_cli_lint_directory_exits_zero(self, capsys):
        assert main(["lint", str(EXAMPLES)]) == 0
        out = capsys.readouterr().out
        assert "RC404" in out

    def test_cli_explain_cost_renders_the_estimate(self, capsys):
        path = str(EXAMPLES / "crm_q2_supported_ind.json")
        assert main(["lint", "--explain-cost", path]) == 0
        out = capsys.readouterr().out
        assert "cost estimate" in out
        assert "~69" in out

    def test_cli_preflight_advisory_on_small_budget(self, capsys):
        path = str(EXAMPLES / "crm_q2_supported_ind.json")
        code = main(["missing", path, "--budget", "10"])
        out = capsys.readouterr().out
        assert "preflight: predicted ~69" in out
        assert "suggested budget" in out
        assert code == 3  # the search still runs and exhausts as before

    def test_cli_no_advisory_when_budget_suffices(self, bundle_json,
                                                  capsys):
        code = main(["missing", bundle_json, "--budget", "100000"])
        assert code in (0, 1)
        assert "preflight" not in capsys.readouterr().out


@pytest.fixture
def bundle_json(tmp_path):
    from repro.io.json_io import dump_bundle
    schema = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
    master_schema = DatabaseSchema([RelationSchema("M", ["cid"])])
    database = Instance(schema, {"S": {("e0", "c1")}})
    master = Instance(master_schema, {"M": {("c1",), ("c2",)}})
    query = cq([var("c")], [rel("S", "e0", var("c"))])
    constraint = ContainmentConstraint(
        cq([var("c")], [rel("S", var("e"), var("c"))]),
        Projection.on("M", [0]), name="ind")
    path = tmp_path / "bundle.json"
    dump_bundle(str(path), schema=schema, master_schema=master_schema,
                database=database, master=master, query=query,
                constraints=[constraint])
    return str(path)
