"""Tests for first-order queries under active-domain semantics."""

import pytest

from repro.errors import QueryError
from repro.queries.atoms import eq, neq, rel
from repro.queries.fo import (FOQuery, fo_and, fo_atom, fo_exists,
                              fo_forall, fo_implies, fo_not, fo_or)
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema([
        RelationSchema("E", ["src", "dst"]),
        RelationSchema("P", ["x"]),
    ])


@pytest.fixture
def graph(schema):
    return Instance(schema, {
        "E": {(1, 2), (2, 3), (3, 3)},
        "P": {(1,), (2,)},
    })


class TestFOEvaluation:
    def test_negation(self, graph):
        # nodes in P with no outgoing edge to 3
        q = FOQuery([var("x")],
                    fo_and(fo_atom(rel("P", var("x"))),
                           fo_not(fo_atom(rel("E", var("x"), 3)))))
        assert q.evaluate(graph) == frozenset({(1,)})

    def test_universal_quantification(self, graph):
        # nodes x such that every edge from x goes to 3
        q = FOQuery([var("x")],
                    fo_and(
                        fo_atom(rel("P", var("x"))),
                        fo_forall([var("y")], fo_implies(
                            fo_atom(rel("E", var("x"), var("y"))),
                            fo_atom(eq(var("y"), 3))))))
        assert q.evaluate(graph) == frozenset({(2,)})

    def test_existential(self, graph):
        q = FOQuery([var("x")],
                    fo_exists([var("y")],
                              fo_atom(rel("E", var("x"), var("y")))))
        assert q.evaluate(graph) == frozenset({(1,), (2,), (3,)})

    def test_boolean_query(self, graph):
        q = FOQuery([], fo_exists([var("x")],
                                  fo_atom(rel("E", var("x"), var("x")))))
        assert q.holds_in(graph)

    def test_boolean_false(self, graph):
        q = FOQuery([], fo_forall([var("x")],
                                  fo_atom(rel("P", var("x")))))
        assert not q.holds_in(graph)

    def test_implication_truth_table(self, graph):
        # ∀x (P(x) → ∃y E(x,y)) holds: 1 and 2 both have edges
        q = FOQuery([], fo_forall([var("x")], fo_implies(
            fo_atom(rel("P", var("x"))),
            fo_exists([var("y")], fo_atom(rel("E", var("x"), var("y")))))))
        assert q.holds_in(graph)

    def test_inequality(self, graph):
        q = FOQuery([var("x")],
                    fo_exists([var("y")], fo_and(
                        fo_atom(rel("E", var("x"), var("y"))),
                        fo_atom(neq(var("x"), var("y"))))))
        assert q.evaluate(graph) == frozenset({(1,), (2,)})

    def test_domain_includes_query_constants(self, schema):
        # Constant 99 is not in the instance; quantifiers still see it.
        inst = Instance(schema, {"P": {(1,)}})
        q = FOQuery([], fo_exists([var("x")], fo_and(
            fo_atom(eq(var("x"), 99)),
            fo_not(fo_atom(rel("P", var("x")))))))
        assert q.holds_in(inst)

    def test_quantifier_over_empty_domain(self, schema):
        empty = Instance.empty(schema)
        q_exists = FOQuery([], fo_exists([var("x")],
                                         fo_atom(rel("P", var("x")))))
        q_forall = FOQuery([], fo_forall([var("x")],
                                         fo_atom(rel("P", var("x")))))
        assert not q_exists.holds_in(empty)
        assert q_forall.holds_in(empty)  # vacuously true

    def test_free_variable_not_in_head_rejected(self):
        with pytest.raises(QueryError):
            FOQuery([], fo_atom(rel("P", var("x"))))

    def test_language_tag(self):
        q = FOQuery([], fo_exists([var("x")], fo_atom(rel("P", var("x")))))
        assert q.language == "FO"

    def test_relations_used(self):
        q = FOQuery([], fo_exists([var("x")], fo_or(
            fo_atom(rel("P", var("x"))),
            fo_atom(rel("E", var("x"), var("x"))))))
        assert q.relations_used() == {"P", "E"}

    def test_nested_quantifier_restores_environment(self, graph):
        # x is both quantified inside and a head variable: inner binding
        # must not leak.
        q = FOQuery([var("x")], fo_and(
            fo_atom(rel("P", var("x"))),
            fo_exists([var("y")], fo_atom(rel("E", var("y"), var("y"))))))
        assert q.evaluate(graph) == frozenset({(1,), (2,)})
