"""Tests for the relational algebra, including cross-validation against
the CQ engine on random instances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError, SchemaError
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.algebra import (Difference, NamedRelation, Union,
                                      scan, select_eq, select_neq)
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([
    RelationSchema("E", ["src", "dst"]),
    RelationSchema("L", ["node", "label"]),
])


@pytest.fixture
def graph():
    return Instance(SCHEMA, {
        "E": {(1, 2), (2, 3), (3, 1)},
        "L": {(1, "a"), (2, "b"), (3, "a")},
    })


class TestOperators:
    def test_scan(self, graph):
        result = scan("E").evaluate(graph)
        assert result.columns == ("src", "dst")
        assert result.rows == graph["E"]

    def test_selection(self, graph):
        result = select_eq(scan("L"), "label", "a").evaluate(graph)
        assert result.rows == frozenset({(1, "a"), (3, "a")})

    def test_selection_neq(self, graph):
        result = select_neq(scan("L"), "label", "a").evaluate(graph)
        assert result.rows == frozenset({(2, "b")})

    def test_projection_collapses_duplicates(self, graph):
        result = scan("L").project(["label"]).evaluate(graph)
        assert result.rows == frozenset({("a",), ("b",)})

    def test_rename(self, graph):
        result = scan("E").rename({"src": "from"}).evaluate(graph)
        assert result.columns == ("from", "dst")

    def test_natural_join_on_shared_column(self, graph):
        # E(src,dst) ⋈ ρ(L)(dst,label): label the destination node.
        expr = scan("E").join(scan("L").rename({"node": "dst"}))
        result = expr.evaluate(graph)
        assert result.columns == ("src", "dst", "label")
        assert (1, 2, "b") in result.rows
        assert len(result) == 3

    def test_join_without_shared_columns_is_product(self, graph):
        expr = scan("E").join(scan("L"))
        result = expr.evaluate(graph)
        assert len(result) == len(graph["E"]) * len(graph["L"])

    def test_product_requires_disjoint_columns(self, graph):
        with pytest.raises(EvaluationError):
            scan("E").product(scan("E")).evaluate(graph)

    def test_product(self, graph):
        expr = scan("E").product(
            scan("E").rename({"src": "s2", "dst": "d2"}))
        result = expr.evaluate(graph)
        assert len(result) == 9

    def test_union_and_difference(self, graph):
        a_nodes = select_eq(scan("L"), "label", "a").project(["node"])
        b_nodes = select_eq(scan("L"), "label", "b").project(["node"])
        union = Union(a_nodes, b_nodes).evaluate(graph)
        assert union.rows == frozenset({(1,), (2,), (3,)})
        diff = Difference(scan("L").project(["node"]), b_nodes)
        assert diff.evaluate(graph).rows == frozenset({(1,), (3,)})

    def test_set_operation_arity_mismatch(self, graph):
        with pytest.raises(EvaluationError):
            Union(scan("E"), scan("L").project(["node"])).evaluate(graph)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            NamedRelation(("a", "a"), frozenset())

    def test_unknown_column_in_projection(self, graph):
        with pytest.raises(EvaluationError):
            scan("E").project(["nope"]).evaluate(graph)


# ---------------------------------------------------------------------------
# Cross-validation: algebra vs CQ on random instances
# ---------------------------------------------------------------------------

_edges = st.frozensets(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8)
_labels = st.frozensets(
    st.tuples(st.integers(0, 3), st.sampled_from("ab")), max_size=6)


@settings(max_examples=50, deadline=None)
@given(edges=_edges, labels=_labels)
def test_join_agrees_with_cq(edges, labels):
    instance = Instance(SCHEMA, {"E": edges, "L": labels})
    expr = (scan("E")
            .join(scan("L").rename({"node": "dst"}))
            .project(["src", "label"]))
    algebra_rows = expr.evaluate(instance).rows
    query = cq([var("s"), var("l")],
               [rel("E", var("s"), var("d")),
                rel("L", var("d"), var("l"))])
    assert algebra_rows == query.evaluate(instance)


@settings(max_examples=50, deadline=None)
@given(labels=_labels)
def test_selection_agrees_with_cq(labels):
    instance = Instance(SCHEMA, {"L": labels})
    expr = select_eq(scan("L"), "label", "a").project(["node"])
    query = cq([var("n")],
               [rel("L", var("n"), var("l")), eq(var("l"), "a")])
    assert expr.evaluate(instance).rows == query.evaluate(instance)


@settings(max_examples=50, deadline=None)
@given(edges=_edges)
def test_self_join_agrees_with_cq(edges):
    instance = Instance(SCHEMA, {"E": edges})
    expr = (scan("E")
            .join(scan("E").rename({"src": "dst", "dst": "next"}))
            .project(["src", "next"]))
    query = cq([var("x"), var("z")],
               [rel("E", var("x"), var("y")),
                rel("E", var("y"), var("z"))])
    assert expr.evaluate(instance).rows == query.evaluate(instance)


class TestFluentAPI:
    def test_where_predicate(self, graph):
        result = scan("E").where(
            lambda row: row["src"] < row["dst"], "src<dst").evaluate(graph)
        assert result.rows == frozenset({(1, 2), (2, 3)})

    def test_union_difference_combinators(self, graph):
        everything = scan("L").project(["node"])
        nothing = everything.difference(everything)
        assert nothing.evaluate(graph).rows == frozenset()
        doubled = everything.union(everything)
        assert doubled.evaluate(graph).rows == \
            everything.evaluate(graph).rows

    def test_as_set_of_dicts(self, graph):
        result = scan("L").evaluate(graph)
        assert (("label", "a"), ("node", 1)) in result.as_set_of_dicts()
