"""Tests for the RCDP decider, including the paper's running examples."""

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.errors import (NotPartiallyClosedError,
                          SearchBudgetExceededError,
                          UndecidableConfigurationError)
from repro.queries.atoms import eq, neq, rel
from repro.queries.cq import cq
from repro.queries.datalog import DatalogQuery, rule
from repro.queries.efo import EFOQuery, atom_f, exists, or_
from repro.queries.fo import FOQuery, fo_atom, fo_exists, fo_not
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

# The CRM scenario of Examples 1.1 / 2.1 / 2.2.  CustD holds the local copy
# of the domestic customer data and is fully bounded by master data; Supt's
# customers are bounded by the master cid column.
SCHEMA = DatabaseSchema([
    RelationSchema("CustD", ["cid", "name", "ac", "phn"]),
    RelationSchema("Supt", ["eid", "dept", "cid"]),
])
MASTER_SCHEMA = DatabaseSchema([
    RelationSchema("DCust", ["cid", "name", "ac", "phn"]),
    RelationSchema("Empty", ["z"]),
])

DM = Instance(MASTER_SCHEMA, {
    "DCust": {("c1", "ann", "908", "555-0001"),
              ("c2", "bob", "908", "555-0002"),
              ("c3", "cecilia", "212", "555-0003")},
})


def supt_cid_ind():
    """All supported customers are domestic (bounded by DCust)."""
    return InclusionDependency(
        "Supt", ["cid"], "DCust", ["cid"],
        name="supt⊆dcust").to_containment_constraint(SCHEMA, MASTER_SCHEMA)


def custd_ind():
    """The local customer relation is a subset of master data."""
    return InclusionDependency(
        "CustD", ["cid", "name", "ac", "phn"],
        "DCust", ["cid", "name", "ac", "phn"],
        name="custd⊆dcust").to_containment_constraint(SCHEMA, MASTER_SCHEMA)


def q1_nj_customers():
    """Q1: customers with ac=908 supported by employee e0."""
    return cq([var("c")],
              [rel("Supt", "e0", var("d"), var("c")),
               rel("CustD", var("c"), var("n"), "908", var("p"))],
              name="Q1")


class TestPaperExampleQ1:
    """Example 1.1/2.2: Q1 is complete iff all 908 master customers are
    already supported by e0 (and present in the local customer copy)."""

    def _database(self, supported):
        custd = {("c1", "ann", "908", "555-0001"),
                 ("c2", "bob", "908", "555-0002"),
                 ("c3", "cecilia", "212", "555-0003")}
        supt = {("e0", "sales", c) for c in supported}
        return Instance(SCHEMA, {"CustD": custd, "Supt": supt})

    def test_complete_when_all_908_customers_supported(self):
        db = self._database({"c1", "c2", "c3"})
        result = decide_rcdp(q1_nj_customers(), db, DM,
                             [supt_cid_ind(), custd_ind()])
        assert result.status is RCDPStatus.COMPLETE

    def test_incomplete_when_a_908_customer_is_missing(self):
        db = self._database({"c1"})
        result = decide_rcdp(q1_nj_customers(), db, DM,
                             [supt_cid_ind(), custd_ind()])
        assert result.status is RCDPStatus.INCOMPLETE
        certificate = result.certificate
        assert certificate is not None
        # The certificate's extension must be consistent and answer-changing.
        extended = certificate.apply_to(db)
        q = q1_nj_customers()
        assert q.evaluate(extended) != q.evaluate(db)
        assert certificate.new_answer in q.evaluate(extended)


class TestAtMostKConstraint:
    """Example 2.1 φ1 / Example 3.1: an employee supports ≤ k customers,
    so k distinct answers make the database complete for Q2."""

    K = 2

    def _at_most_k(self):
        # q(e) = ∃ c1..ck+1 distinct: Supt(e, ·, ci)  ⊆ ∅
        body = []
        for i in range(self.K + 1):
            body.append(rel("Supt", var("e"), var(f"d{i}"), var(f"c{i}")))
        for i in range(self.K + 1):
            for j in range(i + 1, self.K + 1):
                body.append(neq(var(f"c{i}"), var(f"c{j}")))
        return ContainmentConstraint(
            cq([var("e")], body, name="q_k"), Projection.empty(), name="φ1")

    def _q2(self):
        return cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))],
                  name="Q2")

    def test_k_answers_make_complete(self):
        db = Instance(SCHEMA, {
            "Supt": {("e0", "sales", "c1"), ("e0", "sales", "c2")}})
        result = decide_rcdp(self._q2(), db, DM, [self._at_most_k()])
        assert result.status is RCDPStatus.COMPLETE

    def test_fewer_answers_incomplete(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c1")}})
        result = decide_rcdp(self._q2(), db, DM, [self._at_most_k()])
        assert result.status is RCDPStatus.INCOMPLETE

    def test_unconstrained_employee_does_not_matter(self):
        # Another employee's tuples never change Q2's answer.
        db = Instance(SCHEMA, {
            "Supt": {("e0", "sales", "c1"), ("e0", "sales", "c2"),
                     ("e9", "sales", "c3")}})
        result = decide_rcdp(self._q2(), db, DM, [self._at_most_k()])
        assert result.status is RCDPStatus.COMPLETE


class TestFDExample31:
    """Example 3.1 second part: with FD eid → dept, cid the answer to Q2
    is complete as soon as it is nonempty."""

    def _v(self):
        return FunctionalDependency(
            "Supt", ["eid"], ["dept", "cid"]).to_containment_constraints(
                SCHEMA)

    def _q2(self):
        return cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))],
                  name="Q2")

    def test_nonempty_answer_complete(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c1")}})
        result = decide_rcdp(self._q2(), db, DM, self._v())
        assert result.status is RCDPStatus.COMPLETE

    def test_empty_answer_incomplete(self):
        db = Instance(SCHEMA, {"Supt": {("e9", "sales", "c1")}})
        result = decide_rcdp(self._q2(), db, DM, self._v())
        assert result.status is RCDPStatus.INCOMPLETE


class TestNoConstraints:
    """With V = ∅ the database is open-world: only trivially complete
    queries stay complete."""

    def test_open_world_incomplete(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c1")}})
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcdp(q, db, DM, [])
        assert result.status is RCDPStatus.INCOMPLETE

    def test_unsatisfiable_query_complete(self):
        db = Instance.empty(SCHEMA)
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c")),
                            eq(var("c"), "a"), eq(var("c"), "b")])
        result = decide_rcdp(q, db, DM, [])
        assert result.status is RCDPStatus.COMPLETE

    def test_boolean_query_complete_once_true(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c1")}})
        q = cq([], [rel("Supt", var("e"), var("d"), var("c"))])
        result = decide_rcdp(q, db, DM, [])
        assert result.status is RCDPStatus.COMPLETE

    def test_boolean_query_incomplete_while_false(self):
        q = cq([], [rel("Supt", var("e"), var("d"), var("c"))])
        result = decide_rcdp(q, Instance.empty(SCHEMA), DM, [])
        assert result.status is RCDPStatus.INCOMPLETE


class TestUCQAndEFO:
    def test_ucq_incomplete_until_master_exhausted(self):
        db = Instance(SCHEMA, {
            "Supt": {("e0", "sales", "c1"), ("e1", "sales", "c1")}})
        q = ucq([
            cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))]),
            cq([var("c")], [rel("Supt", "e1", var("d"), var("c"))]),
        ])
        # Any new customer must be in DCust, and c2/c3 are not yet
        # supported by either employee — incomplete.
        result = decide_rcdp(q, db, DM, [supt_cid_ind()])
        assert result.status is RCDPStatus.INCOMPLETE

    def test_ucq_complete_when_both_employees_cover_master(self):
        rows = {("e0", "s", c) for c in ("c1", "c2", "c3")}
        rows |= {("e1", "s", c) for c in ("c1", "c2", "c3")}
        db = Instance(SCHEMA, {"Supt": rows})
        q = ucq([
            cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))]),
            cq([var("c")], [rel("Supt", "e1", var("d"), var("c"))]),
        ])
        result = decide_rcdp(q, db, DM, [supt_cid_ind()])
        assert result.status is RCDPStatus.COMPLETE

    def test_efo_query(self):
        formula = or_(
            atom_f(rel("Supt", "e0", var("d"), var("c"))),
            atom_f(rel("Supt", "e1", var("d"), var("c"))))
        q = EFOQuery([var("c")], exists([var("d")], formula))
        db = Instance(SCHEMA, {
            "Supt": {("e0", "s", c) for c in ("c1", "c2", "c3")}
                    | {("e1", "s", c) for c in ("c1", "c2", "c3")}})
        # every master customer is supported by both: complete
        result = decide_rcdp(q, db, DM, [supt_cid_ind()])
        assert result.status is RCDPStatus.COMPLETE

    def test_efo_incomplete(self):
        formula = or_(
            atom_f(rel("Supt", "e0", var("d"), var("c"))),
            atom_f(rel("Supt", "e1", var("d"), var("c"))))
        q = EFOQuery([var("c")], exists([var("d")], formula))
        db = Instance(SCHEMA, {"Supt": {("e0", "s", "c1")}})
        result = decide_rcdp(q, db, DM, [supt_cid_ind()])
        assert result.status is RCDPStatus.INCOMPLETE


class TestGuards:
    def test_fo_query_rejected(self):
        q = FOQuery([], fo_exists(
            [var("e"), var("d"), var("c")],
            fo_atom(rel("Supt", var("e"), var("d"), var("c")))))
        with pytest.raises(UndecidableConfigurationError):
            decide_rcdp(q, Instance.empty(SCHEMA), DM, [])

    def test_fp_query_rejected(self):
        q = DatalogQuery(
            [rule(rel("T", var("e")),
                  rel("Supt", var("e"), var("d"), var("c")))], goal="T")
        with pytest.raises(UndecidableConfigurationError):
            decide_rcdp(q, Instance.empty(SCHEMA), DM, [])

    def test_fo_constraint_rejected(self):
        q_fo = FOQuery([], fo_not(fo_exists(
            [var("e"), var("d"), var("c")],
            fo_atom(rel("Supt", var("e"), var("d"), var("c"))))))
        cc = ContainmentConstraint(q_fo, Projection.empty(), name="fo-cc")
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        with pytest.raises(UndecidableConfigurationError):
            decide_rcdp(q, Instance.empty(SCHEMA), DM, [cc])

    def test_not_partially_closed_rejected(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c-unknown")}})
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        with pytest.raises(NotPartiallyClosedError):
            decide_rcdp(q, db, DM, [supt_cid_ind()])

    def test_budget_enforced(self):
        # A COMPLETE verdict must exhaust the valuation space, so a tiny
        # budget is necessarily exceeded.
        db = Instance(SCHEMA, {
            "Supt": {("e0", "s", c) for c in ("c1", "c2", "c3")}})
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        with pytest.raises(SearchBudgetExceededError):
            decide_rcdp(q, db, DM, [supt_cid_ind()], budget=1)


class TestCertificates:
    def test_certificate_is_actionable(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c1")}})
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcdp(q, db, DM, [supt_cid_ind()])
        assert result.status is RCDPStatus.INCOMPLETE
        cert = result.certificate
        extended = cert.apply_to(db)
        # extension keeps V satisfied
        assert supt_cid_ind().is_satisfied(extended, DM)
        # and adds the promised answer
        assert cert.new_answer in q.evaluate(extended)
        assert cert.new_answer not in q.evaluate(db)

    def test_statistics_populated(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c1")}})
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcdp(q, db, DM, [supt_cid_ind()])
        assert result.statistics.valuations_examined > 0

    def test_result_truthiness_is_undefined(self):
        db = Instance.empty(SCHEMA)
        q = cq([], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcdp(q, db, DM, [])
        with pytest.raises(TypeError):
            bool(result)
