"""Tests for the scenario corpus engine.

Pins the three guarantees the corpus is built on: seed determinism
(byte-identical regeneration, including against the golden bundles
committed under ``examples/bundles/``), differential agreement (every
backend × worker cell matches the python-serial oracle), and the
diversity gate (coverage collapse fails generation before anything
reaches disk).
"""

import json
import pathlib
import shutil

import pytest

from repro.corpus import (CONSTRAINT_CLASSES, FAMILIES, SIZES, TARGETS,
                          TIERS, build_report, check_diversity,
                          check_report, ensure_diverse, generate_corpus,
                          render_report, run_corpus, spec_for)
from repro.corpus.generate import MANIFEST_NAME, dump_scenario
from repro.corpus.report import load_report
from repro.cli import main
from repro.errors import CorpusError, DiversityError

BUNDLES_DIR = (pathlib.Path(__file__).resolve().parents[1]
               / "examples" / "bundles")

SEED = 7
PER_FAMILY = 6


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("corpus")
    generate_corpus(str(out), seed=SEED, per_family=PER_FAMILY)
    return out


@pytest.fixture(scope="module")
def run_result(corpus_dir):
    return run_corpus(str(corpus_dir))


def _tree(directory: pathlib.Path) -> dict[str, bytes]:
    return {path.name: path.read_bytes()
            for path in sorted(directory.iterdir())}


class TestGeneration:
    def test_manifest_matches_disk(self, corpus_dir):
        manifest = json.loads(
            (corpus_dir / MANIFEST_NAME).read_text(encoding="utf-8"))
        assert manifest["seed"] == SEED
        assert manifest["families"] == list(FAMILIES)
        assert len(manifest["scenarios"]) == PER_FAMILY * len(FAMILIES)
        for entry in manifest["scenarios"]:
            bundle_path = corpus_dir / entry["file"]
            assert bundle_path.exists()
            bundle = json.loads(bundle_path.read_text(encoding="utf-8"))
            assert bundle["expected"]["rcdp"] == entry["verdict"]
            assert bundle["corpus"]["family"] == entry["family"]
            assert entry["verdict"] == entry["target"]

    def test_same_seed_regenerates_byte_identical(self, corpus_dir,
                                                  tmp_path):
        generate_corpus(str(tmp_path / "again"), seed=SEED,
                        per_family=PER_FAMILY)
        assert _tree(tmp_path / "again") == _tree(corpus_dir)

    def test_different_seed_differs(self, corpus_dir, tmp_path):
        generate_corpus(str(tmp_path / "other"), seed=SEED + 1,
                        per_family=PER_FAMILY)
        ours = [path.read_bytes()
                for path in sorted((tmp_path / "other").iterdir())
                if path.name != MANIFEST_NAME]
        theirs = [path.read_bytes()
                  for path in sorted(corpus_dir.iterdir())
                  if path.name != MANIFEST_NAME]
        assert ours != theirs

    def test_golden_bundles_are_seed_pinned(self, tmp_path):
        """Regenerating the committed golden scenarios reproduces their
        bytes exactly — cross-process determinism, pinned in git."""
        for family, index in (("crm", 3), ("erp", 0), ("scm", 1),
                              ("hierarchy", 5)):
            golden = BUNDLES_DIR / f"gen_{family}_golden.json"
            regenerated = tmp_path / golden.name
            dump_scenario(str(regenerated), family, 9, index)
            assert regenerated.read_bytes() == golden.read_bytes(), \
                f"{golden.name} drifted from the seed-9 generator"

    def test_spec_grid_covers_every_combination(self):
        for family in FAMILIES:
            combos = {(spec.tier, spec.size, spec.target)
                      for spec in (spec_for(family, SEED, index)
                                   for index in range(12))}
            assert combos == {(tier, size, target) for tier in TIERS
                              for size in SIZES for target in TARGETS}

    def test_generated_corpus_lints_clean(self, corpus_dir):
        """Everything the generator emits must re-lint clean (exit 0,
        info-level findings allowed); the manifest sidecar is skipped
        by directory linting rather than tripping it."""
        assert main(["lint", str(corpus_dir)]) == 0

    def test_rejects_unknown_family_and_bad_size(self, tmp_path):
        with pytest.raises(CorpusError):
            generate_corpus(str(tmp_path / "x"), seed=1,
                            families=("crm", "nope"))
        with pytest.raises(CorpusError):
            generate_corpus(str(tmp_path / "x"), seed=1, per_family=0)


class TestRunner:
    def test_full_matrix_agrees_with_oracle(self, run_result):
        assert run_result.ok, run_result.scenarios
        for family, (passed, total) in run_result.pass_rates().items():
            assert (passed, total) == (PER_FAMILY, PER_FAMILY), family
        for scenario in run_result.scenarios:
            # python×1 is the oracle itself; the other 5 cells re-decide.
            assert len(scenario.cells) == 5
            assert not scenario.all_failures()

    def test_tampered_golden_is_flagged(self, corpus_dir, tmp_path):
        broken = tmp_path / "tampered"
        shutil.copytree(corpus_dir, broken)
        manifest = json.loads(
            (broken / MANIFEST_NAME).read_text(encoding="utf-8"))
        entry = manifest["scenarios"][0]
        bundle_path = broken / entry["file"]
        bundle = json.loads(bundle_path.read_text(encoding="utf-8"))
        bundle["expected"]["rcdp"] = (
            "incomplete" if entry["verdict"] == "complete"
            else "complete")
        bundle_path.write_text(json.dumps(bundle), encoding="utf-8")

        result = run_corpus(str(broken), backends=("python",),
                            workers=(1,), check_counting=False)
        assert not result.ok
        bad = [s for s in result.scenarios if not s.ok]
        assert len(bad) == 1
        assert any("golden" in failure for failure in bad[0].failures)
        passed, total = result.pass_rates()[entry["family"]]
        assert passed == total - 1

    def test_unloadable_bundle_is_a_recorded_failure(self, corpus_dir,
                                                     tmp_path):
        broken = tmp_path / "crashed"
        shutil.copytree(corpus_dir, broken)
        manifest = json.loads(
            (broken / MANIFEST_NAME).read_text(encoding="utf-8"))
        victim = broken / manifest["scenarios"][0]["file"]
        victim.write_text("{not json", encoding="utf-8")

        result = run_corpus(str(broken), backends=("python",),
                            workers=(1,), check_counting=False)
        assert not result.ok
        crashed = [s for s in result.scenarios if not s.ok]
        assert len(crashed) == 1
        assert any("scenario crashed" in failure
                   for failure in crashed[0].all_failures())

    def test_runner_rejects_unknown_backend_and_empty_dir(self, corpus_dir,
                                                          tmp_path):
        with pytest.raises(CorpusError):
            run_corpus(str(corpus_dir), backends=("fortran",))
        with pytest.raises(CorpusError):
            run_corpus(str(tmp_path / "empty_dir_without_bundles"))


def _records(families=FAMILIES, tiers=TIERS, verdicts=("complete",
                                                       "incomplete"),
             classes=CONSTRAINT_CLASSES):
    return [{"family": family, "tier": tier, "verdict": verdict,
             "classes": tuple(classes)}
            for family in families for tier in tiers
            for verdict in verdicts]


class TestDiversityGate:
    def test_balanced_sweep_passes(self):
        report = check_diversity(_records())
        assert report.ok, report.problems

    def test_missing_family_trips(self):
        report = check_diversity(_records(families=("crm", "erp", "scm")))
        assert not report.ok
        assert any("hierarchy" in problem for problem in report.problems)

    def test_single_tier_trips(self):
        report = check_diversity(_records(tiers=("CQ",)))
        assert not report.ok
        assert any("tier" in problem for problem in report.problems)

    def test_verdict_monoculture_trips(self):
        report = check_diversity(_records(verdicts=("complete",)))
        assert not report.ok

    def test_missing_constraint_class_trips(self):
        report = check_diversity(_records(classes=("cc", "ind")))
        assert not report.ok
        assert any("denial" in problem for problem in report.problems)

    def test_ensure_diverse_raises(self):
        with pytest.raises(DiversityError):
            ensure_diverse(_records(tiers=("CQ",)))

    def test_collapsed_generation_writes_nothing(self, tmp_path):
        out = tmp_path / "collapsed"
        # per_family=1 only ever reaches the CQ tier, so the gate must
        # trip — and nothing may reach disk when it does.
        with pytest.raises(DiversityError):
            generate_corpus(str(out), seed=SEED, per_family=1,
                            families=("crm",))
        assert not out.exists()


class TestReport:
    def test_report_shape_and_gates(self, run_result):
        report = build_report(run_result, smoke=True)
        assert report["bench_report_version"] == 1
        assert report["smoke"] is True
        assert {row["name"] for row in report["rows"]} == {
            f"corpus/{family}" for family in FAMILIES}
        enforced = [gate for gate in report["gates"] if gate["enforced"]]
        assert {gate["name"] for gate in enforced} == {
            f"corpus_pass_rate/{family}" for family in FAMILIES}
        assert all(gate["passed"] for gate in enforced)
        assert check_report(report) == 0
        rendered = render_report(report)
        assert "corpus/crm" in rendered and "gate" in rendered

    def test_failed_run_fails_the_gate(self, corpus_dir, tmp_path):
        broken = tmp_path / "gatefail"
        shutil.copytree(corpus_dir, broken)
        manifest = json.loads(
            (broken / MANIFEST_NAME).read_text(encoding="utf-8"))
        victim = broken / manifest["scenarios"][0]["file"]
        victim.write_text("{not json", encoding="utf-8")
        report = build_report(run_corpus(
            str(broken), backends=("python",), workers=(1,),
            check_counting=False))
        assert check_report(report) == 1
        assert "FAIL" in render_report(report)

    def test_load_report_round_trip(self, run_result, tmp_path):
        report = build_report(run_result)
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report), encoding="utf-8")
        assert load_report(str(path)) == report
        bad = tmp_path / "bad.json"
        bad.write_text('{"bench_report_version": 99}', encoding="utf-8")
        with pytest.raises(CorpusError):
            load_report(str(bad))


class TestCli:
    def test_generate_run_report_round_trip(self, tmp_path, capsys):
        out = tmp_path / "clicorpus"
        report_path = tmp_path / "report.json"
        assert main(["corpus", "generate", "--out", str(out),
                     "--seed", "5", "--per-family", "6",
                     "--families", "crm", "hierarchy"]) == 0
        assert (out / MANIFEST_NAME).exists()
        assert main(["corpus", "run", "--dir", str(out),
                     "--backends", "columnar", "--workers", "1",
                     "--report", str(report_path)]) == 0
        assert "corpus report" in capsys.readouterr().out
        assert main(["corpus", "report", str(report_path)]) == 0

    def test_generate_diversity_failure_exits_2(self, tmp_path):
        assert main(["corpus", "generate",
                     "--out", str(tmp_path / "collapsed"),
                     "--seed", "5", "--per-family", "1",
                     "--families", "crm"]) == 2
