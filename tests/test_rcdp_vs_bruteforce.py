"""Property-based cross-validation: the characterization-based RCDP decider
must agree with the brute-force definition-checker on random small
instances.

This is the strongest executable evidence that the Proposition 3.3 /
Corollary 3.4–3.5 characterizations are implemented correctly: the two
procedures share no code path beyond constraint evaluation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.containment import satisfies_all
from repro.constraints.ind import InclusionDependency
from repro.core.bounded import brute_force_rcdp, default_value_pool
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})

IND = InclusionDependency(
    "S", ["cid"], "M", ["cid"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)
FD = FunctionalDependency("S", ["eid"], ["cid"]).to_containment_constraints(
    SCHEMA)

_rows = st.frozensets(
    st.tuples(st.sampled_from(["e0", "e1"]),
              st.sampled_from(["c1", "c2"])),
    max_size=4)

Q_CQ = cq([var("c")], [rel("S", "e0", var("c"))], name="Qcq")
Q_UCQ = ucq([
    cq([var("c")], [rel("S", "e0", var("c"))]),
    cq([var("c")], [rel("S", "e1", var("c"))]),
], name="Qucq")


def _agree(query, db, constraints):
    if not satisfies_all(db, DM, constraints):
        return  # not partially closed: RCDP undefined
    exact = decide_rcdp(query, db, DM, constraints)
    # The characterization guarantees a counterexample of at most
    # |tableau rows| facts over the active domain; every disjunct here has
    # one row, so bound 1 suffices for agreement.
    pool = default_value_pool(SCHEMA, (db, DM),
                              [query] + [c.query for c in constraints],
                              fresh_count=2)
    brute = brute_force_rcdp(query, db, DM, constraints,
                             max_extra_facts=1, values=pool)
    if exact.status is RCDPStatus.COMPLETE:
        assert brute.status is RCDPStatus.COMPLETE_UP_TO_BOUND
    else:
        assert brute.status is RCDPStatus.INCOMPLETE


@settings(max_examples=40, deadline=None)
@given(rows=_rows)
def test_cq_with_ind_agrees(rows):
    _agree(Q_CQ, Instance(SCHEMA, {"S": rows}), [IND])


@settings(max_examples=40, deadline=None)
@given(rows=_rows)
def test_ucq_with_ind_agrees(rows):
    _agree(Q_UCQ, Instance(SCHEMA, {"S": rows}), [IND])


@settings(max_examples=30, deadline=None)
@given(rows=_rows)
def test_cq_with_fd_agrees(rows):
    _agree(Q_CQ, Instance(SCHEMA, {"S": rows}), list(FD))


@settings(max_examples=30, deadline=None)
@given(rows=_rows)
def test_cq_with_ind_and_fd_agrees(rows):
    _agree(Q_CQ, Instance(SCHEMA, {"S": rows}), [IND] + list(FD))


@settings(max_examples=30, deadline=None)
@given(rows=_rows)
def test_no_constraints_agrees(rows):
    _agree(Q_CQ, Instance(SCHEMA, {"S": rows}), [])
