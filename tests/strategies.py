"""Hypothesis strategies for random queries and instances.

Shared by the deep property-test modules: generates small random
conjunctive queries (safe by construction) and instances over a fixed
two-relation schema.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Var
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([
    RelationSchema("R", ["a", "b"]),
    RelationSchema("T", ["x", "y", "z"]),
])

_VAR_NAMES = ["v0", "v1", "v2", "v3"]
_CONSTANTS = [0, 1, 2]


@st.composite
def terms(draw) -> object:
    """A variable (likely) or a constant."""
    if draw(st.booleans()) or draw(st.booleans()):
        return Var(draw(st.sampled_from(_VAR_NAMES)))
    return Const(draw(st.sampled_from(_CONSTANTS)))


@st.composite
def relation_atoms(draw) -> RelAtom:
    name = draw(st.sampled_from(["R", "T"]))
    arity = SCHEMA.relation(name).arity
    return RelAtom(name, [draw(terms()) for _ in range(arity)])


@st.composite
def conjunctive_queries(draw, max_atoms: int = 3,
                        allow_inequalities: bool = True,
                        ) -> ConjunctiveQuery:
    """A safe random CQ: head variables drawn from the body atoms."""
    atoms = [draw(relation_atoms())
             for _ in range(draw(st.integers(1, max_atoms)))]
    body_vars = sorted(
        {v for atom in atoms for v in atom.variables()},
        key=lambda v: v.name)
    comparisons = []
    if body_vars and draw(st.booleans()):
        left = draw(st.sampled_from(body_vars))
        right = draw(st.one_of(
            st.sampled_from(body_vars),
            st.sampled_from(_CONSTANTS).map(Const)))
        kind = Neq if (allow_inequalities and draw(st.booleans())) else Eq
        if not (kind is Neq and left == right):
            comparisons.append(kind(left, right))
    head_size = draw(st.integers(0, min(2, len(body_vars))))
    head = draw(st.permutations(body_vars))[:head_size] if body_vars \
        else []
    return ConjunctiveQuery(head, atoms + comparisons, name="Qrand")


@st.composite
def union_queries(draw, max_disjuncts: int = 2,
                  allow_inequalities: bool = True,
                  ) -> UnionOfConjunctiveQueries:
    """A random UCQ whose disjuncts share one arity."""
    first = draw(conjunctive_queries(
        allow_inequalities=allow_inequalities))
    disjuncts = [first]
    for _ in range(draw(st.integers(0, max_disjuncts - 1))):
        candidate = draw(conjunctive_queries(
            allow_inequalities=allow_inequalities))
        if candidate.arity == first.arity:
            disjuncts.append(candidate)
    return UnionOfConjunctiveQueries(disjuncts, name="Urand")


_r_rows = st.frozensets(
    st.tuples(st.sampled_from(_CONSTANTS), st.sampled_from(_CONSTANTS)),
    max_size=5)
_t_rows = st.frozensets(
    st.tuples(st.sampled_from(_CONSTANTS), st.sampled_from(_CONSTANTS),
              st.sampled_from(_CONSTANTS)),
    max_size=4)


@st.composite
def instances(draw) -> Instance:
    """A small random instance of the shared schema."""
    return Instance(SCHEMA, {"R": draw(_r_rows), "T": draw(_t_rows)})


_r_fact = st.tuples(
    st.just("R"),
    st.tuples(st.sampled_from(_CONSTANTS), st.sampled_from(_CONSTANTS)))
_t_fact = st.tuples(
    st.just("T"),
    st.tuples(st.sampled_from(_CONSTANTS), st.sampled_from(_CONSTANTS),
              st.sampled_from(_CONSTANTS)))


@st.composite
def extension_facts(draw, max_facts: int = 4) -> list[tuple[str, tuple]]:
    """A small random Δ over the shared schema, as ``(relation, row)``
    facts.  Deliberately *may* overlap an instance drawn from
    :func:`instances` — the delta-evaluation path must filter Δ ∩ D
    itself, so the tests feed it unfiltered extensions."""
    return draw(st.lists(st.one_of(_r_fact, _t_fact), max_size=max_facts))
