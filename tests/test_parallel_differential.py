"""Differential tests: parallel search ≡ serial search.

The ``repro.parallel`` contract is that sharding is *invisible* in the
result: for every worker count the deciders return the same verdict,
the same (serial-first) witness, and — on full enumerations — the same
merged search statistics as the serial run.  These tests pin that down
with Hypothesis-random scenarios, with fault injection, and with
budget-exhausted multi-leg resumption.

Early-exit caveat: on an INCOMPLETE/NONEMPTY verdict the *verdict and
witness* are worker-count invariant but the examined-candidate counters
need not be — a shard may scan candidates the serial run never reached
before the witness was found.  Counter equality is therefore asserted
only on verdicts that exhaust their enumeration.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints.containment import satisfies_all
from repro.constraints.ind import InclusionDependency
from repro.core.bounded import brute_force_rcdp, brute_force_rcqp
from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.core.witness import make_complete
from repro.errors import ReproError
from repro.parallel import resolve_workers
from repro.queries.atoms import RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.runtime import ExecutionGovernor, FaultInjector

from tests.strategies import SCHEMA, conjunctive_queries, instances

import pytest

MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["c"])])
DM = Instance(MASTER_SCHEMA, {"M": {(0,), (1,)}})

# R[b] ⊆ M[c]: random instances whose R carries a 2 in column b are not
# partially closed and get filtered out below.
IND = InclusionDependency(
    "R", ["b"], "M", ["c"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)


def _assert_same_rcdp(serial, parallel):
    assert parallel.status is serial.status
    assert parallel.explanation == serial.explanation
    if serial.certificate is None:
        assert parallel.certificate is None
    else:
        assert parallel.certificate is not None
        assert (parallel.certificate.extension_facts
                == serial.certificate.extension_facts)
        assert (parallel.certificate.new_answer
                == serial.certificate.new_answer)
    if serial.status is RCDPStatus.COMPLETE:
        # Full enumeration: the merged counters are exact.
        assert (parallel.statistics.valuations_examined
                == serial.statistics.valuations_examined)


class TestRCDPDifferential:
    @settings(max_examples=30, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances())
    def test_two_workers_match_serial(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            serial = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        parallel = decide_rcdp(query, db, DM, [IND], workers=2)
        _assert_same_rcdp(serial, parallel)

    @settings(max_examples=15, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances(), after=st.integers(0, 25))
    def test_fault_injected_run_resumes_to_serial_verdict(
            self, query, db, after):
        assume(satisfies_all(db, DM, [IND]))
        try:
            serial = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        governor = ExecutionGovernor(
            faults=FaultInjector(exhaust_after=after))
        partial = decide_rcdp(query, db, DM, [IND], workers=2,
                              governor=governor, on_exhausted="partial")
        if partial.status is not RCDPStatus.EXHAUSTED:
            _assert_same_rcdp(serial, partial)
            return
        assert partial.checkpoint is not None
        resumed = decide_rcdp(query, db, DM, [IND], workers=2,
                              resume_from=partial.checkpoint)
        assert resumed.status is serial.status

    @settings(max_examples=10, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances(), budget=st.integers(1, 12))
    def test_budget_exhausted_legs_converge_to_serial_verdict(
            self, query, db, budget):
        """Re-running with the same small budget and resuming each
        EXHAUSTED leg from its checkpoint must terminate (the split
        governor hands every leg at least one admissible tick) and land
        on the serial verdict."""
        assume(satisfies_all(db, DM, [IND]))
        try:
            serial = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        result = decide_rcdp(
            query, db, DM, [IND], workers=2,
            governor=ExecutionGovernor.from_limits(budget=budget),
            on_exhausted="partial")
        legs = 1
        while result.status is RCDPStatus.EXHAUSTED:
            assert legs < 100, "budget-resume loop made no progress"
            assert result.checkpoint is not None
            result = decide_rcdp(
                query, db, DM, [IND], workers=2,
                governor=ExecutionGovernor.from_limits(budget=budget),
                on_exhausted="partial", resume_from=result.checkpoint)
            legs += 1
        assert result.status is serial.status


class TestMissingAnswersDifferential:
    @settings(max_examples=25, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances())
    def test_two_workers_match_serial(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            serial = missing_answers_report(query, db, DM, [IND])
        except ReproError:
            assume(False)
        parallel = missing_answers_report(query, db, DM, [IND],
                                          workers=2)
        assert parallel.answers == serial.answers
        assert parallel.exhaustive == serial.exhaustive

    @settings(max_examples=15, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances(), limit=st.integers(1, 3))
    def test_truncated_report_matches_serial(self, query, db, limit):
        """The limit-truncated parallel report keeps exactly the serial
        run's first *limit* distinct missing answers."""
        assume(satisfies_all(db, DM, [IND]))
        try:
            serial = missing_answers_report(query, db, DM, [IND],
                                            limit=limit)
        except ReproError:
            assume(False)
        parallel = missing_answers_report(query, db, DM, [IND],
                                          limit=limit, workers=2)
        assert parallel.answers == serial.answers
        assert parallel.exhaustive == serial.exhaustive


# A Boolean join whose verdict is COMPLETE: the decider must exhaust
# the pruned valuation space, so the merged statistics are exact.
_X, _Y, _Z = Var("x"), Var("y"), Var("z")
COMPLETE_QUERY = ConjunctiveQuery(
    (), [RelAtom("T", (_X, _Y, _Z)), RelAtom("R", (_X, _Y))],
    name="qjoin")
COMPLETE_DB = Instance(SCHEMA, {"R": {(0, 0)}, "T": {(0, 0, 0)}})

# A single-atom projection whose verdict is INCOMPLETE with a witness.
WITNESS_QUERY = ConjunctiveQuery(
    (_X,), [RelAtom("R", (_X, _Y))], name="qproj")
WITNESS_DB = Instance(SCHEMA, {"R": {(0, 0)}})


class TestFixedScenarioWorkerLadder:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_complete_verdict_and_exact_statistics(self, workers):
        serial = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND])
        assert serial.status is RCDPStatus.COMPLETE
        result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                             workers=workers)
        _assert_same_rcdp(serial, result)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_incomplete_witness_is_the_serial_first(self, workers):
        serial = decide_rcdp(WITNESS_QUERY, WITNESS_DB, DM, [IND])
        assert serial.status is RCDPStatus.INCOMPLETE
        result = decide_rcdp(WITNESS_QUERY, WITNESS_DB, DM, [IND],
                             workers=workers)
        _assert_same_rcdp(serial, result)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_brute_force_rcdp_matches_serial(self, workers):
        serial = brute_force_rcdp(WITNESS_QUERY, WITNESS_DB, DM, [IND],
                                  max_extra_facts=1)
        result = brute_force_rcdp(WITNESS_QUERY, WITNESS_DB, DM, [IND],
                                  max_extra_facts=1, workers=workers)
        assert result.status is serial.status
        assert result.explanation == serial.explanation
        if serial.certificate is not None:
            assert (result.certificate.extension_facts
                    == serial.certificate.extension_facts)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_brute_force_rcqp_matches_serial(self, workers):
        serial = brute_force_rcqp(WITNESS_QUERY, DM, [IND], SCHEMA,
                                  max_database_size=1,
                                  completeness_bound=1)
        result = brute_force_rcqp(WITNESS_QUERY, DM, [IND], SCHEMA,
                                  max_database_size=1,
                                  completeness_bound=1, workers=workers)
        assert result.status is serial.status
        assert result.witness == serial.witness

    @pytest.mark.parametrize("workers", [2, 3])
    def test_rcqp_general_matches_serial(self, workers):
        serial = decide_rcqp(WITNESS_QUERY, Instance(MASTER_SCHEMA),
                             [IND], SCHEMA, max_valuation_set_size=1,
                             max_rows_per_unit=1)
        result = decide_rcqp(WITNESS_QUERY, Instance(MASTER_SCHEMA),
                             [IND], SCHEMA, max_valuation_set_size=1,
                             max_rows_per_unit=1, workers=workers)
        assert result.status is serial.status
        assert result.witness == serial.witness

    @pytest.mark.parametrize("workers", [2, 3])
    def test_make_complete_matches_serial(self, workers):
        serial = make_complete(WITNESS_QUERY, WITNESS_DB, DM, [IND],
                               max_rounds=4)
        result = make_complete(WITNESS_QUERY, WITNESS_DB, DM, [IND],
                               max_rounds=4, workers=workers)
        assert result.complete == serial.complete
        assert result.rounds == serial.rounds
        assert result.added_facts == serial.added_facts


class TestWorkerKnob:
    def test_resolve_workers_normalizes(self):
        import os
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_workers_rejected(self):
        with pytest.raises(ReproError, match="workers"):
            decide_rcdp(WITNESS_QUERY, WITNESS_DB, DM, [IND],
                        workers=-1)

    def test_checkpoint_binds_worker_count(self):
        partial = decide_rcdp(
            COMPLETE_QUERY, COMPLETE_DB, DM, [IND], workers=2,
            governor=ExecutionGovernor.from_limits(budget=2),
            on_exhausted="partial")
        assert partial.status is RCDPStatus.EXHAUSTED
        assert partial.checkpoint is not None
        with pytest.raises(ReproError, match="workers=2"):
            decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                        workers=3, resume_from=partial.checkpoint)

    def test_exhausted_statistics_are_cumulative_across_legs(self):
        serial = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND])
        result = decide_rcdp(
            COMPLETE_QUERY, COMPLETE_DB, DM, [IND], workers=2,
            governor=ExecutionGovernor.from_limits(budget=5),
            on_exhausted="partial")
        legs = 1
        while result.status is RCDPStatus.EXHAUSTED:
            assert legs < 50
            result = decide_rcdp(
                COMPLETE_QUERY, COMPLETE_DB, DM, [IND], workers=2,
                governor=ExecutionGovernor.from_limits(budget=5),
                on_exhausted="partial", resume_from=result.checkpoint)
            legs += 1
        assert legs > 1, "budget=5 should force at least one resume"
        assert result.status is RCDPStatus.COMPLETE
        assert (result.statistics.valuations_examined
                == serial.statistics.valuations_examined)


class TestStartMethods:
    """The differential contract holds under every multiprocessing
    start method — ``spawn`` in particular re-imports the worker module
    and re-pickles every task, the path ``fork`` never exercises."""

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_fixed_scenarios_under_forced_start_method(
            self, monkeypatch, method):
        import multiprocessing
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", method)
        serial = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND])
        _assert_same_rcdp(serial, decide_rcdp(
            COMPLETE_QUERY, COMPLETE_DB, DM, [IND], workers=2))
        serial = decide_rcdp(WITNESS_QUERY, WITNESS_DB, DM, [IND])
        _assert_same_rcdp(serial, decide_rcdp(
            WITNESS_QUERY, WITNESS_DB, DM, [IND], workers=2))

    def test_unknown_start_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "bogus")
        with pytest.raises(ReproError,
                           match="REPRO_PARALLEL_START_METHOD"):
            decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                        workers=2)


_RCQP_IND = InclusionDependency(
    "R", ["a"], "M", ["c"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)


class TestRCQPWithINDsDifferential:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_nonempty_witness_matches_serial(self, workers):
        serial = decide_rcqp(WITNESS_QUERY, DM, [_RCQP_IND], SCHEMA)
        assert serial.status is RCQPStatus.NONEMPTY
        result = decide_rcqp(WITNESS_QUERY, DM, [_RCQP_IND], SCHEMA,
                             workers=workers)
        assert result.status is serial.status
        assert result.witness == serial.witness

    @pytest.mark.parametrize("workers", [2, 3])
    def test_empty_master_matches_serial(self, workers):
        empty_master = Instance(MASTER_SCHEMA)
        serial = decide_rcqp(WITNESS_QUERY, empty_master, [_RCQP_IND],
                             SCHEMA)
        result = decide_rcqp(WITNESS_QUERY, empty_master, [_RCQP_IND],
                             SCHEMA, workers=workers)
        assert result.status is serial.status
        assert result.witness == serial.witness
