"""Deep property tests over *random* conjunctive queries.

Unlike the fixed-query property suite, these draw the queries themselves
from a hypothesis strategy, exercising corner shapes (repeated variables,
constants in atoms, Boolean heads, cross products) that hand-written
tests miss.
"""

from hypothesis import given, settings

from repro.core.rcdp import _extend_unvalidated
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.queries.atoms import Neq
from repro.queries.containment import (is_contained_in,
                                       is_ucq_contained_in, minimize)
from repro.queries.folding import Folding
from repro.queries.tableau import Tableau
from repro.relational.instance import Instance

from tests.strategies import (SCHEMA, conjunctive_queries, instances,
                              union_queries)


def _inequality_free(query) -> bool:
    return not any(isinstance(c, Neq) for c in query.comparisons)


class TestEvaluationInvariants:
    @settings(max_examples=80, deadline=None)
    @given(query=conjunctive_queries(), instance=instances(),
           extra=instances())
    def test_monotone_under_extension(self, query, instance, extra):
        bigger = instance.union(extra)
        assert query.evaluate(instance) <= query.evaluate(bigger)

    @settings(max_examples=80, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_answers_have_head_arity(self, query, instance):
        for row in query.evaluate(instance):
            assert len(row) == query.arity

    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_rename_preserves_semantics(self, query, instance):
        from repro.queries.terms import Var

        mapping = {v: Var(v.name + "_r") for v in query.variables()}
        renamed = query.rename_variables(mapping)
        assert renamed.evaluate(instance) == query.evaluate(instance)


class TestTableauInvariants:
    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_valid_valuation_summary_lemma(self, query, instance):
        tableau = Tableau(query, SCHEMA)
        if not tableau.satisfiable:
            return
        adom = ActiveDomain.build(instances=(instance,), queries=(query,),
                                  tableaux=(tableau,))
        for count, valuation in enumerate(
                iter_valid_valuations(tableau, adom)):
            frozen = _extend_unvalidated(
                Instance.empty(SCHEMA), tableau.instantiate(valuation))
            assert tableau.summary_under(valuation) in \
                query.evaluate(frozen)
            if count >= 20:
                break

    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_unsatisfiable_tableau_means_empty_answers(self, query,
                                                       instance):
        tableau = Tableau(query, SCHEMA)
        if not tableau.satisfiable:
            assert query.evaluate(instance) == frozenset()


class TestContainmentInvariants:
    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False))
    def test_containment_reflexive(self, query):
        assert is_contained_in(query, query, SCHEMA)

    @settings(max_examples=40, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           instance=instances())
    def test_minimize_preserves_semantics(self, query, instance):
        minimal = minimize(query, SCHEMA)
        assert minimal.evaluate(instance) == query.evaluate(instance)
        assert len(minimal.relation_atoms) <= len(query.relation_atoms)

    @settings(max_examples=40, deadline=None)
    @given(union=union_queries(allow_inequalities=False),
           instance=instances())
    def test_containment_soundness_on_data(self, union, instance):
        """Whenever SY claims Q1 ⊆ Q2, the answers agree on real data."""
        disjunct = union.disjuncts[0]
        from repro.queries.ucq import UnionOfConjunctiveQueries

        single = UnionOfConjunctiveQueries([disjunct])
        assert is_ucq_contained_in(single, union, SCHEMA)
        assert single.evaluate(instance) <= union.evaluate(instance)


class TestFoldingInvariant:
    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_fold_commutes(self, query, instance):
        folding = Folding.of(SCHEMA)
        assert (folding.fold_query(query).evaluate(
            folding.fold_instance(instance)) == query.evaluate(instance))

    @settings(max_examples=60, deadline=None)
    @given(instance=instances())
    def test_fold_round_trip(self, instance):
        folding = Folding.of(SCHEMA)
        assert folding.unfold_instance(
            folding.fold_instance(instance)) == instance
