"""Semi-naive vs naive datalog evaluation: same fixpoint, fewer
derivations."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.queries.atoms import neq, rel
from repro.queries.datalog import DatalogQuery, rule
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("E", ["src", "dst"])])


def tc(strategy: str) -> DatalogQuery:
    x, y, z = var("x"), var("y"), var("z")
    return DatalogQuery([
        rule(rel("T", x, y), rel("E", x, y)),
        rule(rel("T", x, z), rel("E", x, y), rel("T", y, z)),
    ], goal="T", strategy=strategy)


def same_generation(strategy: str) -> DatalogQuery:
    """Two IDB atoms in one body — exercises multi-delta rewriting."""
    x, y, u, v = var("x"), var("y"), var("u"), var("v")
    return DatalogQuery([
        rule(rel("SG", x, x), rel("E", x, y)),
        rule(rel("SG", x, x), rel("E", y, x)),
        rule(rel("SG", x, y),
             rel("E", u, x), rel("SG", u, v), rel("E", v, y)),
    ], goal="SG", strategy=strategy)


_edges = st.frozensets(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10)


class TestEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(edges=_edges)
    def test_transitive_closure_agrees(self, edges):
        instance = Instance(SCHEMA, {"E": edges})
        assert tc("seminaive").evaluate(instance) == \
            tc("naive").evaluate(instance)

    @settings(max_examples=30, deadline=None)
    @given(edges=_edges)
    def test_same_generation_agrees(self, edges):
        instance = Instance(SCHEMA, {"E": edges})
        assert same_generation("seminaive").evaluate(instance) == \
            same_generation("naive").evaluate(instance)

    def test_mutual_recursion_agrees(self):
        instance = Instance(SCHEMA, {"E": {(1, 2), (2, 3), (3, 4),
                                           (4, 1)}})
        x, y = var("x"), var("y")

        def program(strategy):
            return DatalogQuery([
                rule(rel("Even", 1)),
                rule(rel("Odd", y), rel("Even", x), rel("E", x, y)),
                rule(rel("Even", y), rel("Odd", x), rel("E", x, y)),
            ], goal="Even", strategy=strategy)

        assert program("seminaive").evaluate(instance) == \
            program("naive").evaluate(instance)

    def test_inequality_bodies_agree(self):
        instance = Instance(SCHEMA, {"E": {(1, 1), (1, 2), (2, 3)}})
        x, y, z = var("x"), var("y"), var("z")

        def program(strategy):
            return DatalogQuery([
                rule(rel("P", x, y), rel("E", x, y), neq(x, y)),
                rule(rel("P", x, z), rel("P", x, y), rel("E", y, z),
                     neq(x, z)),
            ], goal="P", strategy=strategy)

        assert program("seminaive").evaluate(instance) == \
            program("naive").evaluate(instance)

    def test_facts_only_program(self):
        instance = Instance.empty(SCHEMA)
        for strategy in ("seminaive", "naive"):
            q = DatalogQuery([rule(rel("F", 42))], goal="F",
                             strategy=strategy)
            assert q.evaluate(instance) == frozenset({(42,)})


class TestStrategyHandling:
    def test_default_is_seminaive(self):
        assert tc("seminaive").strategy == "seminaive"
        q = DatalogQuery([], goal="E")
        assert q.strategy == "seminaive"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(QueryError):
            DatalogQuery([], goal="E", strategy="magic")

    def test_long_chain(self):
        # A 30-edge chain: semi-naive must reach the full closure.
        edges = {(i, i + 1) for i in range(30)}
        instance = Instance(SCHEMA, {"E": edges})
        closure = tc("seminaive").evaluate(instance)
        assert len(closure) == 30 * 31 // 2
