"""Property-based tests for cross-cutting invariants (hypothesis).

These target the lemmas the deciders silently rely on:

* instance algebra is a lattice (union laws, containment order);
* CQ/UCQ evaluation is monotone under instance extension;
* for a valid valuation μ, ``μ(u_Q) ∈ Q(μ(T_Q))`` — the tableau lemma
  behind conditions C1–C4;
* INCOMPLETE certificates are always actionable (consistent + answer-
  changing);
* folding (Lemma 3.2) commutes with evaluation on random instances.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp, _extend_unvalidated
from repro.core.results import RCDPStatus
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.constraints.containment import satisfies_all
from repro.queries.atoms import neq, rel
from repro.queries.cq import cq
from repro.queries.folding import Folding
from repro.queries.tableau import Tableau
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([
    RelationSchema("E", ["a", "b"]),
    RelationSchema("L", ["n", "t"]),
])

_edges = st.frozensets(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=6)
_labels = st.frozensets(
    st.tuples(st.integers(0, 3), st.sampled_from("xy")), max_size=4)


def _instance(edges, labels):
    return Instance(SCHEMA, {"E": edges, "L": labels})


class TestInstanceLattice:
    @settings(max_examples=50, deadline=None)
    @given(a=_edges, b=_edges)
    def test_union_commutative(self, a, b):
        left = _instance(a, frozenset()).union(_instance(b, frozenset()))
        right = _instance(b, frozenset()).union(_instance(a, frozenset()))
        assert left == right

    @settings(max_examples=50, deadline=None)
    @given(a=_edges, b=_edges, c=_edges)
    def test_union_associative(self, a, b, c)\
            :
        ia, ib, ic = (_instance(x, frozenset()) for x in (a, b, c))
        assert ia.union(ib).union(ic) == ia.union(ib.union(ic))

    @settings(max_examples=50, deadline=None)
    @given(a=_edges)
    def test_union_idempotent(self, a):
        inst = _instance(a, frozenset())
        assert inst.union(inst) == inst

    @settings(max_examples=50, deadline=None)
    @given(a=_edges, b=_edges)
    def test_union_is_upper_bound(self, a, b):
        ia, ib = _instance(a, frozenset()), _instance(b, frozenset())
        u = ia.union(ib)
        assert u.contains(ia) and u.contains(ib)


QUERIES = [
    cq([var("x"), var("y")], [rel("E", var("x"), var("y"))]),
    cq([var("x")], [rel("E", var("x"), var("y")),
                    rel("E", var("y"), var("z"))]),
    cq([var("x")], [rel("E", var("x"), var("y")),
                    rel("L", var("y"), "x")]),
    ucq([cq([var("x")], [rel("L", var("x"), "x")]),
         cq([var("x")], [rel("L", var("x"), "y")])]),
]


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(e1=_edges, e2=_edges, l1=_labels, l2=_labels,
           index=st.integers(0, len(QUERIES) - 1))
    def test_evaluation_monotone(self, e1, e2, l1, l2, index):
        small = _instance(e1, l1)
        big = _instance(e1 | e2, l1 | l2)
        q = QUERIES[index]
        assert q.evaluate(small) <= q.evaluate(big)


class TestTableauLemma:
    """μ valid ⇒ μ(u_Q) ∈ Q(μ(T_Q)) — the backbone of C1–C4."""

    @settings(max_examples=40, deadline=None)
    @given(e=_edges, l=_labels, index=st.integers(0, len(QUERIES) - 2))
    def test_summary_in_answer_of_instantiated_tableau(self, e, l, index):
        q = QUERIES[index]  # CQ entries only
        instance = _instance(e, l)
        tableau = Tableau(q, SCHEMA)
        adom = ActiveDomain.build(instances=(instance,), queries=(q,),
                                  tableaux=(tableau,))
        count = 0
        for valuation in iter_valid_valuations(tableau, adom):
            frozen = _extend_unvalidated(
                Instance.empty(SCHEMA), tableau.instantiate(valuation))
            assert tableau.summary_under(valuation) in q.evaluate(frozen)
            count += 1
            if count >= 25:  # keep each example cheap
                break

    @settings(max_examples=30, deadline=None)
    @given(e=_edges)
    def test_inequality_valuations_are_filtered(self, e):
        q = cq([var("x"), var("y")],
               [rel("E", var("x"), var("y")), neq(var("x"), var("y"))])
        instance = _instance(e, frozenset())
        tableau = Tableau(q, SCHEMA)
        adom = ActiveDomain.build(instances=(instance,), queries=(q,),
                                  tableaux=(tableau,))
        for valuation in iter_valid_valuations(tableau, adom):
            assert valuation[var("x")] != valuation[var("y")]


MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["b"])])
DM = Instance(MASTER_SCHEMA, {"M": {(0,), (1,)}})
IND = InclusionDependency("E", ["b"], "M", ["b"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)


class TestCertificateActionability:
    @settings(max_examples=50, deadline=None)
    @given(e=_edges)
    def test_incomplete_certificates_are_actionable(self, e):
        db = _instance(e, frozenset())
        if not satisfies_all(db, DM, [IND]):
            return
        q = cq([var("y")], [rel("E", 0, var("y"))])
        result = decide_rcdp(q, db, DM, [IND])
        if result.status is RCDPStatus.INCOMPLETE:
            cert = result.certificate
            extended = _extend_unvalidated(
                db, list(cert.extension_facts))
            assert satisfies_all(extended, DM, [IND])
            assert cert.new_answer in q.evaluate(extended)
            assert cert.new_answer not in q.evaluate(db)


class TestFoldingProperty:
    @settings(max_examples=50, deadline=None)
    @given(e=_edges, l=_labels, index=st.integers(0, len(QUERIES) - 2))
    def test_fold_commutes_with_evaluation(self, e, l, index):
        folding = Folding.of(SCHEMA)
        q = QUERIES[index]
        instance = _instance(e, l)
        assert (folding.fold_query(q).evaluate(
            folding.fold_instance(instance)) == q.evaluate(instance))


class TestParserRenderRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(e=_edges, l=_labels, index=st.integers(0, len(QUERIES) - 1))
    def test_json_round_trip_preserves_semantics(self, e, l, index):
        from repro.io.json_io import query_from_dict, query_to_dict

        q = QUERIES[index]
        restored = query_from_dict(query_to_dict(q))
        instance = _instance(e, l)
        assert restored.evaluate(instance) == q.evaluate(instance)
