"""Tests for the ∀∃ / ∃∀∃ QBF evaluators."""

import itertools
import random

import pytest

from repro.errors import ReproError
from repro.solvers.qbf import (ExistsForallExists3SAT, ForallExists3SAT,
                               random_exists_forall_exists_3sat,
                               random_forall_exists_3sat)
from repro.solvers.sat import CNF, evaluate_cnf


def brute_forall_exists(formula: ForallExists3SAT) -> bool:
    for x in itertools.product((False, True), repeat=len(formula.universal)):
        x_map = dict(zip(formula.universal, x))
        if not any(
                evaluate_cnf(formula.matrix,
                             {**x_map,
                              **dict(zip(formula.existential, y))})
                for y in itertools.product(
                    (False, True), repeat=len(formula.existential))):
            return False
    return True


def brute_exists_forall_exists(formula: ExistsForallExists3SAT) -> bool:
    for x in itertools.product((False, True),
                               repeat=len(formula.outer_existential)):
        x_map = dict(zip(formula.outer_existential, x))
        # check ∀y ∃z with x fixed, fully by brute force
        holds = True
        for y in itertools.product((False, True),
                                   repeat=len(formula.universal)):
            y_map = dict(zip(formula.universal, y))
            if not any(
                    evaluate_cnf(formula.matrix,
                                 {**x_map, **y_map,
                                  **dict(zip(formula.inner_existential, z))})
                    for z in itertools.product(
                        (False, True),
                        repeat=len(formula.inner_existential))):
                holds = False
                break
        if holds:
            return True
    return False


class TestForallExists:
    def test_true_instance(self):
        # ∀x ∃y. (x ∨ y) ∧ (¬x ∨ ¬y): y = ¬x always works
        formula = ForallExists3SAT([1], [2], CNF([(1, 2), (-1, -2)]))
        assert formula.is_true()

    def test_false_instance(self):
        # ∀x ∃y. x : fails for x = false
        formula = ForallExists3SAT([1], [2], CNF([(1,), (2, -2)]))
        assert not formula.is_true()

    def test_blocks_must_partition(self):
        with pytest.raises(ReproError):
            ForallExists3SAT([1], [1], CNF([(1,)]))

    def test_agrees_with_brute_force_on_random_instances(self):
        rng = random.Random(7)
        for _ in range(30):
            formula = random_forall_exists_3sat(2, 3, rng.randint(1, 8), rng)
            assert formula.is_true() == brute_forall_exists(formula)


class TestExistsForallExists:
    def test_true_instance(self):
        # ∃x ∀y ∃z. (x) ∧ (z ∨ ¬y) ∧ (z ∨ y): pick x=1, z=1
        formula = ExistsForallExists3SAT(
            [1], [2], [3], CNF([(1,), (3, -2), (3, 2)]))
        assert formula.is_true()

    def test_false_instance(self):
        # ∃x ∀y ∃z. (y): fails for y = false whatever x, z
        formula = ExistsForallExists3SAT(
            [1], [2], [3], CNF([(2,), (1, -1), (3, -3)]))
        assert not formula.is_true()

    def test_agrees_with_brute_force_on_random_instances(self):
        rng = random.Random(11)
        for _ in range(20):
            formula = random_exists_forall_exists_3sat(
                2, 2, 2, rng.randint(1, 8), rng)
            assert formula.is_true() == brute_exists_forall_exists(formula)
