"""Tests for the tableau representation (T_Q, u_Q)."""

import pytest

from repro.queries.atoms import eq, neq, rel
from repro.queries.cq import cq
from repro.queries.tableau import Tableau
from repro.queries.terms import Const, Var, var
from repro.relational.domain import BOOLEAN, FiniteDomain
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)


@pytest.fixture
def schema():
    return DatabaseSchema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("F", [Attribute("u", BOOLEAN), Attribute("v")]),
    ])


class TestEqualityFolding:
    def test_variable_merge(self, schema):
        q = cq([var("x")],
               [rel("R", var("x"), var("y")), eq(var("x"), var("y"))])
        t = Tableau(q, schema)
        (row,) = t.rows
        assert row.terms[0] == row.terms[1]
        assert t.satisfiable

    def test_constant_pinning(self, schema):
        q = cq([var("x")], [rel("R", var("x"), var("y")),
                            eq(var("y"), "c0")])
        t = Tableau(q, schema)
        (row,) = t.rows
        assert row.terms[1] == Const("c0")

    def test_pin_propagates_through_merge(self, schema):
        q = cq([var("x")],
               [rel("R", var("x"), var("y")), eq(var("x"), var("y")),
                eq(var("y"), 7)])
        t = Tableau(q, schema)
        assert t.summary == (Const(7),)

    def test_conflicting_pins_unsatisfiable(self, schema):
        q = cq([var("x")], [rel("R", var("x"), var("x")),
                            eq(var("x"), 1), eq(var("x"), 2)])
        assert not Tableau(q, schema).satisfiable

    def test_constant_equality_checked(self, schema):
        sat = cq([], [rel("R", 1, 2), eq(Const(1), Const(1))])
        unsat = cq([], [rel("R", 1, 2), eq(Const(1), Const(2))])
        assert Tableau(sat, schema).satisfiable
        assert not Tableau(unsat, schema).satisfiable


class TestInequalities:
    def test_trivially_true_dropped(self, schema):
        q = cq([], [rel("R", var("x"), var("y")), neq(Const(1), Const(2))])
        assert Tableau(q, schema).inequalities == ()

    def test_ground_false_unsatisfiable(self, schema):
        q = cq([], [rel("R", var("x"), var("y")), neq(Const(1), Const(1))])
        assert not Tableau(q, schema).satisfiable

    def test_x_neq_x_after_folding_unsatisfiable(self, schema):
        q = cq([], [rel("R", var("x"), var("y")), eq(var("x"), var("y")),
                    neq(var("x"), var("y"))])
        assert not Tableau(q, schema).satisfiable

    def test_respects_inequalities(self, schema):
        q = cq([var("x")], [rel("R", var("x"), var("y")),
                            neq(var("x"), var("y"))])
        t = Tableau(q, schema)
        assert t.respects_inequalities({Var("x"): 1, Var("y"): 2})
        assert not t.respects_inequalities({Var("x"): 1, Var("y"): 1})

    def test_var_const_inequality(self, schema):
        q = cq([var("x")], [rel("R", var("x"), var("y")),
                            neq(var("x"), "bad")])
        t = Tableau(q, schema)
        assert not t.respects_inequalities({Var("x"): "bad", Var("y"): 1})
        assert t.respects_inequalities({Var("x"): "ok", Var("y"): 1})


class TestDomains:
    def test_infinite_by_default(self, schema):
        q = cq([var("x")], [rel("R", var("x"), var("y"))])
        t = Tableau(q, schema)
        assert not t.has_finite_domain(Var("x"))

    def test_finite_column_gives_finite_domain(self, schema):
        q = cq([var("u")], [rel("F", var("u"), var("v"))])
        t = Tableau(q, schema)
        assert t.has_finite_domain(Var("u"))
        assert not t.has_finite_domain(Var("v"))

    def test_finite_wins_over_infinite(self, schema):
        # u occurs both in the boolean column of F and an infinite column
        # of R: the effective domain is finite.
        q = cq([var("u")], [rel("F", var("u"), var("v")),
                            rel("R", var("u"), var("w"))])
        t = Tableau(q, schema)
        assert t.has_finite_domain(Var("u"))

    def test_intersection_of_finite_domains(self):
        schema = DatabaseSchema([
            RelationSchema("A", [Attribute("x", FiniteDomain({1, 2, 3}))]),
            RelationSchema("B", [Attribute("x", FiniteDomain({2, 3, 4}))]),
        ])
        q = cq([var("x")], [rel("A", var("x")), rel("B", var("x"))])
        t = Tableau(q, schema)
        domain = t.domain_of(Var("x"))
        assert set(domain.values) == {2, 3}


class TestStructure:
    def test_summary_and_instantiation(self, schema):
        q = cq([var("x"), Const("k")],
               [rel("R", var("x"), var("y"))])
        t = Tableau(q, schema)
        mu = {Var("x"): 1, Var("y"): 2}
        assert t.summary_under(mu) == (1, "k")
        assert t.instantiate(mu) == [("R", (1, 2))]

    def test_ground_rows(self, schema):
        q = cq([], [rel("R", 1, 2), rel("R", var("x"), var("y"))])
        t = Tableau(q, schema)
        ground = t.ground_rows()
        assert len(ground) == 1
        assert ground[0].instantiate({}) == (1, 2)

    def test_ordered_variables_deterministic(self, schema):
        q = cq([], [rel("R", var("zz"), var("aa"))])
        t = Tableau(q, schema)
        assert t.ordered_variables() == (Var("aa"), Var("zz"))

    def test_constants_collected(self, schema):
        q = cq([Const(9)], [rel("R", var("x"), 5), neq(var("x"), 7)])
        t = Tableau(q, schema)
        assert t.constants() == {9, 5, 7}

    def test_columns_of(self, schema):
        q = cq([], [rel("R", var("x"), var("x"))])
        t = Tableau(q, schema)
        assert set(t.columns_of(Var("x"))) == {("R", 0), ("R", 1)}
