"""Exhaustion, cancellation, and resume paths of the governed deciders.

Every decider is interrupted mid-search via deterministic fault
injection, the partial result is checked for well-formedness (status,
statistics, reason, checkpoint), and the checkpoint is resumed under a
fresh (or absent) budget to reach the same verdict as an uninterrupted
run — the graceful-degradation contract of the execution governor.
"""

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.ind import InclusionDependency
from repro.core.bounded import brute_force_rcdp, brute_force_rcqp
from repro.core.rcdp import (decide_rcdp, enumerate_missing_answers,
                             missing_answers_report)
from repro.core.rcqp import decide_rcqp, decide_rcqp_with_inds
from repro.core.results import (MissingAnswersReport, RCDPStatus,
                                RCQPStatus)
from repro.core.witness import make_complete
from repro.errors import (ExecutionInterrupted, ReproError,
                          SearchBudgetExceededError)
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.runtime import (CancellationToken, Deadline, ExecutionGovernor,
                           FaultInjector, SearchCheckpoint)

SCHEMA = DatabaseSchema([
    RelationSchema("CustD", ["cid", "name", "ac", "phn"]),
    RelationSchema("Supt", ["eid", "dept", "cid"]),
])
MASTER_SCHEMA = DatabaseSchema([
    RelationSchema("DCust", ["cid", "name", "ac", "phn"]),
])
DM = Instance(MASTER_SCHEMA, {
    "DCust": {("c1", "ann", "908", "555-0001"),
              ("c2", "bob", "908", "555-0002"),
              ("c3", "cecilia", "212", "555-0003")},
})


def supt_cid_ind():
    return InclusionDependency(
        "Supt", ["cid"], "DCust", ["cid"],
        name="supt⊆dcust").to_containment_constraint(SCHEMA, MASTER_SCHEMA)


def q2():
    return cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))],
              name="Q2")


def incomplete_db():
    return Instance(SCHEMA, {"Supt": {("e0", "sales", "c1")}})


def injected(after, **kwargs):
    """A governor that trips after *after* admitted ticks."""
    return ExecutionGovernor(
        faults=FaultInjector(exhaust_after=after, **kwargs))


class TestRCDPDegradation:
    def test_partial_mode_returns_exhausted_result(self):
        result = decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                             governor=injected(1), on_exhausted="partial")
        assert result.status is RCDPStatus.EXHAUSTED
        assert result.is_exhausted
        assert result.interrupted == "budget"
        assert result.checkpoint is not None
        assert result.checkpoint.procedure == "rcdp"
        assert result.statistics.valuations_examined == 1

    def test_error_mode_raises_with_progress_attached(self):
        with pytest.raises(SearchBudgetExceededError) as excinfo:
            decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                        governor=injected(1), on_exhausted="error")
        error = excinfo.value
        assert error.reason == "budget"
        assert error.statistics.valuations_examined == 1
        assert error.partial_result.status is RCDPStatus.EXHAUSTED
        assert error.checkpoint.procedure == "rcdp"

    def test_resume_reaches_uninterrupted_verdict(self):
        unbounded = decide_rcdp(q2(), incomplete_db(), DM,
                                [supt_cid_ind()])
        partial = decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                              governor=injected(1), on_exhausted="partial")
        resumed = decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                              resume_from=partial.checkpoint)
        assert resumed.status is unbounded.status
        assert resumed.certificate is not None
        # cumulative statistics cover both legs of the search
        assert resumed.statistics.valuations_examined >= \
            unbounded.statistics.valuations_examined

    def test_resume_is_not_recharged(self):
        partial = decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                              governor=injected(2), on_exhausted="partial")
        # The resumed leg gets a budget smaller than the work already
        # done; skipping the examined prefix must not consume it.
        resumed = decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                              budget=1000, resume_from=partial.checkpoint)
        assert resumed.status is not RCDPStatus.EXHAUSTED

    def test_deadline_interrupt_reports_deadline(self):
        governor = ExecutionGovernor(deadline=Deadline.after(0))
        result = decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                             governor=governor, on_exhausted="partial")
        assert result.status is RCDPStatus.EXHAUSTED
        assert result.interrupted == "deadline"

    def test_cancellation_interrupt_reports_cancelled(self):
        token = CancellationToken()
        token.cancel()
        governor = ExecutionGovernor(cancellation=token)
        result = decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                             governor=governor, on_exhausted="partial")
        assert result.interrupted == "cancelled"

    def test_checkpoint_from_other_procedure_rejected(self):
        foreign = SearchCheckpoint(procedure="rcqp", cursor=(0, 0))
        with pytest.raises(ReproError):
            decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                        resume_from=foreign)

    def test_budget_and_governor_together_rejected(self):
        with pytest.raises(ReproError):
            decide_rcdp(q2(), incomplete_db(), DM, [supt_cid_ind()],
                        budget=5, governor=ExecutionGovernor())


class TestMissingAnswersGovernance:
    def test_enumerate_honors_budget_kwarg(self):
        with pytest.raises(SearchBudgetExceededError):
            enumerate_missing_answers(q2(), incomplete_db(), DM,
                                      [supt_cid_ind()], budget=1)

    def test_report_degrades_to_lower_bound(self):
        full = missing_answers_report(q2(), incomplete_db(), DM,
                                      [supt_cid_ind()])
        assert full.exhaustive
        partial = missing_answers_report(
            q2(), incomplete_db(), DM, [supt_cid_ind()],
            governor=injected(2))
        assert isinstance(partial, MissingAnswersReport)
        assert not partial.exhaustive
        assert partial.interrupted == "budget"
        assert partial.checkpoint.procedure == "missing"
        assert partial.answers <= full.answers

    def test_resumed_report_recovers_the_full_answer_set(self):
        full = missing_answers_report(q2(), incomplete_db(), DM,
                                      [supt_cid_ind()])
        partial = missing_answers_report(
            q2(), incomplete_db(), DM, [supt_cid_ind()],
            governor=injected(2))
        resumed = missing_answers_report(
            q2(), incomplete_db(), DM, [supt_cid_ind()],
            resume_from=partial.checkpoint)
        assert resumed.exhaustive
        assert resumed.answers == full.answers

    def test_limit_is_distinct_from_interruption(self):
        limited = missing_answers_report(q2(), incomplete_db(), DM,
                                         [supt_cid_ind()], limit=1)
        assert not limited.exhaustive
        assert limited.interrupted is None
        assert len(limited.answers) == 1


class TestCompletionGovernance:
    def test_interrupted_completion_keeps_partial_guidance(self):
        outcome = make_complete(q2(), incomplete_db(), DM,
                                [supt_cid_ind()], governor=injected(1))
        assert not outcome.complete
        assert outcome.interrupted == "budget"

    def test_error_mode_propagates(self):
        with pytest.raises(ExecutionInterrupted):
            make_complete(q2(), incomplete_db(), DM, [supt_cid_ind()],
                          governor=injected(1), on_exhausted="error")

    def test_ungoverned_completion_unaffected(self):
        outcome = make_complete(q2(), incomplete_db(), DM,
                                [supt_cid_ind()])
        assert outcome.complete
        assert outcome.interrupted is None


RCQP_SCHEMA = DatabaseSchema([RelationSchema("Supt",
                                             ["eid", "dept", "cid"])])
RCQP_MASTER = DatabaseSchema([RelationSchema("DCust", ["cid"])])
RCQP_DM = Instance(RCQP_MASTER, {"DCust": {("c1",), ("c2",)}})


def rcqp_cid_ind():
    return InclusionDependency(
        "Supt", ["cid"], "DCust", ["cid"]).to_containment_constraint(
        RCQP_SCHEMA, RCQP_MASTER)


def q4():
    return cq([var("e"), var("d"), var("c")],
              [rel("Supt", var("e"), var("d"), var("c")),
               eq(var("e"), "e0"), eq(var("d"), "d0")], name="Q4")


def fd_constraints():
    return FunctionalDependency(
        "Supt", ["eid"], ["dept"]).to_containment_constraints(RCQP_SCHEMA)


class TestRCQPGeneralDegradation:
    def test_exhausted_result_carries_checkpoint(self):
        result = decide_rcqp(q4(), Instance(RCQP_MASTER), fd_constraints(),
                             RCQP_SCHEMA, governor=injected(3),
                             on_exhausted="partial")
        assert result.status is RCQPStatus.EXHAUSTED
        assert result.interrupted == "budget"
        assert result.checkpoint.procedure == "rcqp"

    def test_error_mode_attaches_partial_result(self):
        with pytest.raises(ExecutionInterrupted) as excinfo:
            decide_rcqp(q4(), Instance(RCQP_MASTER), fd_constraints(),
                        RCQP_SCHEMA, governor=injected(3))
        assert excinfo.value.partial_result.status is RCQPStatus.EXHAUSTED
        assert excinfo.value.checkpoint.procedure == "rcqp"

    @pytest.mark.parametrize("after", [1, 5, 25, 100])
    def test_resume_matches_unbounded_verdict(self, after):
        unbounded = decide_rcqp(q4(), Instance(RCQP_MASTER),
                                fd_constraints(), RCQP_SCHEMA)
        partial = decide_rcqp(q4(), Instance(RCQP_MASTER),
                              fd_constraints(), RCQP_SCHEMA,
                              governor=injected(after),
                              on_exhausted="partial")
        if partial.status is not RCQPStatus.EXHAUSTED:
            assert partial.status is unbounded.status
            return
        resumed = decide_rcqp(q4(), Instance(RCQP_MASTER),
                              fd_constraints(), RCQP_SCHEMA,
                              resume_from=partial.checkpoint)
        assert resumed.status is unbounded.status

    def test_legacy_budget_kwarg_caps_total_work(self):
        with pytest.raises(SearchBudgetExceededError):
            decide_rcqp(q4(), Instance(RCQP_MASTER), fd_constraints(),
                        RCQP_SCHEMA, budget=2)


class TestRCQPIndDegradation:
    def _query(self):
        return cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])

    def test_exhausted_result_carries_checkpoint(self):
        result = decide_rcqp_with_inds(
            self._query(), RCQP_DM, [rcqp_cid_ind()], RCQP_SCHEMA,
            governor=injected(1), on_exhausted="partial")
        assert result.status is RCQPStatus.EXHAUSTED
        assert result.checkpoint.procedure == "rcqp-inds"

    @pytest.mark.parametrize("after", [1, 3, 10, 50])
    def test_resume_matches_unbounded_verdict(self, after):
        unbounded = decide_rcqp_with_inds(
            self._query(), RCQP_DM, [rcqp_cid_ind()], RCQP_SCHEMA)
        partial = decide_rcqp_with_inds(
            self._query(), RCQP_DM, [rcqp_cid_ind()], RCQP_SCHEMA,
            governor=injected(after), on_exhausted="partial")
        if partial.status is not RCQPStatus.EXHAUSTED:
            assert partial.status is unbounded.status
            return
        resumed = decide_rcqp_with_inds(
            self._query(), RCQP_DM, [rcqp_cid_ind()], RCQP_SCHEMA,
            resume_from=partial.checkpoint)
        assert resumed.status is unbounded.status

    def test_dispatch_passes_governor_through(self):
        result = decide_rcqp(self._query(), RCQP_DM, [rcqp_cid_ind()],
                             RCQP_SCHEMA, governor=injected(1),
                             on_exhausted="partial")
        assert result.status is RCQPStatus.EXHAUSTED
        assert result.checkpoint.procedure == "rcqp-inds"


class TestBruteForceDegradation:
    def test_brute_rcdp_resume_matches(self):
        unbounded = brute_force_rcdp(
            q2(), incomplete_db(), DM, [supt_cid_ind()], max_extra_facts=1,
            relations=["Supt"])
        partial = brute_force_rcdp(
            q2(), incomplete_db(), DM, [supt_cid_ind()], max_extra_facts=1,
            relations=["Supt"], governor=injected(2),
            on_exhausted="partial")
        assert partial.status is RCDPStatus.EXHAUSTED
        assert partial.checkpoint.procedure == "brute-rcdp"
        resumed = brute_force_rcdp(
            q2(), incomplete_db(), DM, [supt_cid_ind()], max_extra_facts=1,
            relations=["Supt"], resume_from=partial.checkpoint)
        assert resumed.status is unbounded.status

    def test_brute_rcqp_exhausts_and_resumes(self):
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        kwargs = dict(max_database_size=1,
                      values=["e0", "d0", "c1"])
        unbounded = brute_force_rcqp(q, RCQP_DM, [rcqp_cid_ind()],
                                     RCQP_SCHEMA, **kwargs)
        partial = brute_force_rcqp(q, RCQP_DM, [rcqp_cid_ind()],
                                   RCQP_SCHEMA, governor=injected(1),
                                   on_exhausted="partial", **kwargs)
        assert partial.status is RCQPStatus.EXHAUSTED
        assert partial.checkpoint.procedure == "brute-rcqp"
        resumed = brute_force_rcqp(q, RCQP_DM, [rcqp_cid_ind()],
                                   RCQP_SCHEMA,
                                   resume_from=partial.checkpoint,
                                   **kwargs)
        assert resumed.status is unbounded.status


class TestAuditGovernance:
    def test_inconclusive_verdict_on_exhaustion(self):
        from repro.mdm.audit import AuditVerdict, CompletenessAudit

        audit = CompletenessAudit(master=DM, constraints=[supt_cid_ind()],
                                  schema=SCHEMA)
        report = audit.assess(q2(), incomplete_db(), governor=injected(1))
        assert report.verdict is AuditVerdict.INCONCLUSIVE
        assert report.rcdp.is_exhausted
        assert "interrupted" in report.summary()

    def test_ungoverned_audit_unchanged(self):
        from repro.mdm.audit import AuditVerdict, CompletenessAudit

        audit = CompletenessAudit(master=DM, constraints=[supt_cid_ind()],
                                  schema=SCHEMA)
        report = audit.assess(q2(), incomplete_db())
        assert report.verdict is not AuditVerdict.INCONCLUSIVE
