"""Differential tests for the pluggable instance storage backends.

The :mod:`repro.relational.backends` contract is that the backend is
*invisible* in every result: for any query, any extension Δ, any
constraint, and any decider, the python (frozenset-of-tuples), columnar
(set-at-a-time), and sqlite (SQL pushdown) backends return the same
answers, the same verdicts, the same witnesses, and the same
search-level statistics.  The backtracking ``evaluate_naive`` is the
shared oracle; these tests pin every backend to it with
Hypothesis-random queries and instances, then cross-check the deciders
end to end at worker counts 1 and 2.

Engine-internal counters (cache hits, delta vs full evaluations) are
deliberately *not* compared across backends — the backends differ in
how they evaluate, and only search-level statistics (valuations
examined, constraint checks) are part of the equivalence contract.
"""

import pickle
import random

import pytest
from hypothesis import assume, given, settings

from repro.constraints.containment import (Projection, satisfies_all,
                                           satisfies_all_extension)
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.core.results import RCDPStatus
from repro.engine import EvaluationContext
from repro.errors import ReproError
from repro.mdm.generators import GeneratorConfig, generate_scenario
from repro.relational.backends import (BACKEND_NAMES, StorageBackend,
                                       create_storage,
                                       resolve_backend_name)
from repro.relational.instance import Instance, extend_unvalidated
from repro.relational.schema import DatabaseSchema, RelationSchema

from tests.strategies import (SCHEMA, conjunctive_queries, extension_facts,
                              instances, union_queries)

MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["c"])])
DM = Instance(MASTER_SCHEMA, {"M": {(0,), (1,)}})

IND = InclusionDependency(
    "R", ["b"], "M", ["c"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)

NON_PYTHON = tuple(name for name in BACKEND_NAMES if name != "python")


# ---------------------------------------------------------------------------
# Backend resolution and attachment
# ---------------------------------------------------------------------------


class TestResolution:
    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sqlite")
        assert resolve_backend_name("columnar") == "columnar"

    def test_env_var_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "columnar")
        assert resolve_backend_name(None) == "columnar"
        assert EvaluationContext().backend == "columnar"

    def test_falls_back_to_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name(None) == "python"

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            resolve_backend_name("duckdb")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "duckdb")
        with pytest.raises(ReproError):
            resolve_backend_name(None)

    def test_storage_cached_per_kind(self):
        inst = Instance(SCHEMA, {"R": {(1, 2)}})
        for kind in BACKEND_NAMES:
            storage = inst.storage(kind)
            assert isinstance(storage, StorageBackend)
            assert storage.kind == kind
            assert inst.storage(kind) is storage

    def test_attach_preserves_equality_hash_repr(self):
        plain = Instance(SCHEMA, {"R": {(1, 2)}, "T": {(0, 1, 2)}})
        attached = Instance(SCHEMA, {"R": {(1, 2)}, "T": {(0, 1, 2)}})
        before = repr(attached)
        for kind in BACKEND_NAMES:
            attached.storage(kind)
        assert attached == plain
        assert hash(attached) == hash(plain)
        assert repr(attached) == before

    def test_instance_with_sqlite_storage_pickles(self):
        inst = Instance(SCHEMA, {"R": {(1, 2)}})
        inst.storage("sqlite")  # sqlite3.Connection is unpicklable
        clone = pickle.loads(pickle.dumps(inst))
        assert clone == inst
        # The clone re-attaches its own storages on demand.
        assert clone.storage("sqlite").plan_rows is not None


# ---------------------------------------------------------------------------
# Query evaluation conformance: every backend ≡ evaluate_naive
# ---------------------------------------------------------------------------


class TestEvaluationConformance:
    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), db=instances())
    def test_cq_matches_naive_oracle(self, query, db):
        expected = query.evaluate_naive(db)
        for backend in BACKEND_NAMES:
            context = EvaluationContext(backend=backend)
            assert context.evaluate(query, db) == expected, backend

    @settings(max_examples=40, deadline=None)
    @given(query=union_queries(), db=instances())
    def test_ucq_matches_naive_oracle(self, query, db):
        expected = query.evaluate_naive(db)
        for backend in BACKEND_NAMES:
            context = EvaluationContext(backend=backend)
            assert context.evaluate(query, db) == expected, backend

    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), db=instances(),
           delta=extension_facts())
    def test_extension_matches_materialized_union(self, query, db, delta):
        expected = query.evaluate_naive(extend_unvalidated(db, delta))
        for backend in BACKEND_NAMES:
            context = EvaluationContext(backend=backend)
            context.evaluate(query, db)  # warm the base answer
            assert context.evaluate_extension(query, db, delta) \
                == expected, backend


# ---------------------------------------------------------------------------
# Constraint checks: plan_violates ≡ the materialized subset test
# ---------------------------------------------------------------------------


class TestConstraintConformance:
    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), db=instances(),
           delta=extension_facts())
    def test_extension_check_matches_contextless(self, query, db, delta):
        """Both projection shapes per draw: the R[b] ⊆ M[c] IND (the
        allowed-set path) and q ⊆ ∅ (the existence-probe pushdown)."""
        from repro.constraints.containment import ContainmentConstraint

        empty_target = ContainmentConstraint(
            query, Projection.empty(), name="q⊆∅")
        for constraint in (IND, empty_target):
            expected = constraint.is_satisfied_extension(
                db, delta, DM, context=None)
            for backend in BACKEND_NAMES:
                context = EvaluationContext(backend=backend)
                assert constraint.is_satisfied_extension(
                    db, delta, DM, context=context) == expected, \
                    (backend, constraint.name)

    @settings(max_examples=30, deadline=None)
    @given(db=instances(), delta=extension_facts())
    def test_satisfies_all_extension_across_backends(self, db, delta):
        expected = satisfies_all_extension(db, delta, DM, [IND],
                                           context=None)
        for backend in BACKEND_NAMES:
            context = EvaluationContext(backend=backend)
            assert satisfies_all_extension(
                db, delta, DM, [IND], context=context) == expected, backend


# ---------------------------------------------------------------------------
# Decider differential: backend × worker count is invisible end to end
# ---------------------------------------------------------------------------


def _crm_problem(num_domestic: int = 3):
    config = GeneratorConfig(
        num_domestic=num_domestic, num_international=0, num_employees=2,
        support_probability=1.0, missing_support_fraction=0.0)
    scenario = generate_scenario(config, random.Random(7))
    spare = f"c{num_domestic - 1}"
    database = scenario.database(
        missing_support=[(f"e{i}", spare) for i in range(2)])
    constraints = [scenario.supt_cid_ind(),
                   scenario.phi1_at_most_k(num_domestic - 1)]
    return (scenario.q2_all_supported_by("e0"), database,
            scenario.master(), constraints)


class TestDeciderDifferential:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_rcdp_complete_verdict_invariant(self, backend, workers):
        query, database, master, constraints = _crm_problem()
        baseline = decide_rcdp(query, database, master, constraints)
        result = decide_rcdp(query, database, master, constraints,
                             backend=backend, workers=workers)
        assert result.status is baseline.status is RCDPStatus.COMPLETE
        assert (result.statistics.valuations_examined
                == baseline.statistics.valuations_examined)
        assert (result.statistics.constraint_checks
                == baseline.statistics.constraint_checks)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_rcdp_incomplete_certificate_invariant(self, backend, workers):
        query, database, master, constraints = _crm_problem()
        # Drop φ1: the spare master customer is now an admissible
        # extension, so the decider finds a counterexample.
        baseline = decide_rcdp(query, database, master, constraints[:1])
        result = decide_rcdp(query, database, master, constraints[:1],
                             backend=backend, workers=workers)
        assert result.status is baseline.status is RCDPStatus.INCOMPLETE
        assert result.certificate is not None
        assert (result.certificate.extension_facts
                == baseline.certificate.extension_facts)
        assert (result.certificate.new_answer
                == baseline.certificate.new_answer)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_missing_answers_invariant(self, backend, workers):
        query, database, master, constraints = _crm_problem()
        baseline = missing_answers_report(query, database, master,
                                          constraints[:1])
        report = missing_answers_report(query, database, master,
                                        constraints[:1], backend=backend,
                                        workers=workers)
        assert report.answers == baseline.answers
        assert report.exhaustive == baseline.exhaustive
        assert (report.statistics.valuations_examined
                == baseline.statistics.valuations_examined)

    @settings(max_examples=12, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances())
    def test_random_rcdp_verdict_backend_invariant(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            baseline = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        for backend in NON_PYTHON:
            result = decide_rcdp(query, db, DM, [IND], backend=backend)
            assert result.status is baseline.status, backend
            assert (result.statistics.valuations_examined
                    == baseline.statistics.valuations_examined), backend


# ---------------------------------------------------------------------------
# Storage-level edge cases
# ---------------------------------------------------------------------------


class TestStorageEdges:
    def test_nullary_relation_round_trips(self):
        schema = DatabaseSchema([RelationSchema("P", [])])
        populated = Instance(schema, {"P": {()}})
        empty = Instance.empty(schema)
        from repro.queries.atoms import RelAtom
        from repro.queries.cq import ConjunctiveQuery

        query = ConjunctiveQuery([], [RelAtom("P", [])], name="boolean")
        for backend in BACKEND_NAMES:
            assert EvaluationContext(backend=backend).evaluate(
                query, populated) == frozenset({()}), backend
            assert EvaluationContext(backend=backend).evaluate(
                query, empty) == frozenset(), backend

    def test_interning_respects_python_equality(self):
        # 1 == True under Python (and SQLite) semantics; the columnar
        # interner must collapse them exactly like frozenset storage.
        schema = DatabaseSchema([RelationSchema("R", ["a", "b"])])
        inst = Instance(schema, {"R": {(1, 2), (True, 2)}})
        assert len(inst["R"]) == 1
        from repro.queries.atoms import RelAtom
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.terms import Const, Var

        query = ConjunctiveQuery(
            [Var("x")], [RelAtom("R", [Const(True), Var("x")])], name="q")
        expected = query.evaluate_naive(inst)
        for backend in BACKEND_NAMES:
            assert EvaluationContext(backend=backend).evaluate(
                query, inst) == expected, backend

    def test_derive_keeps_columnar_overlay_consistent(self):
        inst = Instance(SCHEMA, {"R": {(0, 1)}, "T": {(0, 1, 2)}})
        storage = inst.storage("columnar")
        extended = extend_unvalidated(inst, [("R", (1, 2))])
        derived = extended._storages.get("columnar")
        assert derived is not None and derived is not storage
        assert extended.storage("columnar") is derived
        from repro.queries.atoms import RelAtom
        from repro.queries.cq import ConjunctiveQuery
        from repro.queries.terms import Var

        query = ConjunctiveQuery(
            [Var("x"), Var("y")], [RelAtom("R", [Var("x"), Var("y")])],
            name="all_r")
        assert EvaluationContext(backend="columnar").evaluate(
            query, extended) == extended["R"]

    def test_create_storage_unknown_kind(self):
        inst = Instance(SCHEMA, {})
        with pytest.raises(ReproError):
            create_storage("duckdb", inst)
