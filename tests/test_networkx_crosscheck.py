"""Independent cross-checks against networkx.

The datalog engine's transitive closure and the CRM management-chain
query are validated against networkx's graph algorithms — a third,
completely independent implementation.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.atoms import rel
from repro.queries.datalog import DatalogQuery, rule
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("E", ["src", "dst"])])

_edges = st.frozensets(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12)


def tc_program() -> DatalogQuery:
    x, y, z = var("x"), var("y"), var("z")
    return DatalogQuery([
        rule(rel("T", x, y), rel("E", x, y)),
        rule(rel("T", x, z), rel("E", x, y), rel("T", y, z)),
    ], goal="T")


@settings(max_examples=60, deadline=None)
@given(edges=_edges)
def test_transitive_closure_matches_networkx(edges):
    instance = Instance(SCHEMA, {"E": edges})
    ours = tc_program().evaluate(instance)
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    theirs = frozenset(nx.transitive_closure(graph).edges())
    assert ours == theirs


@settings(max_examples=40, deadline=None)
@given(edges=_edges, source=st.integers(0, 5))
def test_reachability_matches_networkx(edges, source):
    instance = Instance(SCHEMA, {"E": edges})
    x, y = var("x"), var("y")
    program = DatalogQuery([
        rule(rel("Reach", source)),
        rule(rel("Reach", y), rel("Reach", x), rel("E", x, y)),
    ], goal="Reach")
    ours = {row[0] for row in program.evaluate(instance)}
    graph = nx.DiGraph()
    graph.add_nodes_from(range(6))
    graph.add_edges_from(edges)
    theirs = set(nx.descendants(graph, source)) | {source}
    assert ours == theirs


def test_management_chain_matches_networkx():
    from repro.mdm.scenario import CRMScenario

    scenario = CRMScenario.example()
    database = scenario.database()
    q3 = scenario.q3_management_chain("e0")
    ours = {row[0] for row in q3.evaluate(database)}
    graph = nx.DiGraph()
    # Manage(eid1, eid2): eid2 reports to eid1, so walk edges upward.
    for manager, reportee in scenario.manage:
        graph.add_edge(reportee, manager)
    theirs = set(nx.descendants(graph, "e0"))
    assert ours == theirs


@pytest.mark.parametrize("seed", range(5))
def test_random_dags_agree(seed):
    rng = random.Random(seed)
    edges = {(rng.randint(0, 4), rng.randint(5, 9)) for _ in range(8)}
    schema = SCHEMA
    instance = Instance(schema, {"E": edges})
    ours = tc_program().evaluate(instance)
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    theirs = frozenset(nx.transitive_closure(graph).edges())
    assert ours == theirs
