"""Tests for set-semantics database instances."""

import pytest

from repro.errors import DomainError, SchemaError
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)


@pytest.fixture
def schema():
    return DatabaseSchema([
        RelationSchema("R", ["a", "b"]),
        RelationSchema("S", ["x"]),
    ])


class TestConstruction:
    def test_empty(self, schema):
        empty = Instance.empty(schema)
        assert empty.is_empty()
        assert empty.total_tuples == 0

    def test_unmentioned_relations_are_empty(self, schema):
        inst = Instance(schema, {"R": {(1, 2)}})
        assert inst["S"] == frozenset()

    def test_arity_validation(self, schema):
        with pytest.raises(SchemaError):
            Instance(schema, {"R": {(1,)}})

    def test_unknown_relation_rejected(self, schema):
        with pytest.raises(SchemaError):
            Instance(schema, {"T": {(1,)}})

    def test_finite_domain_validation(self):
        schema = DatabaseSchema([
            RelationSchema("F", [Attribute("v", BOOLEAN)])])
        Instance(schema, {"F": {(0,), (1,)}})
        with pytest.raises(DomainError):
            Instance(schema, {"F": {(7,)}})

    def test_rows_coerced_to_tuples(self, schema):
        inst = Instance(schema, {"R": [[1, 2]]})
        assert (1, 2) in inst["R"]


class TestAlgebra:
    def test_containment_and_extension(self, schema):
        small = Instance(schema, {"R": {(1, 2)}})
        big = Instance(schema, {"R": {(1, 2), (3, 4)}, "S": {(5,)}})
        assert big.contains(small)
        assert big.is_extension_of(small)
        assert not small.contains(big)

    def test_every_instance_extends_itself(self, schema):
        inst = Instance(schema, {"R": {(1, 2)}})
        assert inst.is_extension_of(inst)

    def test_union(self, schema):
        a = Instance(schema, {"R": {(1, 2)}})
        b = Instance(schema, {"R": {(3, 4)}, "S": {(5,)}})
        u = a.union(b)
        assert u["R"] == frozenset({(1, 2), (3, 4)})
        assert u["S"] == frozenset({(5,)})

    def test_with_tuples_returns_new_instance(self, schema):
        a = Instance(schema, {"R": {(1, 2)}})
        b = a.with_tuples("R", [(3, 4)])
        assert (3, 4) in b["R"]
        assert (3, 4) not in a["R"]

    def test_with_facts(self, schema):
        inst = Instance.empty(schema).with_facts(
            [("R", (1, 2)), ("S", (9,)), ("R", (1, 2))])
        assert inst.total_tuples == 2

    def test_restricted_to(self, schema):
        inst = Instance(schema, {"R": {(1, 2)}, "S": {(5,)}})
        only_r = inst.restricted_to(["R"])
        assert "S" not in only_r.schema
        assert only_r["R"] == frozenset({(1, 2)})

    def test_active_domain(self, schema):
        inst = Instance(schema, {"R": {(1, 2)}, "S": {("x",)}})
        assert inst.active_domain() == frozenset({1, 2, "x"})

    def test_facts_iteration(self, schema):
        inst = Instance(schema, {"R": {(1, 2)}, "S": {(5,)}})
        assert set(inst.facts()) == {("R", (1, 2)), ("S", (5,))}

    def test_difference_facts(self, schema):
        big = Instance(schema, {"R": {(1, 2), (3, 4)}})
        small = Instance(schema, {"R": {(1, 2)}})
        assert big.difference_facts(small) == [("R", (3, 4))]


class TestAlgebraMismatchedSchemas:
    """The algebra ops on instances whose schemas differ.

    ``union`` merges schemas, ``contains``/``difference_facts`` compare
    relation-wise treating absent relations as empty — these shapes show
    up when restricted sub-instances flow back into whole-schema code.
    """

    def test_union_merges_disjoint_schemas(self):
        r_only = DatabaseSchema([RelationSchema("R", ["a", "b"])])
        s_only = DatabaseSchema([RelationSchema("S", ["x"])])
        a = Instance(r_only, {"R": {(1, 2)}})
        b = Instance(s_only, {"S": {(5,)}})
        u = a.union(b)
        assert set(u.schema.relation_names) == {"R", "S"}
        assert u["R"] == frozenset({(1, 2)})
        assert u["S"] == frozenset({(5,)})

    def test_union_overlapping_schemas_unions_rows(self, schema):
        r_only = DatabaseSchema([RelationSchema("R", ["a", "b"])])
        a = Instance(schema, {"R": {(1, 2)}, "S": {(9,)}})
        b = Instance(r_only, {"R": {(3, 4)}})
        u = a.union(b)
        assert u["R"] == frozenset({(1, 2), (3, 4)})
        assert u["S"] == frozenset({(9,)})

    def test_contains_sub_schema_instance(self, schema):
        r_only = DatabaseSchema([RelationSchema("R", ["a", "b"])])
        big = Instance(schema, {"R": {(1, 2)}, "S": {(5,)}})
        small = Instance(r_only, {"R": {(1, 2)}})
        assert big.contains(small)

    def test_contains_unknown_nonempty_relation_is_false(self, schema):
        wider = DatabaseSchema([RelationSchema("R", ["a", "b"]),
                                RelationSchema("T", ["z"])])
        base = Instance(schema, {"R": {(1, 2)}})
        other = Instance(wider, {"R": {(1, 2)}, "T": {(7,)}})
        assert not base.contains(other)

    def test_contains_unknown_empty_relation_is_true(self, schema):
        wider = DatabaseSchema([RelationSchema("R", ["a", "b"]),
                                RelationSchema("T", ["z"])])
        base = Instance(schema, {"R": {(1, 2)}})
        other = Instance(wider, {"R": {(1, 2)}})
        assert base.contains(other)

    def test_restricted_to_roundtrips_through_union(self, schema):
        inst = Instance(schema, {"R": {(1, 2)}, "S": {(5,)}})
        rebuilt = inst.restricted_to(["R"]).union(inst.restricted_to(["S"]))
        assert rebuilt == inst

    def test_difference_facts_against_sub_schema(self, schema):
        r_only = DatabaseSchema([RelationSchema("R", ["a", "b"])])
        big = Instance(schema, {"R": {(1, 2)}, "S": {(5,)}})
        small = Instance(r_only, {"R": {(1, 2)}})
        assert big.difference_facts(small) == [("S", (5,))]


class TestEqualityHash:
    def test_equality_ignores_insertion_order(self, schema):
        a = Instance(schema, {"R": {(1, 2), (3, 4)}})
        b = Instance(schema, {"R": {(3, 4), (1, 2)}})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self, schema):
        a = Instance(schema, {"R": {(1, 2)}})
        b = Instance(schema, {"R": {(1, 3)}})
        assert a != b

    def test_pretty_mentions_relations(self, schema):
        text = Instance(schema, {"R": {(1, 2)}}).pretty()
        assert "R(a, b)" in text
