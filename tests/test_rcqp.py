"""Tests for the RCQP deciders (IND-syntactic and general E1/E2 search)."""

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp, decide_rcqp_with_inds
from repro.core.results import RCDPStatus, RCQPStatus
from repro.errors import ConstraintError, UndecidableConfigurationError
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.datalog import DatalogQuery, rule
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

SCHEMA = DatabaseSchema([
    RelationSchema("Supt", ["eid", "dept", "cid"]),
    RelationSchema("Flag", [Attribute("b", BOOLEAN)]),
])
MASTER_SCHEMA = DatabaseSchema([
    RelationSchema("DCust", ["cid"]),
    RelationSchema("Empty", ["z"]),
])
DM = Instance(MASTER_SCHEMA, {"DCust": {("c1",), ("c2",)}})


def cid_ind():
    return InclusionDependency(
        "Supt", ["cid"], "DCust", ["cid"]).to_containment_constraint(
        SCHEMA, MASTER_SCHEMA)


def eid_empty_ind():
    return InclusionDependency(
        "Supt", ["eid"], None).to_containment_constraint(
        SCHEMA, MASTER_SCHEMA)


class TestINDSyntactic:
    """Proposition 4.3 / Theorem 4.5(1)."""

    def test_covered_output_variable_nonempty(self):
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcqp_with_inds(q, DM, [cid_ind()], SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY
        # the witness really is relatively complete
        verdict = decide_rcdp(q, result.witness, DM, [cid_ind()])
        assert verdict.status is RCDPStatus.COMPLETE

    def test_uncovered_output_variable_empty(self):
        # dept is infinite-domain and no IND covers it
        q = cq([var("d")], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcqp_with_inds(q, DM, [cid_ind()], SCHEMA)
        assert result.status is RCQPStatus.EMPTY

    def test_finite_domain_output_nonempty_without_inds(self):
        q = cq([var("b")], [rel("Flag", var("b"))])
        result = decide_rcqp_with_inds(q, DM, [], SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY

    def test_unachievable_disjunct_is_harmless(self):
        # eid ⊆ ∅ makes any Supt tuple violate V, so the uncovered output
        # variable never materializes (second case of Prop. 4.3).
        q = cq([var("d")], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcqp_with_inds(
            q, DM, [cid_ind(), eid_empty_ind()], SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY
        assert result.witness.is_empty()

    def test_boolean_query_nonempty(self):
        q = cq([], [rel("Supt", var("e"), var("d"), var("c"))])
        result = decide_rcqp_with_inds(q, DM, [cid_ind()], SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY

    def test_ucq_each_disjunct_checked(self):
        q = ucq([
            cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))]),
            cq([var("d")], [rel("Supt", "e1", var("d"), var("c"))]),
        ])
        result = decide_rcqp_with_inds(q, DM, [cid_ind()], SCHEMA)
        assert result.status is RCQPStatus.EMPTY

    def test_non_ind_constraint_rejected(self):
        fd_ccs = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)
        q = cq([], [rel("Supt", var("e"), var("d"), var("c"))])
        with pytest.raises(ConstraintError):
            decide_rcqp_with_inds(q, DM, fd_ccs, SCHEMA)

    def test_unsatisfiable_query_nonempty(self):
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c")),
                            eq(var("c"), "a"), eq(var("c"), "b")])
        result = decide_rcqp_with_inds(q, DM, [cid_ind()], SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY


class TestGeneralE1:
    def test_all_finite_outputs_nonempty(self):
        fd_ccs = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)
        q = cq([var("b")], [rel("Flag", var("b"))])
        result = decide_rcqp(q, DM, fd_ccs, SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY
        verdict = decide_rcdp(q, result.witness, DM, fd_ccs)
        assert verdict.status is RCDPStatus.COMPLETE

    def test_no_constraints_infinite_output_empty(self):
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcqp(q, DM, [], SCHEMA)
        assert result.status is RCQPStatus.EMPTY

    def test_no_constraints_finite_output_nonempty(self):
        q = cq([var("b")], [rel("Flag", var("b"))])
        result = decide_rcqp(q, DM, [], SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY


class TestGeneralE2:
    """Example 4.1 of the paper."""

    def _q2(self):
        return cq([var("e"), var("d"), var("c")],
                  [rel("Supt", var("e"), var("d"), var("c")),
                   eq(var("e"), "e0")], name="Q2")

    def _q4(self):
        return cq([var("e"), var("d"), var("c")],
                  [rel("Supt", var("e"), var("d"), var("c")),
                   eq(var("e"), "e0"), eq(var("d"), "d0")], name="Q4")

    def test_q2_with_full_fd_nonempty(self):
        v = FunctionalDependency(
            "Supt", ["eid"], ["dept", "cid"]).to_containment_constraints(
            SCHEMA)
        result = decide_rcqp(self._q2(), Instance(MASTER_SCHEMA), v, SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY
        verdict = decide_rcdp(self._q2(), result.witness,
                              Instance(MASTER_SCHEMA), v)
        assert verdict.status is RCDPStatus.COMPLETE

    def test_q2_with_partial_fd_not_found(self):
        # FD eid → dept leaves cid unbounded: the paper argues Q2 is not
        # relatively complete (dom(cid) infinite).
        v = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)
        result = decide_rcqp(self._q2(), Instance(MASTER_SCHEMA), v, SCHEMA)
        assert result.status in (RCQPStatus.EMPTY,
                                 RCQPStatus.EMPTY_UP_TO_BOUND)

    def test_q4_blocking_witness_nonempty(self):
        # Example 4.1: D− = {(e0, d', c)} with d' ≠ d0 blocks additions.
        v = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)
        result = decide_rcqp(self._q4(), Instance(MASTER_SCHEMA), v, SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY
        # The blocking witness has empty query answer!
        assert self._q4().evaluate(result.witness) == frozenset()

    def test_witness_verification_can_be_disabled(self):
        v = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)
        result = decide_rcqp(self._q4(), Instance(MASTER_SCHEMA), v, SCHEMA,
                             verify_witness=False)
        assert result.status is RCQPStatus.NONEMPTY


class TestGuards:
    def test_fp_query_rejected(self):
        q = DatalogQuery(
            [rule(rel("T", var("e")),
                  rel("Supt", var("e"), var("d"), var("c")))], goal="T")
        with pytest.raises(UndecidableConfigurationError):
            decide_rcqp(q, DM, [], SCHEMA)

    def test_statistics_reported(self):
        v = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)
        q = cq([var("e"), var("d"), var("c")],
               [rel("Supt", var("e"), var("d"), var("c")),
                eq(var("e"), "e0"), eq(var("d"), "d0")])
        result = decide_rcqp(q, Instance(MASTER_SCHEMA), v, SCHEMA)
        assert result.statistics.candidate_sets_examined > 0

    def test_ind_dispatch_from_general_entry(self):
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        result = decide_rcqp(q, DM, [cid_ind()], SCHEMA)
        assert result.status is RCQPStatus.NONEMPTY
        assert "E3/E4" in result.explanation


class TestUnitSizeKnobs:
    def test_two_row_units_allowed(self):
        """max_rows_per_unit=2 lets one partial valuation instantiate two
        tuple templates of a single constraint; the verdict matches the
        default search on the Example 4.1 workload."""
        v = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)
        q = cq([var("e"), var("d"), var("c")],
               [rel("Supt", var("e"), var("d"), var("c")),
                eq(var("e"), "e0"), eq(var("d"), "d0")], name="Q4")
        default = decide_rcqp(q, Instance(MASTER_SCHEMA), v, SCHEMA)
        wide = decide_rcqp(q, Instance(MASTER_SCHEMA), v, SCHEMA,
                           max_rows_per_unit=2,
                           max_valuation_set_size=1)
        assert default.status is RCQPStatus.NONEMPTY
        assert wide.status is RCQPStatus.NONEMPTY

    def test_zero_set_budget_only_tries_empty_set(self):
        v = FunctionalDependency(
            "Supt", ["eid"], ["dept"]).to_containment_constraints(SCHEMA)
        q = cq([var("e"), var("d"), var("c")],
               [rel("Supt", var("e"), var("d"), var("c")),
                eq(var("e"), "e0"), eq(var("d"), "d0")], name="Q4")
        result = decide_rcqp(q, Instance(MASTER_SCHEMA), v, SCHEMA,
                             max_valuation_set_size=0)
        # The blocking witness needs one unit, so the budget-0 search
        # reports only up-to-bound emptiness.
        assert result.status is RCQPStatus.EMPTY_UP_TO_BOUND
