"""Tests for the Theorem 3.6 reduction: ∀∃-3SAT ⟶ RCDP(CQ, INDs).

The defining property — ϕ is true iff the produced database is relatively
complete — is checked against the independent QBF evaluator on both
hand-picked and random instances.
"""

import random

import pytest

from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.errors import ReproError
from repro.reductions.qsat_to_rcdp import reduce_forall_exists_3sat_to_rcdp
from repro.solvers.qbf import ForallExists3SAT, random_forall_exists_3sat
from repro.solvers.sat import CNF


def _decide(instance):
    return decide_rcdp(instance.query, instance.database, instance.master,
                       list(instance.constraints))


class TestHandPicked:
    def test_true_formula_gives_complete(self):
        # ∀x ∃y. (x ∨ y) ∧ (¬x ∨ ¬y)
        formula = ForallExists3SAT([1], [2], CNF([(1, 2), (-1, -2)]))
        assert formula.is_true()
        result = _decide(reduce_forall_exists_3sat_to_rcdp(formula))
        assert result.status is RCDPStatus.COMPLETE

    def test_false_formula_gives_incomplete(self):
        # ∀x ∃y. x — fails at x = 0
        formula = ForallExists3SAT([1], [2], CNF([(1,), (2, -2)]))
        assert not formula.is_true()
        result = _decide(reduce_forall_exists_3sat_to_rcdp(formula))
        assert result.status is RCDPStatus.INCOMPLETE

    def test_incompleteness_certificate_flips_the_switch(self):
        formula = ForallExists3SAT([1], [2], CNF([(1,), (2, -2)]))
        instance = reduce_forall_exists_3sat_to_rcdp(formula)
        result = _decide(instance)
        # The counterexample necessarily adds the tuple (0) to R6.
        facts = dict(result.certificate.extension_facts)
        assert ("R6", (0,)) in result.certificate.extension_facts

    def test_two_universals(self):
        # ∀x1 x2 ∃y. (x1 ∨ x2 ∨ y) — pick y = 1
        formula = ForallExists3SAT([1, 2], [3], CNF([(1, 2, 3)]))
        assert formula.is_true()
        result = _decide(reduce_forall_exists_3sat_to_rcdp(formula))
        assert result.status is RCDPStatus.COMPLETE

    def test_requires_universal_block(self):
        formula = ForallExists3SAT([], [1], CNF([(1,)]))
        with pytest.raises(ReproError):
            reduce_forall_exists_3sat_to_rcdp(formula)

    def test_constraints_are_inds(self):
        formula = ForallExists3SAT([1], [2], CNF([(1, 2)]))
        instance = reduce_forall_exists_3sat_to_rcdp(formula)
        assert all(c.is_ind() for c in instance.constraints)

    def test_database_partially_closed(self):
        from repro.constraints.containment import satisfies_all

        formula = ForallExists3SAT([1], [2], CNF([(1, 2)]))
        instance = reduce_forall_exists_3sat_to_rcdp(formula)
        assert satisfies_all(instance.database, instance.master,
                             list(instance.constraints))


@pytest.mark.parametrize("seed", range(12))
def test_agrees_with_qbf_solver_on_random_instances(seed):
    rng = random.Random(seed)
    formula = random_forall_exists_3sat(2, 2, rng.randint(1, 6), rng)
    instance = reduce_forall_exists_3sat_to_rcdp(formula)
    result = _decide(instance)
    expected = formula.is_true()
    assert (result.status is RCDPStatus.COMPLETE) == expected


def test_slightly_larger_instance():
    rng = random.Random(99)
    formula = random_forall_exists_3sat(3, 3, 5, rng)
    instance = reduce_forall_exists_3sat_to_rcdp(formula)
    result = _decide(instance)
    assert (result.status is RCDPStatus.COMPLETE) == formula.is_true()
