"""Tests for Proposition 2.1: integrity constraints as containment
constraints.

The key property, checked both on hand-picked and on randomly generated
instances: for every database ``D``, ``D`` satisfies the integrity
constraint directly **iff** ``(D, Dm)`` satisfies the compiled CCs (with an
empty master relation).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cfd import (ConditionalFunctionalDependency,
                                   FunctionalDependency)
from repro.constraints.cind import ConditionalInclusionDependency
from repro.constraints.compile import compile_all, compile_to_containment
from repro.constraints.containment import satisfies_all
from repro.constraints.denial import DenialConstraint
from repro.errors import ConstraintError
from repro.queries.atoms import eq, neq, rel
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([
    RelationSchema("Supt", ["eid", "dept", "cid"]),
    RelationSchema("Emp", ["eid", "dept"]),
])

MASTER_SCHEMA = DatabaseSchema([RelationSchema("Empty", ["z"])])
MASTER = Instance(MASTER_SCHEMA)


def _compiled_agree(constraint, database) -> None:
    compiled = compile_to_containment(constraint, SCHEMA, MASTER_SCHEMA)
    direct = constraint.is_satisfied(database)
    via_cc = satisfies_all(database, MASTER, compiled)
    assert direct == via_cc, (
        f"direct={direct} compiled={via_cc} for {constraint!r} "
        f"on {database!r}")


class TestFD:
    fd = FunctionalDependency("Supt", ["eid"], ["dept", "cid"])

    def test_satisfied(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "d0", "c0"),
                                        ("e1", "d0", "c0")}})
        assert self.fd.is_satisfied(db)
        _compiled_agree(self.fd, db)

    def test_violated(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "d0", "c0"),
                                        ("e0", "d1", "c0")}})
        assert not self.fd.is_satisfied(db)
        _compiled_agree(self.fd, db)

    def test_empty_db_satisfies(self):
        _compiled_agree(self.fd, Instance.empty(SCHEMA))

    def test_compiles_to_one_cc_per_rhs_attr(self):
        ccs = self.fd.to_containment_constraints(SCHEMA)
        assert len(ccs) == 2
        assert all(cc.projection.is_empty_target for cc in ccs)

    def test_rhs_required(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("Supt", ["eid"], [])


class TestCFD:
    # dept = "BU" → eid is a key for cid (the paper's example in §2.2)
    cfd = ConditionalFunctionalDependency(
        "Supt", ["eid", "dept"], ["cid"], lhs_pattern={"dept": "BU"})

    def test_pattern_restricts_scope(self):
        # Violation outside the BU department is fine.
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c0"),
                                        ("e0", "sales", "c1")}})
        assert self.cfd.is_satisfied(db)
        _compiled_agree(self.cfd, db)

    def test_violation_inside_pattern(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "BU", "c0"),
                                        ("e0", "BU", "c1")}})
        assert not self.cfd.is_satisfied(db)
        _compiled_agree(self.cfd, db)

    def test_rhs_pattern_single_tuple_violation(self):
        cfd = ConditionalFunctionalDependency(
            "Supt", ["eid"], ["dept"],
            lhs_pattern={}, rhs_pattern={"dept": "BU"})
        db = Instance(SCHEMA, {"Supt": {("e0", "sales", "c0")}})
        assert not cfd.is_satisfied(db)
        _compiled_agree(cfd, db)

    def test_rhs_pattern_satisfied(self):
        cfd = ConditionalFunctionalDependency(
            "Supt", ["eid"], ["dept"], rhs_pattern={"dept": "BU"})
        db = Instance(SCHEMA, {"Supt": {("e0", "BU", "c0")}})
        assert cfd.is_satisfied(db)
        _compiled_agree(cfd, db)

    def test_pattern_attr_must_be_in_lhs(self):
        with pytest.raises(ConstraintError):
            ConditionalFunctionalDependency(
                "Supt", ["eid"], ["cid"], lhs_pattern={"dept": "BU"})


class TestDenial:
    # no employee supports customer c0 in department d9
    dc = DenialConstraint([rel("Supt", var("e"), "d9", "c0")])

    def test_satisfied(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "d0", "c0")}})
        assert self.dc.is_satisfied(db)
        _compiled_agree(self.dc, db)

    def test_violated(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "d9", "c0")}})
        assert not self.dc.is_satisfied(db)
        _compiled_agree(self.dc, db)

    def test_with_comparison(self):
        # forbid two distinct depts for one employee (FD as denial)
        dc = DenialConstraint([
            rel("Supt", var("e"), var("d1"), var("c1")),
            rel("Supt", var("e"), var("d2"), var("c2")),
            neq(var("d1"), var("d2"))])
        ok = Instance(SCHEMA, {"Supt": {("e0", "d0", "c0")}})
        bad = Instance(SCHEMA, {"Supt": {("e0", "d0", "c0"),
                                         ("e0", "d1", "c0")}})
        assert dc.is_satisfied(ok)
        assert not dc.is_satisfied(bad)
        _compiled_agree(dc, ok)
        _compiled_agree(dc, bad)

    def test_needs_relation_atom(self):
        with pytest.raises(ConstraintError):
            DenialConstraint([eq(var("x"), 1)])


class TestCIND:
    cind = ConditionalInclusionDependency(
        "Supt", ["eid", "dept"], "Emp", ["eid", "dept"])

    def test_satisfied(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "d0", "c0")},
                               "Emp": {("e0", "d0")}})
        assert self.cind.is_satisfied(db)
        _compiled_agree(self.cind, db)

    def test_violated(self):
        db = Instance(SCHEMA, {"Supt": {("e0", "d0", "c0")},
                               "Emp": {("e0", "d1")}})
        assert not self.cind.is_satisfied(db)
        _compiled_agree(self.cind, db)

    def test_with_patterns(self):
        cind = ConditionalInclusionDependency(
            "Supt", ["eid"], "Emp", ["eid"],
            lhs_pattern={"dept": "BU"}, rhs_pattern={"dept": "BU"})
        ok = Instance(SCHEMA, {"Supt": {("e0", "sales", "c0")}})
        needs = Instance(SCHEMA, {"Supt": {("e0", "BU", "c0")},
                                  "Emp": {("e0", "sales")}})
        good = Instance(SCHEMA, {"Supt": {("e0", "BU", "c0")},
                                 "Emp": {("e0", "BU")}})
        assert cind.is_satisfied(ok)       # pattern does not fire
        assert not cind.is_satisfied(needs)
        assert cind.is_satisfied(good)
        for db in (ok, needs, good):
            _compiled_agree(cind, db)

    def test_compiles_to_fo(self):
        (cc,) = compile_to_containment(self.cind, SCHEMA, MASTER_SCHEMA)
        assert cc.language == "FO"
        assert not cc.is_decidable_language

    def test_attribute_length_mismatch(self):
        with pytest.raises(ConstraintError):
            ConditionalInclusionDependency(
                "Supt", ["eid"], "Emp", ["eid", "dept"])


class TestCompileAll:
    def test_mixed_list(self):
        constraints = [
            FunctionalDependency("Supt", ["eid"], ["dept"]),
            DenialConstraint([rel("Supt", var("e"), "d9", "c0")]),
        ]
        compiled = compile_all(constraints, SCHEMA, MASTER_SCHEMA)
        assert len(compiled) == 2

    def test_unknown_type_rejected(self):
        with pytest.raises(ConstraintError):
            compile_to_containment(object(), SCHEMA, MASTER_SCHEMA)


# ---------------------------------------------------------------------------
# Property-based agreement between direct and compiled semantics
# ---------------------------------------------------------------------------

_eids = st.sampled_from(["e0", "e1"])
_depts = st.sampled_from(["d0", "d1"])
_cids = st.sampled_from(["c0", "c1"])
_supt_rows = st.frozensets(
    st.tuples(_eids, _depts, _cids), max_size=5)
_emp_rows = st.frozensets(st.tuples(_eids, _depts), max_size=3)


@settings(max_examples=60, deadline=None)
@given(rows=_supt_rows)
def test_fd_compilation_agrees_on_random_instances(rows):
    fd = FunctionalDependency("Supt", ["eid"], ["dept", "cid"])
    _compiled_agree(fd, Instance(SCHEMA, {"Supt": rows}))


@settings(max_examples=60, deadline=None)
@given(rows=_supt_rows)
def test_cfd_compilation_agrees_on_random_instances(rows):
    cfd = ConditionalFunctionalDependency(
        "Supt", ["eid", "dept"], ["cid"], lhs_pattern={"dept": "d0"})
    _compiled_agree(cfd, Instance(SCHEMA, {"Supt": rows}))


@settings(max_examples=60, deadline=None)
@given(rows=_supt_rows)
def test_denial_compilation_agrees_on_random_instances(rows):
    dc = DenialConstraint([
        rel("Supt", var("e"), var("d1"), var("c")),
        rel("Supt", var("e"), var("d2"), var("c")),
        neq(var("d1"), var("d2"))])
    _compiled_agree(dc, Instance(SCHEMA, {"Supt": rows}))


@settings(max_examples=40, deadline=None)
@given(supt=_supt_rows, emp=_emp_rows)
def test_cind_compilation_agrees_on_random_instances(supt, emp):
    cind = ConditionalInclusionDependency(
        "Supt", ["eid", "dept"], "Emp", ["eid", "dept"])
    _compiled_agree(cind, Instance(SCHEMA, {"Supt": supt, "Emp": emp}))
