"""Tests for the CRM scenario, generators, and the §2.3 audit workflow."""

import random

import pytest

from repro.constraints.containment import satisfies_all
from repro.core.results import RCDPStatus
from repro.mdm.audit import AuditVerdict, CompletenessAudit
from repro.mdm.generators import GeneratorConfig, generate_scenario
from repro.mdm.scenario import CRMScenario


@pytest.fixture
def scenario():
    return CRMScenario.example()


class TestScenario:
    def test_database_partially_closed(self, scenario):
        db = scenario.database()
        assert satisfies_all(db, scenario.master(),
                             scenario.default_constraints())

    def test_missing_customer_knob(self, scenario):
        db = scenario.database(missing_customers=["c1"])
        cids = {row[0] for row in db["Cust"]}
        assert "c1" not in cids
        assert "c2" in cids

    def test_missing_support_knob(self, scenario):
        db = scenario.database(missing_support=[("e0", "c1")])
        assert ("e0", "sales", "c1") not in db["Supt"]

    def test_q0_answers(self, scenario):
        q0 = scenario.q0_customers_with_area_code("908")
        assert q0.evaluate(scenario.database()) == frozenset(
            {("c1",), ("c2",)})

    def test_q1_answers(self, scenario):
        q1 = scenario.q1_customers_supported_by("e0", "908")
        assert q1.evaluate(scenario.database()) == frozenset(
            {("c1",), ("c2",)})

    def test_q3_datalog_closure(self, scenario):
        q3 = scenario.q3_management_chain("e0")
        answers = q3.evaluate(scenario.database())
        assert answers == frozenset({("e2",), ("e3",)})

    def test_q3_cq_bounded_depth(self, scenario):
        q3cq = scenario.q3_management_chain_cq("e0", depth=2)
        assert q3cq.evaluate(scenario.database()) == frozenset({("e3",)})

    def test_q3_datalog_complete_when_closure_present(self, scenario):
        # Manage ⊇ Managem and Manage bounded by Managem: with Manage =
        # Managem the FP query answer cannot change.  (Exact RCDP refuses
        # FP; check via brute force.)
        from repro.core.bounded import brute_force_rcdp

        q3 = scenario.q3_management_chain("e0")
        result = brute_force_rcdp(
            q3, scenario.database(), scenario.master(),
            [scenario.manage_ind()], max_extra_facts=1,
            values=["e0", "e1", "e2", "e3", "e9"],
            relations=["Manage"])
        assert result.status is RCDPStatus.COMPLETE_UP_TO_BOUND

    def test_phi1_limits_support(self, scenario):
        phi1 = scenario.phi1_at_most_k(2)
        assert phi1.is_satisfied(scenario.database(), scenario.master())
        crowded = scenario.database().with_tuples(
            "Supt", [("e0", "sales", "c3")])
        assert not phi1.is_satisfied(crowded, scenario.master())


class TestAudit:
    def _audit(self, scenario, constraints=None):
        # supt⊆dcust only holds without international support tuples.
        scenario.support = {(e, d, c) for e, d, c in scenario.support
                            if not c.startswith("i")}
        return CompletenessAudit(
            master=scenario.master(),
            constraints=constraints or [scenario.supt_cid_ind()],
            schema=scenario.schema)

    def test_trustworthy_when_complete(self, scenario):
        # e0 supports every master customer → Q2 is complete.
        scenario.support |= {("e0", "sales", "c3")}
        audit = self._audit(scenario)
        report = audit.assess(scenario.q2_all_supported_by("e0"),
                              scenario.database())
        assert report.verdict is AuditVerdict.TRUSTWORTHY
        assert report.suggested_facts == ()

    def test_collect_data_with_suggestions(self, scenario):
        audit = self._audit(scenario)
        report = audit.assess(scenario.q2_all_supported_by("e0"),
                              scenario.database())
        assert report.verdict is AuditVerdict.COLLECT_DATA
        suggested_cids = {row[2] for name, row in report.suggested_facts
                          if name == "Supt"}
        assert "c3" in suggested_cids  # the unsupported master customer

    def test_expand_master_data(self, scenario):
        # Employees are unconstrained: asking for all employees supporting
        # anybody can never be complete — the master data must grow.
        from repro.queries.atoms import rel
        from repro.queries.cq import cq
        from repro.queries.terms import var

        audit = self._audit(scenario)
        q = cq([var("e")], [rel("Supt", var("e"), var("d"), var("c"))])
        report = audit.assess(q, scenario.database())
        assert report.verdict is AuditVerdict.EXPAND_MASTER_DATA

    def test_summary_readable(self, scenario):
        audit = self._audit(scenario)
        report = audit.assess(scenario.q2_all_supported_by("e0"),
                              scenario.database())
        text = report.summary()
        assert "verdict" in text
        assert "RCDP" in text


class TestGenerators:
    def test_reproducible(self):
        config = GeneratorConfig(num_domestic=5, num_employees=2)
        a = generate_scenario(config, random.Random(1))
        b = generate_scenario(config, random.Random(1))
        assert a.support == b.support
        assert [r.cid for r in a.domestic] == [r.cid for r in b.domestic]

    def test_counts(self):
        config = GeneratorConfig(num_domestic=7, num_international=2,
                                 num_employees=3)
        scenario = generate_scenario(config, random.Random(2))
        assert len(scenario.domestic) == 7
        assert len(scenario.international) == 2

    def test_generated_database_is_partially_closed(self):
        config = GeneratorConfig(num_domestic=6, num_employees=2)
        scenario = generate_scenario(config, random.Random(3))
        assert satisfies_all(scenario.database(), scenario.master(),
                             [scenario.supt_cid_ind(), scenario.phi0(),
                              scenario.manage_ind()])

    def test_missing_fraction_drops_tuples(self):
        base = GeneratorConfig(num_domestic=10, num_employees=3,
                               support_probability=0.9)
        lossy = GeneratorConfig(num_domestic=10, num_employees=3,
                                support_probability=0.9,
                                missing_support_fraction=0.5)
        full = generate_scenario(base, random.Random(4))
        partial = generate_scenario(lossy, random.Random(4))
        assert len(partial.support) < len(full.support)

    def test_management_hierarchy_depth(self):
        config = GeneratorConfig(management_depth=3)
        scenario = generate_scenario(config, random.Random(5))
        # complete binary tree with depth 3 has 2 + 4 + 8 = 14 edges
        assert len(scenario.manage_master) == 14
