"""Tests for Chandra–Merlin CQ containment."""

import pytest

from repro.errors import QueryError
from repro.queries.atoms import neq, rel
from repro.queries.containment import (canonical_database, is_contained_in,
                                       is_equivalent)
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema([RelationSchema("E", ["src", "dst"])])


def path(length: int):
    """CQ asking for endpoints of a directed path of *length* edges."""
    atoms = [rel("E", var(f"v{i}"), var(f"v{i+1}")) for i in range(length)]
    return cq([var("v0"), var(f"v{length}")], atoms)


class TestContainment:
    def test_longer_path_contained_in_shorter(self, schema):
        # a 2-path maps homomorphically onto ... no: path2 ⊆ path1 fails,
        # path1 ⊆ path1 holds, and path2 ⊆ path2 holds.
        assert is_contained_in(path(1), path(1), schema)
        assert not is_contained_in(path(1), path(2), schema)

    def test_self_loop_contained_in_path(self, schema):
        loop = cq([var("x"), var("x")], [rel("E", var("x"), var("x"))])
        # loop answers are (x, x) with E(x,x); a 2-path folds onto the loop
        assert is_contained_in(loop, path(2), schema)
        assert not is_contained_in(path(2), loop, schema)

    def test_equivalence_with_redundant_atom(self, schema):
        q1 = path(1)
        q2 = cq([var("x"), var("y")],
                [rel("E", var("x"), var("y")),
                 rel("E", var("x"), var("y2"))])
        assert is_equivalent(q1, q2, schema)

    def test_constant_specialization(self, schema):
        general = cq([var("y")], [rel("E", var("x"), var("y"))])
        specific = cq([var("y")], [rel("E", 1, var("y"))])
        assert is_contained_in(specific, general, schema)
        assert not is_contained_in(general, specific, schema)

    def test_arity_mismatch_rejected(self, schema):
        with pytest.raises(QueryError):
            is_contained_in(path(1), cq([var("x")],
                                        [rel("E", var("x"), var("y"))]),
                            schema)

    def test_inequalities_rejected(self, schema):
        q = cq([var("x"), var("y")],
               [rel("E", var("x"), var("y")), neq(var("x"), var("y"))])
        with pytest.raises(QueryError):
            is_contained_in(q, path(1), schema)


class TestCanonicalDatabase:
    def test_canonical_database_satisfies_query(self, schema):
        q = path(2)
        frozen, head = canonical_database(q, schema)
        assert head in q.evaluate(frozen)

    def test_distinct_variables_frozen_distinctly(self, schema):
        q = path(2)
        frozen, _ = canonical_database(q, schema)
        assert len(frozen["E"]) == 2
