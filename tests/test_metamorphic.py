"""Metamorphic tests for the deciders.

Three relations that must hold by construction, checked on random
scenarios:

* **Shard-count invariance** — the brute-force C1–C4 bounded-database
  check enumerates a fixed candidate stream, so splitting it across any
  number of shards must not change the verdict or the (serial-first)
  certificate.
* **Constant-renaming invariance** — the characterizations quantify
  over the active domain only, never over the identity of its values:
  applying an injective, order-preserving rename to every constant in
  the query, database, and master data must preserve the verdict, and
  the counterexample answer must be the renamed original.
* **Monotone Δ-extension consistency** — the engine's semi-naive delta
  rule, the naive materialized evaluation, and the decider built on
  either must agree; and for the monotone languages ``Q(D) ⊆ Q(D ∪ Δ)``.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints.containment import satisfies_all
from repro.constraints.ind import InclusionDependency
from repro.core.bounded import brute_force_rcdp
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.engine import EvaluationContext
from repro.errors import ReproError
from repro.queries.atoms import RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Var
from repro.relational.instance import Instance, extend_unvalidated
from repro.relational.schema import DatabaseSchema, RelationSchema

from tests.strategies import (SCHEMA, conjunctive_queries,
                              extension_facts, instances)

import pytest

MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["c"])])
DM = Instance(MASTER_SCHEMA, {"M": {(0,), (1,)}})
IND = InclusionDependency(
    "R", ["b"], "M", ["c"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)


# ---------------------------------------------------------------------------
# Shard-count invariance of the brute-force C1–C4 check
# ---------------------------------------------------------------------------


class TestShardCountInvariance:
    @settings(max_examples=15, deadline=None)
    @given(query=conjunctive_queries(max_atoms=2,
                                     allow_inequalities=False),
           db=instances(), workers=st.sampled_from([2, 3]))
    def test_bounded_check_is_shard_count_invariant(self, query, db,
                                                    workers):
        assume(satisfies_all(db, DM, [IND]))
        try:
            serial = brute_force_rcdp(query, db, DM, [IND],
                                      max_extra_facts=1)
        except ReproError:
            assume(False)
        sharded = brute_force_rcdp(query, db, DM, [IND],
                                   max_extra_facts=1, workers=workers)
        assert sharded.status is serial.status
        assert sharded.explanation == serial.explanation
        if serial.certificate is None:
            assert sharded.certificate is None
        else:
            assert (sharded.certificate.extension_facts
                    == serial.certificate.extension_facts)
            assert (sharded.certificate.new_answer
                    == serial.certificate.new_answer)


# ---------------------------------------------------------------------------
# Constant-renaming invariance
# ---------------------------------------------------------------------------

# Order-preserving on the strategies' constant pool {0, 1, 2}, so the
# sorted active-domain enumeration visits renamed candidates in the
# original order and even the *witness* must map across.
RENAME = {0: 10, 1: 11, 2: 12}


def _rename_instance(instance: Instance, mapping: dict) -> Instance:
    contents = {
        name: {tuple(mapping.get(value, value) for value in row)
               for row in rows}
        for name, rows in instance}
    return Instance(instance.schema, contents)


def _rename_term(term, mapping):
    if isinstance(term, Const):
        return Const(mapping.get(term.value, term.value))
    return term


def _rename_query(query: ConjunctiveQuery,
                  mapping: dict) -> ConjunctiveQuery:
    body = []
    for atom in query.body:
        if isinstance(atom, RelAtom):
            body.append(RelAtom(atom.relation,
                                [_rename_term(t, mapping)
                                 for t in atom.terms]))
        else:
            body.append(type(atom)(_rename_term(atom.left, mapping),
                                   _rename_term(atom.right, mapping)))
    head = [_rename_term(t, mapping) for t in query.head]
    return ConjunctiveQuery(head, body, name=query.name)


class TestConstantRenamingInvariance:
    @settings(max_examples=30, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances())
    def test_verdict_survives_renaming(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            original = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        renamed = decide_rcdp(
            _rename_query(query, RENAME),
            _rename_instance(db, RENAME),
            _rename_instance(DM, RENAME), [IND])
        assert renamed.status is original.status
        if original.certificate is not None:
            mapped = tuple(
                RENAME.get(value, value)
                for value in original.certificate.new_answer)
            assert renamed.certificate.new_answer == mapped

    @settings(max_examples=12, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances())
    def test_renamed_parallel_matches_original_serial(self, query, db):
        """Composition: renaming and sharding together still preserve
        the verdict."""
        assume(satisfies_all(db, DM, [IND]))
        try:
            original = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        renamed = decide_rcdp(
            _rename_query(query, RENAME),
            _rename_instance(db, RENAME),
            _rename_instance(DM, RENAME), [IND], workers=2)
        assert renamed.status is original.status


# ---------------------------------------------------------------------------
# Monotone Δ-extension consistency
# ---------------------------------------------------------------------------


class TestDeltaExtensionConsistency:
    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           base=instances(), delta=extension_facts())
    def test_monotone_queries_only_gain_answers(self, query, base,
                                                delta):
        """CQs without inequalities are monotone: extending the
        database can only add answers, under either evaluation route."""
        context = EvaluationContext()
        before = context.evaluate(query, base)
        via_delta = context.evaluate_extension(query, base, delta)
        assert before <= via_delta
        materialized = extend_unvalidated(base, delta)
        assert via_delta == query.evaluate_naive(materialized)

    @settings(max_examples=20, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances())
    def test_decider_agrees_across_evaluation_routes(self, query, db):
        """The delta-evaluating engine decider and the naive
        full-evaluation decider must reach the same verdict and the
        same certificate."""
        assume(satisfies_all(db, DM, [IND]))
        try:
            engine = decide_rcdp(query, db, DM, [IND], use_engine=True)
        except ReproError:
            assume(False)
        naive = decide_rcdp(query, db, DM, [IND], use_engine=False)
        assert naive.status is engine.status
        if engine.certificate is None:
            assert naive.certificate is None
        else:
            assert (naive.certificate.extension_facts
                    == engine.certificate.extension_facts)
            assert (naive.certificate.new_answer
                    == engine.certificate.new_answer)


# A fixed INCOMPLETE scenario for the deterministic rename ladder.
_X, _Y = Var("x"), Var("y")
_QPROJ = ConjunctiveQuery((_X,), [RelAtom("R", (_X, _Y))], name="qproj")
_DB = Instance(SCHEMA, {"R": {(0, 0)}})


class TestRenameLadder:
    @pytest.mark.parametrize("offset", [10, 100, 1000])
    def test_offset_renames_map_the_witness(self, offset):
        mapping = {value: value + offset for value in (0, 1, 2)}
        original = decide_rcdp(_QPROJ, _DB, DM, [IND])
        assert original.status is RCDPStatus.INCOMPLETE
        renamed = decide_rcdp(
            _rename_query(_QPROJ, mapping),
            _rename_instance(_DB, mapping),
            _rename_instance(DM, mapping), [IND])
        assert renamed.status is RCDPStatus.INCOMPLETE
        mapped = tuple(mapping.get(value, value)
                       for value in original.certificate.new_answer)
        assert renamed.certificate.new_answer == mapped
