"""Tests for the static boundedness analysis."""

import pytest

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.ind import InclusionDependency
from repro.core.analysis import (VariableStatus, analyze_boundedness)
from repro.core.rcqp import decide_rcqp_with_inds
from repro.core.results import RCQPStatus
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.terms import Var, var
from repro.queries.ucq import ucq
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

SCHEMA = DatabaseSchema([
    RelationSchema("Supt", ["eid", "dept", "cid"]),
    RelationSchema("Flag", [Attribute("b", BOOLEAN)]),
])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("DCust", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"DCust": {("c1",)}})


def cid_ind():
    return InclusionDependency(
        "Supt", ["cid"], "DCust", ["cid"],
        name="cid-ind").to_containment_constraint(SCHEMA, MASTER_SCHEMA)


class TestStatuses:
    def test_ind_covered(self):
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        report = analyze_boundedness(q, [cid_ind()], SCHEMA)
        (entry,) = report.variables
        assert entry.status is VariableStatus.IND_COVERED
        assert entry.constraints == ("cid-ind",)
        assert report.syntactically_bounded

    def test_unbounded_names_columns(self):
        q = cq([var("e")], [rel("Supt", var("e"), var("d"), var("c"))])
        report = analyze_boundedness(q, [cid_ind()], SCHEMA)
        (entry,) = report.variables
        assert entry.status is VariableStatus.UNBOUNDED
        assert entry.columns == (("Supt", "eid"),)
        assert not report.syntactically_bounded
        (suggestion,) = report.master_data_suggestions()
        assert "Supt.eid" in suggestion

    def test_finite_domain(self):
        q = cq([var("b")], [rel("Flag", var("b"))])
        report = analyze_boundedness(q, [], SCHEMA)
        (entry,) = report.variables
        assert entry.status is VariableStatus.FINITE_DOMAIN

    def test_constrained_by_cq_constraint(self):
        fd_ccs = FunctionalDependency(
            "Supt", ["eid"], ["cid"],
            name="fd").to_containment_constraints(SCHEMA)
        q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
        report = analyze_boundedness(q, fd_ccs, SCHEMA)
        (entry,) = report.variables
        assert entry.status is VariableStatus.CONSTRAINED
        assert entry.constraints  # names the touching FD CC

    def test_head_constants_ignored(self):
        q = cq([var("c")],
               [rel("Supt", var("e"), var("d"), var("c")),
                eq(var("e"), "e0")])
        report = analyze_boundedness(q, [cid_ind()], SCHEMA)
        # e was pinned to a constant by equality folding: only c remains.
        assert [r.variable for r in report.variables] == [Var("c")]

    def test_ucq_per_disjunct(self):
        q = ucq([
            cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))]),
            cq([var("e")], [rel("Supt", var("e"), var("d"), var("c"))]),
        ])
        report = analyze_boundedness(q, [cid_ind()], SCHEMA)
        statuses = {r.variable.name: r.status for r in report.variables}
        assert statuses["c"] is VariableStatus.IND_COVERED
        assert statuses["e"] is VariableStatus.UNBOUNDED


class TestAgreementWithDecider:
    """For IND-only constraint sets the syntactic report must agree with
    the exact decider — unless the no-valid-valuation escape applies."""

    @pytest.mark.parametrize("head, expected", [
        ("c", RCQPStatus.NONEMPTY),
        ("e", RCQPStatus.EMPTY),
        ("d", RCQPStatus.EMPTY),
    ])
    def test_report_predicts_verdict(self, head, expected):
        q = cq([var(head)], [rel("Supt", var("e"), var("d"), var("c"))])
        report = analyze_boundedness(q, [cid_ind()], SCHEMA)
        result = decide_rcqp_with_inds(q, DM, [cid_ind()], SCHEMA,
                                       construct_witness=False)
        assert result.status is expected
        assert report.syntactically_bounded == (
            expected is RCQPStatus.NONEMPTY)
