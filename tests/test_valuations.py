"""Tests for active domains and valid-valuation enumeration."""

import pytest

from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.queries.atoms import eq, neq, rel
from repro.queries.cq import cq
from repro.queries.tableau import Tableau
from repro.queries.terms import Var, var
from repro.relational.domain import BOOLEAN, is_fresh
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

SCHEMA = DatabaseSchema([
    RelationSchema("R", ["a", "b"]),
    RelationSchema("F", [Attribute("u", BOOLEAN)]),
])


@pytest.fixture
def adom():
    inst = Instance(SCHEMA, {"R": {(1, 2)}})
    q = cq([var("x")], [rel("R", var("x"), 3)])
    return ActiveDomain.build(instances=(inst,), queries=(q,))


class TestActiveDomain:
    def test_constants_collected(self, adom):
        assert adom.constants == frozenset({1, 2, 3})

    def test_fresh_values_dedicated_and_stable(self, adom):
        a = adom.fresh_for(Var("x"))
        b = adom.fresh_for(Var("x"))
        c = adom.fresh_for(Var("y"))
        assert a == b
        assert a != c
        assert is_fresh(a)

    def test_candidates_infinite_var(self, adom):
        q = cq([var("x")], [rel("R", var("x"), var("y"))])
        t = Tableau(q, SCHEMA)
        candidates = adom.candidates_for(t, Var("x"), fresh="own")
        assert set(candidates) == {1, 2, 3, adom.fresh_for(Var("x"))}

    def test_candidates_finite_var_ignore_fresh(self, adom):
        q = cq([var("u")], [rel("F", var("u"))])
        t = Tableau(q, SCHEMA)
        assert set(adom.candidates_for(t, Var("u"), fresh="own")) == {0, 1}

    def test_candidates_fresh_all(self, adom):
        adom.fresh_for(Var("x"))
        adom.fresh_for(Var("y"))
        q = cq([var("x")], [rel("R", var("x"), var("y"))])
        t = Tableau(q, SCHEMA)
        candidates = adom.candidates_for(t, Var("x"), fresh="all")
        assert len([v for v in candidates if is_fresh(v)]) == 2

    def test_candidates_fresh_none(self, adom):
        q = cq([var("x")], [rel("R", var("x"), var("y"))])
        t = Tableau(q, SCHEMA)
        candidates = adom.candidates_for(t, Var("x"), fresh="none")
        assert not any(is_fresh(v) for v in candidates)

    def test_extra_values_appended_without_duplicates(self, adom):
        q = cq([var("x")], [rel("R", var("x"), var("y"))])
        t = Tableau(q, SCHEMA)
        candidates = adom.candidates_for(t, Var("x"), fresh="none",
                                         extra=[1, "new"])
        assert candidates.count(1) == 1
        assert "new" in candidates


class TestValuationEnumeration:
    def test_counts(self, adom):
        q = cq([var("x"), var("y")], [rel("R", var("x"), var("y"))])
        t = Tableau(q, SCHEMA)
        adom.register_tableau(t)
        vals = list(iter_valid_valuations(t, adom, fresh="own"))
        # 4 candidates per variable (3 constants + own fresh)
        assert len(vals) == 16

    def test_inequality_pruning(self, adom):
        q = cq([var("x"), var("y")],
               [rel("R", var("x"), var("y")), neq(var("x"), var("y"))])
        t = Tableau(q, SCHEMA)
        vals = list(iter_valid_valuations(t, adom, fresh="own"))
        assert all(v[Var("x")] != v[Var("y")] for v in vals)
        # 16 total minus the 3 equal-constant pairs (fresh values differ)
        assert len(vals) == 13

    def test_constant_inequality(self, adom):
        q = cq([var("x")], [rel("R", var("x"), var("y")), neq(var("x"), 1)])
        t = Tableau(q, SCHEMA)
        vals = list(iter_valid_valuations(t, adom, fresh="own"))
        assert all(v[Var("x")] != 1 for v in vals)

    def test_unsatisfiable_tableau_yields_nothing(self, adom):
        q = cq([], [rel("R", var("x"), var("y")),
                    eq(var("x"), 1), eq(var("x"), 2)])
        t = Tableau(q, SCHEMA)
        assert list(iter_valid_valuations(t, adom)) == []

    def test_ground_tableau_yields_empty_valuation(self, adom):
        q = cq([], [rel("R", 1, 2)])
        t = Tableau(q, SCHEMA)
        assert list(iter_valid_valuations(t, adom)) == [{}]

    def test_finite_domain_variable_ranges_over_domain(self, adom):
        q = cq([var("u")], [rel("F", var("u"))])
        t = Tableau(q, SCHEMA)
        vals = list(iter_valid_valuations(t, adom, fresh="own"))
        assert {v[Var("u")] for v in vals} == {0, 1}

    def test_determinism(self, adom):
        q = cq([var("x"), var("y")], [rel("R", var("x"), var("y"))])
        t = Tableau(q, SCHEMA)
        first = list(iter_valid_valuations(t, adom, fresh="own"))
        second = list(iter_valid_valuations(t, adom, fresh="own"))
        assert first == second
