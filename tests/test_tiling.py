"""Tests for the 2ⁿ×2ⁿ tiling solver."""

import random

import pytest

from repro.errors import ReproError
from repro.solvers.tiling import (TilingInstance, random_tiling_instance,
                                  solve_tiling, verify_tiling)


def all_pairs(tiles):
    return {(a, b) for a in tiles for b in tiles}


class TestSolver:
    def test_fully_compatible_always_solvable(self):
        instance = TilingInstance(
            tiles=(0, 1), vertical=all_pairs((0, 1)),
            horizontal=all_pairs((0, 1)), first_tile=0, exponent=1)
        grid = solve_tiling(instance)
        assert grid is not None
        assert verify_tiling(instance, grid)

    def test_checkerboard(self):
        # Only alternating neighbours allowed: the unique solution is a
        # checkerboard starting with tile 0.
        instance = TilingInstance(
            tiles=(0, 1),
            vertical={(0, 1), (1, 0)},
            horizontal={(0, 1), (1, 0)},
            first_tile=0, exponent=1)
        grid = solve_tiling(instance)
        assert grid == [[0, 1], [1, 0]]
        assert verify_tiling(instance, grid)

    def test_unsolvable_instance(self):
        # Tile 0 has no compatible right neighbour.
        instance = TilingInstance(
            tiles=(0, 1), vertical=all_pairs((0, 1)),
            horizontal={(1, 1)}, first_tile=0, exponent=1)
        assert solve_tiling(instance) is None

    def test_exponent_zero_trivial(self):
        instance = TilingInstance(
            tiles=(0,), vertical=set(), horizontal=set(),
            first_tile=0, exponent=0)
        assert solve_tiling(instance) == [[0]]

    def test_exponent_two_board(self):
        instance = TilingInstance(
            tiles=(0, 1),
            vertical={(0, 1), (1, 0)},
            horizontal={(0, 1), (1, 0)},
            first_tile=0, exponent=2)
        grid = solve_tiling(instance)
        assert grid is not None
        assert len(grid) == 4
        assert verify_tiling(instance, grid)


class TestVerify:
    def test_rejects_wrong_first_tile(self):
        instance = TilingInstance(
            tiles=(0, 1), vertical=all_pairs((0, 1)),
            horizontal=all_pairs((0, 1)), first_tile=0, exponent=1)
        assert not verify_tiling(instance, [[1, 0], [0, 1]])

    def test_rejects_bad_adjacency(self):
        instance = TilingInstance(
            tiles=(0, 1), vertical={(0, 1), (1, 0)},
            horizontal={(0, 1), (1, 0)}, first_tile=0, exponent=1)
        assert not verify_tiling(instance, [[0, 0], [1, 0]])

    def test_rejects_wrong_shape(self):
        instance = TilingInstance(
            tiles=(0, 1), vertical=all_pairs((0, 1)),
            horizontal=all_pairs((0, 1)), first_tile=0, exponent=1)
        assert not verify_tiling(instance, [[0, 1]])


class TestConstruction:
    def test_first_tile_must_exist(self):
        with pytest.raises(ReproError):
            TilingInstance((0, 1), set(), set(), first_tile=7, exponent=1)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ReproError):
            TilingInstance((0, 1), set(), set(), first_tile=0, exponent=-1)

    def test_random_instances_solver_consistency(self):
        rng = random.Random(3)
        for _ in range(20):
            instance = random_tiling_instance(3, 0.6, 1, rng)
            grid = solve_tiling(instance)
            if grid is not None:
                assert verify_tiling(instance, grid)
