"""Tests for UCQ and ∃FO⁺ queries."""

import pytest

from repro.errors import QueryError
from repro.queries.atoms import eq, neq, rel
from repro.queries.cq import cq
from repro.queries.efo import (EFOQuery, and_, atom_f, exists, or_)
from repro.queries.terms import Var, var
from repro.queries.ucq import ucq
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema([
        RelationSchema("E", ["src", "dst"]),
        RelationSchema("L", ["node", "label"]),
    ])


@pytest.fixture
def graph(schema):
    return Instance(schema, {
        "E": {(1, 2), (2, 3)},
        "L": {(1, "a"), (2, "b"), (3, "a")},
    })


class TestUCQ:
    def test_union_semantics(self, graph):
        q = ucq([
            cq([var("x")], [rel("L", var("x"), "a")]),
            cq([var("x")], [rel("L", var("x"), "b")]),
        ])
        assert q.evaluate(graph) == frozenset({(1,), (2,), (3,)})

    def test_empty_union_rejected(self):
        with pytest.raises(QueryError):
            ucq([])

    def test_mixed_arity_rejected(self):
        with pytest.raises(QueryError):
            ucq([cq([var("x")], [rel("L", var("x"), "a")]),
                 cq([], [rel("E", 1, 2)])])

    def test_to_cq_disjuncts(self):
        disjuncts = [cq([var("x")], [rel("L", var("x"), "a")]),
                     cq([var("x")], [rel("L", var("x"), "b")])]
        assert ucq(disjuncts).to_cq_disjuncts() == disjuncts

    def test_holds_in(self, graph):
        q = ucq([cq([], [rel("E", 5, 6)]), cq([], [rel("E", 1, 2)])])
        assert q.holds_in(graph)

    def test_constants_and_variables_union(self):
        q = ucq([cq([var("x")], [rel("L", var("x"), "a")]),
                 cq([var("y")], [rel("L", var("y"), "b")])])
        assert q.constants() == {"a", "b"}
        assert q.variables() == {Var("x"), Var("y")}


class TestEFO:
    def test_disjunction_unfolds_to_ucq(self, graph):
        formula = or_(
            atom_f(rel("L", var("x"), "a")),
            atom_f(rel("L", var("x"), "b")))
        q = EFOQuery([var("x")], formula)
        assert len(q.to_ucq().disjuncts) == 2
        assert q.evaluate(graph) == frozenset({(1,), (2,), (3,)})

    def test_conjunction_of_disjunctions_distributes(self, graph):
        formula = and_(
            or_(atom_f(rel("L", var("x"), "a")),
                atom_f(rel("L", var("x"), "b"))),
            or_(atom_f(rel("E", var("x"), var("y"))),
                atom_f(rel("E", var("y"), var("x")))))
        q = EFOQuery([var("x")], exists([var("y")], formula))
        assert len(q.to_ucq().disjuncts) == 4
        # every labelled node with any incident edge
        assert q.evaluate(graph) == frozenset({(1,), (2,), (3,)})

    def test_quantifier_rectification_avoids_capture(self, graph):
        # (∃y E(x,y)) ∧ (∃y E(y,x)): the two y's are different variables.
        formula = and_(
            exists([var("y")], atom_f(rel("E", var("x"), var("y")))),
            exists([var("y")], atom_f(rel("E", var("y"), var("x")))))
        q = EFOQuery([var("x")], formula)
        # only node 2 has both an outgoing and an incoming edge
        assert q.evaluate(graph) == frozenset({(2,)})

    def test_equivalent_to_manual_ucq(self, graph):
        formula = or_(
            and_(atom_f(rel("E", var("x"), var("y"))),
                 atom_f(eq(var("y"), 2))),
            atom_f(rel("L", var("x"), "b")))
        efo = EFOQuery([var("x")], exists([var("y")], formula))
        manual = ucq([
            cq([var("x")], [rel("E", var("x"), var("y")), eq(var("y"), 2)]),
            cq([var("x")], [rel("L", var("x"), "b")]),
        ])
        assert efo.evaluate(graph) == manual.evaluate(graph)

    def test_inequality_in_efo(self, graph):
        formula = and_(atom_f(rel("L", var("x"), var("l"))),
                       atom_f(neq(var("l"), "a")))
        q = EFOQuery([var("x")], exists([var("l")], formula))
        assert q.evaluate(graph) == frozenset({(2,)})

    def test_ucq_cache_reused(self):
        q = EFOQuery([var("x")], atom_f(rel("L", var("x"), "a")))
        assert q.to_ucq() is q.to_ucq()

    def test_boolean_efo(self, graph):
        q = EFOQuery([], exists([var("x"), var("y")],
                                atom_f(rel("E", var("x"), var("y")))))
        assert q.holds_in(graph)

    def test_language_tags(self):
        q1 = cq([], [rel("E", 1, 2)])
        q2 = ucq([q1])
        q3 = EFOQuery([], atom_f(rel("E", 1, 2)))
        assert (q1.language, q2.language, q3.language) == ("CQ", "UCQ", "EFO")
