"""Tests for the CNF representation and DPLL solver."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.solvers.sat import (CNF, dpll_satisfiable, evaluate_cnf,
                               random_3sat)


def brute_force_satisfiable(cnf: CNF) -> bool:
    for values in itertools.product((False, True),
                                    repeat=cnf.num_variables):
        if evaluate_cnf(cnf, dict(zip(cnf.variables, values))):
            return True
    return False


class TestCNF:
    def test_variable_inference(self):
        cnf = CNF([(1, -3)])
        assert cnf.num_variables == 3
        assert cnf.variables == [1, 2, 3]

    def test_zero_literal_rejected(self):
        with pytest.raises(ReproError):
            CNF([(0,)])

    def test_num_variables_lower_than_literals_rejected(self):
        with pytest.raises(ReproError):
            CNF([(5,)], num_variables=2)

    def test_evaluate(self):
        cnf = CNF([(1, 2), (-1, 2)])
        assert evaluate_cnf(cnf, {1: True, 2: True})
        assert not evaluate_cnf(cnf, {1: True, 2: False})


class TestDPLL:
    def test_trivially_satisfiable(self):
        assert dpll_satisfiable(CNF([(1,)])) == {1: True}

    def test_trivially_unsatisfiable(self):
        assert dpll_satisfiable(CNF([(1,), (-1,)])) is None

    def test_empty_formula_satisfiable(self):
        assert dpll_satisfiable(CNF([], num_variables=2)) is not None

    def test_model_is_verified(self):
        cnf = CNF([(1, 2, 3), (-1, -2), (-2, -3), (2,)])
        model = dpll_satisfiable(cnf)
        assert model is not None
        assert evaluate_cnf(cnf, model)

    def test_assumptions_respected(self):
        cnf = CNF([(1, 2)])
        model = dpll_satisfiable(cnf, assumptions={1: False})
        assert model is not None
        assert model[1] is False
        assert model[2] is True

    def test_conflicting_assumptions(self):
        cnf = CNF([(1,)])
        assert dpll_satisfiable(cnf, assumptions={1: False}) is None

    def test_pigeonhole_unsat(self):
        # 3 pigeons, 2 holes: variable p*2+h+1 = pigeon p in hole h.
        def v(p, h):
            return p * 2 + h + 1
        clauses = [(v(p, 0), v(p, 1)) for p in range(3)]
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    clauses.append((-v(p1, h), -v(p2, h)))
        assert dpll_satisfiable(CNF(clauses)) is None

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), num_clauses=st.integers(1, 20))
    def test_agrees_with_brute_force(self, seed, num_clauses):
        cnf = random_3sat(5, num_clauses, random.Random(seed))
        model = dpll_satisfiable(cnf)
        if model is None:
            assert not brute_force_satisfiable(cnf)
        else:
            assert evaluate_cnf(cnf, model)


class TestRandom3SAT:
    def test_shape(self):
        cnf = random_3sat(6, 10, random.Random(0))
        assert len(cnf.clauses) == 10
        assert all(len(c) == 3 for c in cnf.clauses)
        assert all(len({abs(l) for l in c}) == 3 for c in cnf.clauses)

    def test_deterministic_under_seed(self):
        a = random_3sat(6, 10, random.Random(42))
        b = random_3sat(6, 10, random.Random(42))
        assert a == b

    def test_too_few_variables_rejected(self):
        with pytest.raises(ReproError):
            random_3sat(2, 1, random.Random(0))
