"""Tests for the Theorem 3.1 undecidability encodings (2-head DFA, FO)."""

import pytest

from repro.constraints.containment import satisfies_all
from repro.core.bounded import brute_force_rcdp
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.errors import UndecidableConfigurationError
from repro.queries.atoms import rel
from repro.queries.fo import FOQuery, fo_and, fo_atom, fo_not
from repro.queries.terms import var
from repro.reductions.dfa_encodings import (encode_word,
                                            reduce_dfa_emptiness_to_rcdp,
                                            reduce_fo_satisfiability_to_rcdp)
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.solvers.twohead import EPSILON, TwoHeadDFA


def zeros_then_ones() -> TwoHeadDFA:
    """Accepts 0ⁿ1ⁿ, n ≥ 1."""
    return TwoHeadDFA(
        states={"s", "m", "acc"},
        transitions={
            ("s", "0", "0"): ("s", 0, 1),
            ("s", "0", "1"): ("m", 1, 1),
            ("m", "0", "1"): ("m", 1, 1),
            ("m", "1", EPSILON): ("acc", 0, 0),
        },
        initial="s", accepting="acc")


def dead_machine() -> TwoHeadDFA:
    return TwoHeadDFA(states={"q", "acc"}, transitions={},
                      initial="q", accepting="acc")


class TestWordLevelAgreement:
    """The FP query fires on an encoding iff the automaton accepts."""

    @pytest.mark.parametrize("word, expected", [
        ("01", True), ("0011", True), ("000111", True),
        ("", False), ("0", False), ("1", False), ("10", False),
        ("011", False), ("0101", False),
    ])
    def test_query_fires_iff_accepted(self, word, expected):
        automaton = zeros_then_ones()
        instance = reduce_dfa_emptiness_to_rcdp(automaton)
        encoding = encode_word(word, instance.schema)
        assert bool(instance.query.evaluate(encoding)) == expected
        assert automaton.accepts(word) == expected

    def test_encodings_are_well_formed(self):
        instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())
        for word in ("", "0", "01", "0011"):
            encoding = encode_word(word, instance.schema)
            assert satisfies_all(encoding, instance.master,
                                 list(instance.constraints))

    def test_malformed_encoding_violates_constraints(self):
        instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())
        # position 0 carries both a 0 and a 1 → violates V1
        bad = encode_word("01", instance.schema).with_tuples("P", [(0,)])
        assert not satisfies_all(bad, instance.master,
                                 list(instance.constraints))

    def test_non_functional_f_violates_constraints(self):
        instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())
        bad = encode_word("01", instance.schema).with_tuples("F", [(0, 5)])
        assert not satisfies_all(bad, instance.master,
                                 list(instance.constraints))


class TestRCDPFraming:
    def test_exact_decider_refuses_fp(self):
        instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())
        with pytest.raises(UndecidableConfigurationError):
            decide_rcdp(instance.query, instance.database, instance.master,
                        list(instance.constraints))

    def test_nonempty_language_bounded_incomplete(self):
        # L(A) ∋ "01": the empty database is NOT complete, and bounded
        # search with enough positions finds the counterexample.
        instance = reduce_dfa_emptiness_to_rcdp(zeros_then_ones())
        result = brute_force_rcdp(
            instance.query, instance.database, instance.master,
            list(instance.constraints), max_extra_facts=5,
            values=[0, 1, 2])
        assert result.status is RCDPStatus.INCOMPLETE

    def test_empty_language_bounded_complete(self):
        instance = reduce_dfa_emptiness_to_rcdp(dead_machine())
        result = brute_force_rcdp(
            instance.query, instance.database, instance.master,
            list(instance.constraints), max_extra_facts=3,
            values=[0, 1])
        assert result.status is RCDPStatus.COMPLETE_UP_TO_BOUND


class TestFOSatisfiability:
    SCHEMA = DatabaseSchema([RelationSchema("P", ["x"]),
                             RelationSchema("R", ["x", "y"])])

    def test_satisfiable_query_incomplete(self):
        q = FOQuery([var("x")], fo_atom(rel("P", var("x"))))
        instance = reduce_fo_satisfiability_to_rcdp(q, self.SCHEMA)
        result = brute_force_rcdp(
            instance.query, instance.database, instance.master,
            list(instance.constraints), max_extra_facts=1, values=[0])
        assert result.status is RCDPStatus.INCOMPLETE

    def test_unsatisfiable_query_complete_up_to_bound(self):
        # P(x) ∧ ¬P(x) — no finite model makes it true.
        q = FOQuery([var("x")], fo_and(
            fo_atom(rel("P", var("x"))),
            fo_not(fo_atom(rel("P", var("x"))))))
        instance = reduce_fo_satisfiability_to_rcdp(q, self.SCHEMA)
        result = brute_force_rcdp(
            instance.query, instance.database, instance.master,
            list(instance.constraints), max_extra_facts=2, values=[0, 1])
        assert result.status is RCDPStatus.COMPLETE_UP_TO_BOUND

    def test_boolean_closure(self):
        q = FOQuery([var("x")], fo_atom(rel("P", var("x"))))
        instance = reduce_fo_satisfiability_to_rcdp(q, self.SCHEMA)
        assert instance.query.is_boolean

    def test_exact_decider_refuses_fo(self):
        q = FOQuery([var("x")], fo_atom(rel("P", var("x"))))
        instance = reduce_fo_satisfiability_to_rcdp(q, self.SCHEMA)
        with pytest.raises(UndecidableConfigurationError):
            decide_rcdp(instance.query, instance.database,
                        instance.master, list(instance.constraints))
