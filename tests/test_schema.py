"""Tests for relation and database schemas."""

import pytest

from repro.errors import DomainError, SchemaError
from repro.relational.domain import BOOLEAN, INFINITE
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)


class TestAttribute:
    def test_default_domain_is_infinite(self):
        assert Attribute("x").domain is INFINITE

    def test_explicit_finite_domain(self):
        attr = Attribute("flag", BOOLEAN)
        assert not attr.domain.is_infinite

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestRelationSchema:
    def test_string_attributes_promoted(self):
        rel = RelationSchema("R", ["a", "b"])
        assert rel.arity == 2
        assert rel.attribute_names == ("a", "b")

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_nullary_relation_allowed(self):
        assert RelationSchema("E").arity == 0

    def test_position_of(self):
        rel = RelationSchema("R", ["a", "b", "c"])
        assert rel.position_of("b") == 1

    def test_position_of_unknown_raises(self):
        rel = RelationSchema("R", ["a"])
        with pytest.raises(SchemaError):
            rel.position_of("z")

    def test_domain_at(self):
        rel = RelationSchema("R", [Attribute("a"), Attribute("f", BOOLEAN)])
        assert rel.domain_at(0).is_infinite
        assert not rel.domain_at(1).is_infinite

    def test_domain_at_out_of_range(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"]).domain_at(3)

    def test_validate_tuple_arity(self):
        rel = RelationSchema("R", ["a", "b"])
        with pytest.raises(SchemaError):
            rel.validate_tuple(("x",))

    def test_validate_tuple_domain(self):
        rel = RelationSchema("R", [Attribute("f", BOOLEAN)])
        rel.validate_tuple((1,))
        with pytest.raises(DomainError):
            rel.validate_tuple(("not-bool",))

    def test_equality_and_hash(self):
        a = RelationSchema("R", ["x"])
        b = RelationSchema("R", ["x"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != RelationSchema("R", ["y"])


class TestDatabaseSchema:
    def test_relation_lookup(self):
        schema = DatabaseSchema([RelationSchema("R", ["a"])])
        assert schema.relation("R").arity == 1
        assert "R" in schema
        assert "S" not in schema

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", ["a"]),
                            RelationSchema("R", ["b"])])

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([]).relation("R")

    def test_extended_with(self):
        schema = DatabaseSchema([RelationSchema("R", ["a"])])
        bigger = schema.extended_with(RelationSchema("S", ["b"]))
        assert "S" in bigger
        assert "S" not in schema  # original untouched

    def test_merged_with_compatible(self):
        r = RelationSchema("R", ["a"])
        s = RelationSchema("S", ["b"])
        merged = DatabaseSchema([r]).merged_with(DatabaseSchema([r, s]))
        assert set(merged.relation_names) == {"R", "S"}

    def test_merged_with_conflicting_raises(self):
        left = DatabaseSchema([RelationSchema("R", ["a"])])
        right = DatabaseSchema([RelationSchema("R", ["a", "b"])])
        with pytest.raises(SchemaError):
            left.merged_with(right)

    def test_iteration_order_preserved(self):
        schema = DatabaseSchema([RelationSchema("B", ["x"]),
                                 RelationSchema("A", ["y"])])
        assert schema.relation_names == ("B", "A")

    def test_len(self):
        assert len(DatabaseSchema([RelationSchema("R", ["a"])])) == 1
