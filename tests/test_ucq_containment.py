"""Tests for Sagiv–Yannakakis UCQ containment."""

import pytest

from repro.errors import QueryError
from repro.queries.atoms import eq, rel
from repro.queries.containment import is_ucq_contained_in
from repro.queries.cq import cq
from repro.queries.efo import EFOQuery, atom_f, or_
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([
    RelationSchema("L", ["node", "label"]),
    RelationSchema("E", ["src", "dst"]),
])


def labelled(label):
    return cq([var("x")], [rel("L", var("x"), label)])


def any_label():
    return cq([var("x")], [rel("L", var("x"), var("t"))])


class TestUCQContainment:
    def test_union_contained_in_generalization(self):
        union = ucq([labelled("a"), labelled("b")])
        assert is_ucq_contained_in(union, ucq([any_label()]), SCHEMA)

    def test_generalization_not_contained_in_union(self):
        union = ucq([labelled("a"), labelled("b")])
        assert not is_ucq_contained_in(ucq([any_label()]), union, SCHEMA)

    def test_sub_union_contained(self):
        small = ucq([labelled("a")])
        big = ucq([labelled("a"), labelled("b")])
        assert is_ucq_contained_in(small, big, SCHEMA)
        assert not is_ucq_contained_in(big, small, SCHEMA)

    def test_each_disjunct_needs_a_home(self):
        # {a, c} ⊄ {a, b} because 'c' has no covering disjunct.
        left = ucq([labelled("a"), labelled("c")])
        right = ucq([labelled("a"), labelled("b")])
        assert not is_ucq_contained_in(left, right, SCHEMA)

    def test_plain_cqs_accepted(self):
        assert is_ucq_contained_in(labelled("a"), any_label(), SCHEMA)

    def test_unsatisfiable_disjunct_ignored(self):
        broken = cq([var("x")],
                    [rel("L", var("x"), var("t")),
                     eq(var("t"), "a"), eq(var("t"), "b")])
        union = ucq([labelled("a"), broken])
        assert is_ucq_contained_in(union, ucq([labelled("a")]), SCHEMA)

    def test_efo_through_unfolding(self):
        formula = or_(atom_f(rel("L", var("x"), "a")),
                      atom_f(rel("L", var("x"), "b")))
        efo = EFOQuery([var("x")], formula)
        assert is_ucq_contained_in(efo, any_label(), SCHEMA)

    def test_arity_mismatch_rejected(self):
        pair = cq([var("x"), var("y")], [rel("E", var("x"), var("y"))])
        with pytest.raises(QueryError):
            is_ucq_contained_in(labelled("a"), pair, SCHEMA)

    def test_cross_shaped_containment(self):
        # path-2 ⊆ edge-query (project endpoints of first edge).
        edge = cq([var("x"), var("y")], [rel("E", var("x"), var("y"))])
        path2_start = cq([var("x"), var("y")],
                         [rel("E", var("x"), var("y")),
                          rel("E", var("y"), var("z"))])
        assert is_ucq_contained_in(ucq([path2_start]), ucq([edge]),
                                   SCHEMA)
        assert not is_ucq_contained_in(ucq([edge]), ucq([path2_start]),
                                       SCHEMA)
