"""Tests for the brute-force oracles and bounded FO/FP procedures."""

import pytest

from repro.constraints.ind import InclusionDependency
from repro.core.bounded import (brute_force_rcdp, brute_force_rcqp,
                                candidate_fact_pool, default_value_pool)
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.errors import UndecidableConfigurationError
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.datalog import DatalogQuery, rule
from repro.queries.fo import FOQuery, fo_and, fo_atom, fo_exists, fo_not
from repro.queries.terms import var
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
DM = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})


def ind():
    return InclusionDependency("S", ["cid"], "M", ["cid"]
                               ).to_containment_constraint(SCHEMA,
                                                           MASTER_SCHEMA)


class TestPools:
    def test_candidate_fact_pool_respects_finite_domains(self):
        schema = DatabaseSchema([
            RelationSchema("F", [Attribute("b", BOOLEAN)])])
        pool = candidate_fact_pool(schema, values=["x"])
        assert set(pool) == {("F", (0,)), ("F", (1,))}

    def test_candidate_fact_pool_infinite_columns_use_values(self):
        pool = candidate_fact_pool(SCHEMA, values=[1, 2])
        assert len(pool) == 4

    def test_default_value_pool_contains_fresh(self):
        q = cq([], [rel("S", "e0", var("c"))])
        pool = default_value_pool(SCHEMA, (DM,), (q,), fresh_count=3)
        assert "e0" in pool
        assert len(pool) == len(set(pool))


class TestBruteForceRCDPAgreesWithDecider:
    def test_complete_case(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1"), ("e0", "c2")}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        exact = decide_rcdp(q, db, DM, [ind()])
        brute = brute_force_rcdp(q, db, DM, [ind()], max_extra_facts=1)
        assert exact.status is RCDPStatus.COMPLETE
        assert brute.status is RCDPStatus.COMPLETE_UP_TO_BOUND

    def test_incomplete_case(self):
        db = Instance(SCHEMA, {"S": {("e0", "c1")}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        exact = decide_rcdp(q, db, DM, [ind()])
        brute = brute_force_rcdp(q, db, DM, [ind()], max_extra_facts=1)
        assert exact.status is RCDPStatus.INCOMPLETE
        assert brute.status is RCDPStatus.INCOMPLETE
        extended = brute.certificate.apply_to(db)
        assert q.evaluate(extended) != q.evaluate(db)

    def test_works_for_fo_queries(self):
        # FO query: customers NOT supported by e0 — RCDP undecidable in
        # general, but brute force still finds counterexamples.
        q = FOQuery([var("c")], fo_and(
            fo_exists([var("e")], fo_atom(rel("S", var("e"), var("c")))),
            fo_not(fo_atom(rel("S", "e0", var("c"))))))
        db = Instance(SCHEMA, {"S": {("e1", "c1")}})
        result = brute_force_rcdp(q, db, DM, [ind()], max_extra_facts=1)
        assert result.status is RCDPStatus.INCOMPLETE

    def test_works_for_fp_queries(self):
        q = DatalogQuery(
            [rule(rel("T", var("c")), rel("S", "e0", var("c")))], goal="T")
        db = Instance(SCHEMA, {"S": {("e0", "c1"), ("e0", "c2")}})
        result = brute_force_rcdp(q, db, DM, [ind()], max_extra_facts=2)
        assert result.status is RCDPStatus.COMPLETE_UP_TO_BOUND


class TestBruteForceRCQP:
    def test_finds_witness(self):
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        result = brute_force_rcqp(q, DM, [ind()], SCHEMA,
                                  max_database_size=2)
        assert result.status is RCQPStatus.NONEMPTY
        verdict = decide_rcdp(q, result.witness, DM, [ind()])
        assert verdict.status is RCDPStatus.COMPLETE

    def test_no_witness_up_to_bound(self):
        q = cq([var("e")], [rel("S", var("e"), var("c"))])  # eid unbounded
        result = brute_force_rcqp(q, DM, [ind()], SCHEMA,
                                  max_database_size=1)
        assert result.status is RCQPStatus.EMPTY_UP_TO_BOUND

    def test_undecidable_needs_completeness_bound(self):
        q = DatalogQuery(
            [rule(rel("T", var("c")), rel("S", "e0", var("c")))], goal="T")
        with pytest.raises(UndecidableConfigurationError):
            brute_force_rcqp(q, DM, [ind()], SCHEMA, max_database_size=1)

    def test_undecidable_with_bound_reports_evidence(self):
        q = DatalogQuery(
            [rule(rel("T", var("c")), rel("S", "e0", var("c")))], goal="T")
        result = brute_force_rcqp(q, DM, [ind()], SCHEMA,
                                  max_database_size=2,
                                  completeness_bound=1)
        assert result.status is RCQPStatus.NONEMPTY
        assert "undecidable" in result.explanation
