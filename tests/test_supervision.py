"""Tests for fault-tolerant parallel execution.

The supervised pool's contract (``docs/PARALLEL.md``, "Fault
tolerance"): for any injected crash schedule with per-attempt crash
probability < 1, a supervised run terminates with the verdict, witness,
and full-enumeration statistics of the serial run; retried shards draw
from the same governor budget ledger; and budget exhaustion under
faults still yields a resumable checkpoint, never a crash-shaped
error.  These tests drive :class:`~repro.parallel.supervise.
ShardSupervisor` through every recovery path — deterministic crashes,
probabilistic chaos schedules, hangs, dropped outcomes, poison
quarantine — plus the fail-fast legacy mode and the CLI surface.
"""

import argparse
import json

import pytest

from repro.cli import (EXIT_POOL_FAILURE, _governor_from_args,
                       _retry_from_args, main)
from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.core.results import RCDPStatus
from repro.errors import ReproError, WorkerPoolError
from repro.obs import Observation, check_trace, trace_records
from repro.runtime import (Budget, CRASH_EXIT_CODE, ExecutionGovernor,
                           FaultInjector, RetryPolicy)

from tests.test_parallel_differential import (COMPLETE_DB, COMPLETE_QUERY,
                                              DM, IND, WITNESS_DB,
                                              WITNESS_QUERY,
                                              _assert_same_rcdp)

#: Fast-failure policy for tests: tiny backoff, tight heartbeat.
FAST = dict(backoff_base=0.001, backoff_cap=0.01, heartbeat=0.02)


def _serial_complete():
    result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND])
    assert result.status is RCDPStatus.COMPLETE
    return result


class TestRetryPolicy:
    def test_defaults_are_valid_and_supervised(self):
        policy = RetryPolicy()
        assert policy.supervise
        assert policy.max_retries == 2
        assert policy.on_poison == "serial"

    def test_disabled_is_the_legacy_fail_fast_pool(self):
        policy = RetryPolicy.disabled()
        assert not policy.supervise
        assert policy.max_retries == 0
        assert policy.on_poison == "error"

    def test_effective_silent_after(self):
        assert RetryPolicy(heartbeat=0.5).effective_silent_after == 20.0
        assert RetryPolicy(silent_after=3.0).effective_silent_after == 3.0

    @pytest.mark.parametrize("kwargs", [
        dict(max_retries=-1),
        dict(backoff_base=-0.1),
        dict(backoff_base=1.0, backoff_cap=0.5),
        dict(backoff_jitter=-0.5),
        dict(heartbeat=0.0),
        dict(silent_after=0.0),
        dict(on_poison="panic"),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ReproError):
            RetryPolicy(**kwargs)

    def test_backoff_is_deterministic_monotone_and_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.4,
                             backoff_jitter=0.0)
        delays = [policy.backoff_delay(n) for n in range(5)]
        assert delays == [policy.backoff_delay(n) for n in range(5)]
        assert delays == sorted(delays)
        assert delays[-1] == 0.4
        jittered = RetryPolicy(backoff_base=0.1, backoff_jitter=0.5)
        assert (jittered.backoff_delay(0, key=0)
                == jittered.backoff_delay(0, key=0))
        assert 0.1 <= jittered.backoff_delay(0, key=0) <= 0.15


class TestProcessFaults:
    def test_unarmed_process_faults_are_inert(self):
        """Serial runs and parent governors carry the injector without
        ever arming it — certain-crash settings must not fire."""
        governor = ExecutionGovernor(faults=FaultInjector(
            crash_after=0, crash_probability=1.0, drop_outcome=1.0))
        result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                             governor=governor)
        assert result.status is RCDPStatus.COMPLETE
        assert not governor.faults.should_drop_outcome()

    def test_reseeded_copy_is_fresh_and_disarmed(self):
        faults = FaultInjector(crash_probability=0.5, seed=3)
        faults.arm_process_faults()
        copy = faults.reseeded(5)
        assert copy.seed == 8
        assert not copy.process_armed
        assert faults.process_armed

    @pytest.mark.parametrize("kwargs", [
        dict(crash_probability=1.5),
        dict(drop_outcome=-0.1),
        dict(crash_after=-1),
        dict(hang_after=-1),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ReproError):
            FaultInjector(**kwargs)


class TestSupervisedRecovery:
    def test_deterministic_crash_recovers_exact_statistics(self):
        """Every attempt crashes after 3 ticks, so the shard burns its
        retry budget and falls to quarantine — the verdict and the
        full-enumeration counters must still equal the serial run's."""
        serial = _serial_complete()
        governor = ExecutionGovernor(
            faults=FaultInjector(crash_after=3),
            retry=RetryPolicy(max_retries=1, **FAST))
        result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                             workers=2, governor=governor)
        _assert_same_rcdp(serial, result)

    def test_dropped_witness_outcome_is_recovered(self):
        """A worker that finds the witness, publishes its beacon rank,
        and then loses its outcome must not wedge the run: the retry
        re-examines the published candidate (rank == cutoff is *this*
        witness, not a better one) and re-reports it."""
        serial = decide_rcdp(WITNESS_QUERY, WITNESS_DB, DM, [IND])
        assert serial.status is RCDPStatus.INCOMPLETE
        governor = ExecutionGovernor(
            faults=FaultInjector(drop_outcome=1.0),
            retry=RetryPolicy(max_retries=1, **FAST))
        result = decide_rcdp(WITNESS_QUERY, WITNESS_DB, DM, [IND],
                             workers=2, governor=governor)
        _assert_same_rcdp(serial, result)

    def test_hung_worker_is_detected_and_recovered(self):
        serial = _serial_complete()
        governor = ExecutionGovernor(
            faults=FaultInjector(hang_after=4),
            retry=RetryPolicy(max_retries=0, silent_after=0.3, **FAST))
        result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                             workers=2, governor=governor)
        _assert_same_rcdp(serial, result)

    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chaos_schedule_matches_serial(self, workers, seed):
        """The acceptance property: any crash schedule with per-attempt
        probability < 1 terminates with the serial verdict, witness,
        and exact full-enumeration statistics."""
        serial = _serial_complete()
        governor = ExecutionGovernor(
            faults=FaultInjector(crash_probability=0.15, seed=seed),
            retry=RetryPolicy(max_retries=2, **FAST))
        result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                             workers=workers, governor=governor)
        _assert_same_rcdp(serial, result)

    def test_missing_answers_under_chaos(self):
        """Accumulating-data kind: per-shard rank/answer pairs must
        survive commit-and-retry without duplication or loss."""
        serial = missing_answers_report(WITNESS_QUERY, WITNESS_DB, DM,
                                        [IND])
        governor = ExecutionGovernor(
            faults=FaultInjector(crash_probability=0.2, seed=1),
            retry=RetryPolicy(max_retries=2, **FAST))
        parallel = missing_answers_report(WITNESS_QUERY, WITNESS_DB, DM,
                                          [IND], workers=2,
                                          governor=governor)
        assert parallel.answers == serial.answers
        assert parallel.exhaustive == serial.exhaustive

    def test_budget_ledger_holds_across_attempts_and_legs(self):
        """Crashing legs under a tiny budget: every exhaustion yields a
        resumable checkpoint (never a crash-shaped error), no leg
        overdraws its ledger, and the legs converge to the serial
        verdict with exact cumulative statistics."""
        serial = _serial_complete()
        policy = RetryPolicy(max_retries=1, heartbeat=0.005,
                             backoff_base=0.001, backoff_cap=0.01)
        checkpoint, legs = None, 0
        while True:
            governor = ExecutionGovernor(
                budget=Budget(limit=6),
                faults=FaultInjector(crash_probability=0.1, seed=legs),
                retry=policy)
            result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                                 workers=2, governor=governor,
                                 resume_from=checkpoint,
                                 on_exhausted="partial")
            legs += 1
            assert governor.budget.remaining >= 0, "ledger overdrawn"
            if result.status is not RCDPStatus.EXHAUSTED:
                break
            checkpoint = result.checkpoint
            assert checkpoint is not None, "exhaustion without checkpoint"
            assert legs < 50, "budget-resume loop made no progress"
        assert legs > 1, "budget=6 should force at least one resume"
        _assert_same_rcdp(serial, result)

    def test_poison_error_mode_raises_pool_error(self):
        governor = ExecutionGovernor(
            faults=FaultInjector(crash_after=3),
            retry=RetryPolicy(max_retries=0, on_poison="error", **FAST))
        with pytest.raises(WorkerPoolError) as excinfo:
            decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                        workers=2, governor=governor)
        assert "poison" in excinfo.value.details
        assert "search worker(s) failed" in excinfo.value.summary

    def test_disabled_policy_fails_fast_on_crash(self):
        governor = ExecutionGovernor(
            faults=FaultInjector(crash_after=3),
            retry=RetryPolicy.disabled())
        with pytest.raises(WorkerPoolError) as excinfo:
            decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                        workers=2, governor=governor)
        assert f"exited with code {CRASH_EXIT_CODE}" in \
            excinfo.value.details

    def test_spawn_start_method_crash_recovery(self, monkeypatch):
        """Recovery also works when respawned workers pay full module
        re-import (the default policy's generous silence horizon must
        not misjudge spawn startup as a hang)."""
        import multiprocessing
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn unavailable")
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        serial = _serial_complete()
        governor = ExecutionGovernor(
            faults=FaultInjector(crash_after=3),
            retry=RetryPolicy(max_retries=1, backoff_base=0.001,
                              backoff_cap=0.01))
        result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                             workers=2, governor=governor)
        _assert_same_rcdp(serial, result)


class TestSupervisionObservability:
    def test_counters_events_and_trace_accounting(self, tmp_path):
        """A crashy supervised run records crash/retry/quarantine
        counters, emits supervisor spans, and still writes a trace that
        passes the full ``check_trace`` accounting."""
        governor = ExecutionGovernor(
            budget=Budget(),
            faults=FaultInjector(crash_after=3),
            retry=RetryPolicy(max_retries=1, **FAST))
        Observation.attach(governor)
        result = decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND],
                             workers=2, governor=governor)
        assert result.status is RCDPStatus.COMPLETE
        observation = governor.obs
        observation.finalize(governor, result.statistics)
        counters = observation.metrics.counters
        assert counters.get("parallel.crash", 0) >= 2
        assert counters.get("parallel.retry", 0) >= 1
        assert counters.get("parallel.quarantine", 0) >= 1
        assert counters.get("parallel.shard.0.crash", 0) >= 1
        payload = observation.payload()
        names = {record["name"] for record in payload["spans"]}
        assert "supervisor.retry" in names
        assert "supervisor.quarantine" in names
        records = trace_records(
            payload["spans"], procedure="rcdp", command="test",
            metrics=payload["metrics"], statistics=result.statistics,
            ticks=dict(governor.budget.snapshot()),
            verdict=str(result.status), exhausted=False)
        assert check_trace(records) == []

    def test_quarantined_attempt_gets_its_own_lane(self):
        """Attempt K > 0 spans land in lane ``shard-N.aK`` so per-lane
        overlap checks stay valid across overlapping attempts."""
        governor = ExecutionGovernor(
            budget=Budget(),
            faults=FaultInjector(crash_after=3),
            retry=RetryPolicy(max_retries=0, **FAST))
        Observation.attach(governor)
        decide_rcdp(COMPLETE_QUERY, COMPLETE_DB, DM, [IND], workers=2,
                    governor=governor)
        lanes = {(record.get("attrs") or {}).get("lane")
                 for record in governor.obs.tracer.to_records()
                 if record["name"] == "shard"}
        # Both shards crash their only attempt and are quarantined as
        # attempt 1; the crashed attempt-0 spans died with the workers.
        assert lanes == {"shard-0.a1", "shard-1.a1"}


class TestSupervisionCLI:
    @pytest.fixture
    def bundle(self, tmp_path):
        from repro.constraints.containment import (ContainmentConstraint,
                                                   Projection)
        from repro.io.json_io import dump_bundle
        from repro.queries.atoms import rel
        from repro.queries.cq import cq
        from repro.queries.terms import var
        from repro.relational.instance import Instance
        from repro.relational.schema import DatabaseSchema, RelationSchema

        schema = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
        master_schema = DatabaseSchema([RelationSchema("M", ["cid"])])
        cc = ContainmentConstraint(
            cq([var("c")], [rel("S", var("e"), var("c"))]),
            Projection.on("M", [0]), name="ind")
        path = tmp_path / "bundle.json"
        dump_bundle(str(path), schema=schema,
                    master_schema=master_schema,
                    database=Instance(schema, {"S": {("e0", "c1"),
                                                     ("e0", "c2")}}),
                    master=Instance(master_schema,
                                    {"M": {("c1",), ("c2",)}}),
                    query=cq([var("c")], [rel("S", "e0", var("c"))]),
                    constraints=[cc])
        return str(path)

    def test_retry_flags_accepted_end_to_end(self, bundle, capsys):
        assert main(["rcdp", bundle, "--workers", "2",
                     "--max-retries", "1", "--heartbeat", "0.1"]) == 0
        assert "complete" in capsys.readouterr().out

    def test_no_retry_flag_accepted(self, bundle, capsys):
        assert main(["rcdp", bundle, "--no-retry"]) == 0

    def test_no_retry_conflicts_with_retry_flags(self, bundle, capsys):
        assert main(["rcdp", bundle, "--no-retry",
                     "--max-retries", "1"]) == 2
        assert "--no-retry conflicts" in capsys.readouterr().err

    def test_pool_failure_maps_to_exit_code_4(self, bundle, capsys,
                                              monkeypatch):
        import repro.cli as cli_module

        def boom(*args, **kwargs):
            raise WorkerPoolError(
                "2 of 2 search worker(s) failed",
                details="[shard 0] traceback\n[shard 1] traceback")

        monkeypatch.setattr(cli_module, "decide_rcdp", boom)
        assert main(["rcdp", bundle]) == EXIT_POOL_FAILURE
        err = capsys.readouterr().err
        assert err.strip() == ("error: worker pool failure — "
                               "2 of 2 search worker(s) failed")

    def test_retry_from_args_resolution(self):
        def namespace(**kwargs):
            base = dict(max_retries=None, heartbeat=None, no_retry=False)
            base.update(kwargs)
            return argparse.Namespace(**base)

        assert _retry_from_args(namespace()) is None
        policy = _retry_from_args(namespace(max_retries=5))
        assert policy.max_retries == 5
        assert policy.heartbeat == RetryPolicy().heartbeat
        policy = _retry_from_args(namespace(heartbeat=0.5))
        assert policy.heartbeat == 0.5
        assert policy.max_retries == RetryPolicy().max_retries
        assert not _retry_from_args(namespace(no_retry=True)).supervise

    def test_retry_flags_force_a_governor(self):
        args = argparse.Namespace(
            budget=None, timeout=None, trace=None, metrics=None,
            profile=False, stats=False, max_retries=3, heartbeat=None,
            no_retry=False)
        governor = _governor_from_args(args)
        assert governor is not None
        assert governor.retry.max_retries == 3

    def test_metrics_export_includes_supervision_counters(
            self, bundle, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(["rcdp", bundle, "--workers", "2",
                     "--metrics", str(metrics_path)]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"].get("parallel.shards") == 2
