"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.io.json_io import dump_bundle
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])


@pytest.fixture
def bundle_path(tmp_path):
    def write(support):
        database = Instance(SCHEMA, {"S": set(support)})
        master = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        cc = ContainmentConstraint(
            cq([var("c")], [rel("S", var("e"), var("c"))]),
            Projection.on("M", [0]), name="ind")
        path = tmp_path / "bundle.json"
        dump_bundle(str(path), schema=SCHEMA,
                    master_schema=MASTER_SCHEMA, database=database,
                    master=master, query=q, constraints=[cc])
        return str(path)

    return write


class TestRCDPCommand:
    def test_complete_exit_zero(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1"), ("e0", "c2")})
        assert main(["rcdp", path]) == 0
        assert "complete" in capsys.readouterr().out

    def test_incomplete_exit_one_with_certificate(self, bundle_path,
                                                  capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["rcdp", path]) == 1
        out = capsys.readouterr().out
        assert "incomplete" in out
        assert "counterexample" in out


class TestRCQPCommand:
    def test_nonempty_exit_zero_with_witness(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["rcqp", path]) == 0
        out = capsys.readouterr().out
        assert "nonempty" in out
        assert "witness" in out


class TestCompleteCommand:
    def test_suggests_missing_facts(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["complete", path]) == 0
        out = capsys.readouterr().out
        assert "collect" in out
        assert "c2" in out


class TestDemoCommand:
    def test_runs_and_prints_audit(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "master data" in out
        assert "verdict" in out


class TestErrors:
    def test_missing_bundle_file(self, capsys):
        with pytest.raises(SystemExit):
            main(["rcdp"])  # argparse: missing argument

    def test_broken_bundle_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": {"relations": []}, '
                        '"master_schema": {"relations": []}, '
                        '"database": {}, "master": {}, '
                        '"query": {"language": "CQ", "text": ""}, '
                        '"constraints": []}')
        assert main(["rcdp", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestAuditCommand:
    def test_trustworthy_exit_zero(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1"), ("e0", "c2")})
        assert main(["audit", path]) == 0
        assert "trustworthy" in capsys.readouterr().out

    def test_collect_data_exit_one(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["audit", path]) == 1
        out = capsys.readouterr().out
        assert "collect" in out


class TestMissingCommand:
    def test_lists_missing_answers(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["missing", path]) == 1
        out = capsys.readouterr().out
        assert "c2" in out

    def test_complete_database_reports_none(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1"), ("e0", "c2")})
        assert main(["missing", path]) == 0
        assert "relatively complete" in capsys.readouterr().out

    def test_limit_flag(self, bundle_path, capsys):
        path = bundle_path(set())
        assert main(["missing", path, "--limit", "1"]) == 1
        out = capsys.readouterr().out
        assert "1 answer(s)" in out
