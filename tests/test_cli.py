"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.io.json_io import dump_bundle
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])


@pytest.fixture
def bundle_path(tmp_path):
    def write(support):
        database = Instance(SCHEMA, {"S": set(support)})
        master = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        cc = ContainmentConstraint(
            cq([var("c")], [rel("S", var("e"), var("c"))]),
            Projection.on("M", [0]), name="ind")
        path = tmp_path / "bundle.json"
        dump_bundle(str(path), schema=SCHEMA,
                    master_schema=MASTER_SCHEMA, database=database,
                    master=master, query=q, constraints=[cc])
        return str(path)

    return write


class TestRCDPCommand:
    def test_complete_exit_zero(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1"), ("e0", "c2")})
        assert main(["rcdp", path]) == 0
        assert "complete" in capsys.readouterr().out

    def test_incomplete_exit_one_with_certificate(self, bundle_path,
                                                  capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["rcdp", path]) == 1
        out = capsys.readouterr().out
        assert "incomplete" in out
        assert "counterexample" in out


class TestRCQPCommand:
    def test_nonempty_exit_zero_with_witness(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["rcqp", path]) == 0
        out = capsys.readouterr().out
        assert "nonempty" in out
        assert "witness" in out


class TestCompleteCommand:
    def test_suggests_missing_facts(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["complete", path]) == 0
        out = capsys.readouterr().out
        assert "collect" in out
        assert "c2" in out


class TestDemoCommand:
    def test_runs_and_prints_audit(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "master data" in out
        assert "verdict" in out


class TestErrors:
    def test_missing_bundle_file(self, capsys):
        with pytest.raises(SystemExit):
            main(["rcdp"])  # argparse: missing argument

    def test_broken_bundle_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": {"relations": []}, '
                        '"master_schema": {"relations": []}, '
                        '"database": {}, "master": {}, '
                        '"query": {"language": "CQ", "text": ""}, '
                        '"constraints": []}')
        assert main(["rcdp", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestAuditCommand:
    def test_trustworthy_exit_zero(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1"), ("e0", "c2")})
        assert main(["audit", path]) == 0
        assert "trustworthy" in capsys.readouterr().out

    def test_collect_data_exit_one(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["audit", path]) == 1
        out = capsys.readouterr().out
        assert "collect" in out


class TestMissingCommand:
    def test_lists_missing_answers(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["missing", path]) == 1
        out = capsys.readouterr().out
        assert "c2" in out

    def test_complete_database_reports_none(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1"), ("e0", "c2")})
        assert main(["missing", path]) == 0
        assert "relatively complete" in capsys.readouterr().out

    def test_limit_flag(self, bundle_path, capsys):
        path = bundle_path(set())
        assert main(["missing", path, "--limit", "1"]) == 1
        out = capsys.readouterr().out
        assert "1 answer(s)" in out


class TestObservabilityFlags:
    def test_decide_alias_with_trace_profile_stats(self, bundle_path,
                                                   tmp_path, capsys):
        import json

        from repro.obs import check_trace, read_trace

        path = bundle_path({("e0", "c1")})
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(["decide", path, "--trace", str(trace),
                     "--metrics", str(metrics), "--profile"]) == 1
        out = capsys.readouterr().out
        # satellite: engine counters surface in the statistics block
        assert "statistics:" in out
        assert "plans_compiled" in out
        assert "phase" in out and "decide_rcdp" in out
        records = read_trace(str(trace))
        assert check_trace(records) == []
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        assert "governor.ticks.valuations" in snapshot["counters"]

    def test_traced_run_keeps_the_untraced_verdict(self, bundle_path,
                                                   tmp_path, capsys):
        path = bundle_path({("e0", "c1"), ("e0", "c2")})
        plain = main(["rcdp", path])
        traced = main(["rcdp", path, "--trace",
                       str(tmp_path / "t.jsonl")])
        assert traced == plain == 0

    def test_workers_two_trace_validates(self, bundle_path, tmp_path,
                                         capsys):
        from repro.obs import check_trace, read_trace

        path = bundle_path({("e0", "c1")})
        trace = tmp_path / "trace.jsonl"
        assert main(["decide", path, "--workers", "2",
                     "--trace", str(trace)]) == 1
        records = read_trace(str(trace))
        assert check_trace(records) == []
        lanes = {(r.get("attrs") or {}).get("lane")
                 for r in records if r.get("type") == "span"
                 and r["name"] == "shard"}
        assert lanes == {"shard-0", "shard-1"}

    def test_stats_flag_without_observability(self, bundle_path, capsys):
        path = bundle_path({("e0", "c1")})
        assert main(["rcdp", path, "--stats"]) == 1
        assert "valuations_examined" in capsys.readouterr().out


class TestTraceCommand:
    def test_check_valid_trace(self, bundle_path, tmp_path, capsys):
        path = bundle_path({("e0", "c1")})
        trace = tmp_path / "trace.jsonl"
        main(["decide", path, "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", str(trace), "--check"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_renders_profile_by_default(self, bundle_path, tmp_path,
                                        capsys):
        path = bundle_path({("e0", "c1")})
        trace = tmp_path / "trace.jsonl"
        main(["decide", path, "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "decide_rcdp" in out

    def test_check_rejects_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["trace", str(bad), "--check"]) == 2
        assert "error" in capsys.readouterr().err

    def test_check_flags_invalid_span_tree(self, tmp_path, capsys):
        import json

        bad = tmp_path / "orphan.jsonl"
        records = [
            {"type": "header", "version": 1, "procedure": "rcdp",
             "command": None},
            {"type": "span", "id": 1, "parent": 99, "name": "analyze",
             "start": 0.0, "end": 1.0, "dur": 1.0, "ticks": {},
             "attrs": {}},
        ]
        bad.write_text("\n".join(json.dumps(r) for r in records) + "\n",
                       encoding="utf-8")
        assert main(["trace", str(bad), "--check"]) == 2
        assert "orphan" in capsys.readouterr().out
