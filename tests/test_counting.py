"""Property tests for the counting workloads.

Pins the definitional identity ``count_missing_answers ≡
len(missing_answers_report(...).answers)``, the verdict bridge
(``count == 0 ⟺ COMPLETE``), monotonicity under Δ-extensions, limit
truncation, backend invariance, and governed interruption.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints.containment import satisfies_all
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.errors import ExecutionInterrupted, ReproError
from repro.incomplete import (CountReport, count_completing_extensions,
                              count_missing_answers)
from repro.mdm.scenario import CRMScenario
from repro.relational.instance import Instance, extend_unvalidated
from repro.relational.schema import DatabaseSchema, RelationSchema

from tests.strategies import (SCHEMA, conjunctive_queries,
                              extension_facts, instances)

MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["c"])])
DM = Instance(MASTER_SCHEMA, {"M": {(0,), (1,)}})
IND = InclusionDependency(
    "R", ["b"], "M", ["c"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)


def _count(query, db, **kwargs):
    return count_missing_answers(query, db, DM, [IND], **kwargs)


def _within_active_domain(db, delta):
    """Whether every Δ value already occurs in D or the master.

    The counting semantics range over the decider's candidate space
    (active domain + canonical fresh values), so monotonicity against an
    arbitrary Δ only holds when Δ introduces no values outside it."""
    known = {value for _, rows in db for row in rows for value in row}
    known.update({0, 1})  # master M = {(0,), (1,)} is always in adom
    return all(value in known for _, row in delta for value in row)


class TestCountEqualsReportLength:
    @settings(max_examples=40, deadline=None)
    @given(query=conjunctive_queries(), db=instances())
    def test_count_is_report_cardinality(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            report = missing_answers_report(query, db, DM, [IND])
        except ReproError:
            assume(False)
        count = _count(query, db)
        assert count.count == len(report.answers)
        assert count.exhaustive == report.exhaustive
        assert (count.statistics.valuations_examined
                == report.statistics.valuations_examined)

    @settings(max_examples=30, deadline=None)
    @given(query=conjunctive_queries(), db=instances())
    def test_zero_count_iff_complete(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            verdict = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        count = _count(query, db)
        assert count.exhaustive
        assert (count.count == 0) == verdict.is_complete

    @settings(max_examples=30, deadline=None)
    @given(query=conjunctive_queries(), db=instances())
    def test_zero_extension_count_iff_complete(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            verdict = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        count = count_completing_extensions(query, db, DM, [IND])
        assert count.exhaustive
        assert (count.count == 0) == verdict.is_complete


class TestMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(query=conjunctive_queries(), db=instances(),
           delta=extension_facts())
    def test_count_bounds_gain_of_any_valid_extension(
            self, query, db, delta):
        """Every answer a constraint-respecting Δ (over the decider's
        candidate space) exposes is counted as missing: ``|Q(D ∪ Δ) ∖
        Q(D)| ≤ count_missing_answers(D)``."""
        assume(satisfies_all(db, DM, [IND]))
        assume(_within_active_domain(db, delta))
        extended = extend_unvalidated(db, delta)
        assume(satisfies_all(extended, DM, [IND]))
        try:
            count = _count(query, db)
        except ReproError:
            assume(False)
        gained = query.evaluate(extended) - query.evaluate(db)
        assert len(gained) <= count.count

    @settings(max_examples=30, deadline=None)
    @given(query=conjunctive_queries(), db=instances(),
           delta=extension_facts())
    def test_count_shrinks_as_the_database_grows(self, query, db, delta):
        """Adding valid facts can only close gaps: the extended
        database misses at most what the original missed."""
        assume(satisfies_all(db, DM, [IND]))
        assume(_within_active_domain(db, delta))
        extended = Instance(
            SCHEMA, {name: set(rows) for name, rows in
                     extend_unvalidated(db, delta)})
        assume(satisfies_all(extended, DM, [IND]))
        try:
            before = missing_answers_report(query, db, DM, [IND])
            after = missing_answers_report(query, extended, DM, [IND])
        except ReproError:
            assume(False)
        gained = query.evaluate(extended) - query.evaluate(db)
        assert after.answers <= before.answers - gained


class TestLimitAndGovernance:
    @settings(max_examples=30, deadline=None)
    @given(query=conjunctive_queries(), db=instances(),
           limit=st.integers(1, 4))
    def test_limit_truncates_the_count(self, query, db, limit):
        assume(satisfies_all(db, DM, [IND]))
        try:
            full = _count(query, db)
        except ReproError:
            assume(False)
        limited = _count(query, db, limit=limit)
        assert limited.count == min(limit, full.count)
        if full.count >= limit:
            # The enumeration stops at the limit without knowing
            # whether more answers exist, so the count is a lower bound.
            assert not limited.exhaustive
        else:
            assert limited.exhaustive

    def test_budget_interruption_degrades_to_lower_bound(self):
        scenario = CRMScenario.example()
        query = scenario.q0_customers_with_area_code()
        args = (query, scenario.database(missing_customers=["c1"]),
                scenario.master(), scenario.default_constraints())
        count = count_missing_answers(*args, budget=3)
        assert not count.exhaustive
        assert count.interrupted == "budget"
        assert repr(count).startswith("CountReport[≥")
        with pytest.raises(ExecutionInterrupted):
            count_missing_answers(*args, budget=3, on_exhausted="error")
        extensions = count_completing_extensions(*args, budget=3)
        assert not extensions.exhaustive
        assert extensions.interrupted == "budget"

    def test_max_extensions_truncates(self):
        scenario = CRMScenario.example()
        query = scenario.q0_customers_with_area_code()
        args = (query, scenario.database(missing_customers=["c1"]),
                scenario.master(), scenario.default_constraints())
        full = count_completing_extensions(*args)
        assert full.exhaustive and full.count >= 1
        capped = count_completing_extensions(*args, max_extensions=1)
        assert capped.count == 1
        assert not capped.exhaustive

    def test_exhaustive_report_repr_has_no_qualifier(self):
        report = CountReport(count=2, exhaustive=True, statistics=None)
        assert repr(report) == "CountReport[2]"


class TestBackendInvariance:
    @pytest.mark.parametrize("backend", ["columnar", "sqlite"])
    def test_counts_match_python_backend(self, backend):
        scenario = CRMScenario.example()
        query = scenario.q0_customers_with_area_code()
        args = (query, scenario.database(missing_customers=["c1"]),
                scenario.master(), scenario.default_constraints())
        oracle = count_missing_answers(*args, backend="python")
        count = count_missing_answers(*args, backend=backend)
        assert count.count == oracle.count
        assert count.exhaustive and oracle.exhaustive
        ext_oracle = count_completing_extensions(*args, backend="python")
        ext = count_completing_extensions(*args, backend=backend)
        assert ext.count == ext_oracle.count

    def test_worker_invariance(self):
        scenario = CRMScenario.example()
        query = scenario.q0_customers_with_area_code()
        args = (query, scenario.database(missing_customers=["c1"]),
                scenario.master(), scenario.default_constraints())
        serial = count_missing_answers(*args, workers=1)
        parallel = count_missing_answers(*args, workers=2)
        assert parallel.count == serial.count
        assert parallel.exhaustive == serial.exhaustive
