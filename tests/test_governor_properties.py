"""Property tests for the interrupt/resume contract of the governor.

The acceptance criterion of the execution governor: interrupting a
decider at an *arbitrary* point of its search and resuming from the
returned checkpoint must yield exactly the verdict of an uninterrupted
run.  Queries and instances are drawn from ``tests.strategies``; the
interruption point is itself randomized through deterministic fault
injection.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.containment import satisfies_all
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.errors import ReproError, SearchBudgetExceededError
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.runtime import ExecutionGovernor, FaultInjector

from tests.strategies import SCHEMA, conjunctive_queries, instances

MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["c"])])
DM = Instance(MASTER_SCHEMA, {"M": {(0,), (1,)}})

# R[b] ⊆ M[c]: random instances whose R carries a 2 in column b are not
# partially closed and get filtered out below.
IND = InclusionDependency(
    "R", ["b"], "M", ["c"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)


def injected(after):
    return ExecutionGovernor(faults=FaultInjector(exhaust_after=after))


class TestRCDPInterruptResume:
    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances(), after=st.integers(0, 25))
    def test_resumed_verdict_matches_unbounded(self, query, db, after):
        assume(satisfies_all(db, DM, [IND]))
        try:
            unbounded = decide_rcdp(query, db, DM, [IND])
        except ReproError:
            assume(False)
        partial = decide_rcdp(query, db, DM, [IND],
                              governor=injected(after),
                              on_exhausted="partial")
        if partial.status is not RCDPStatus.EXHAUSTED:
            # The search finished before the injected fault fired.
            assert partial.status is unbounded.status
            return
        assert partial.interrupted == "budget"
        assert partial.checkpoint is not None
        resumed = decide_rcdp(query, db, DM, [IND],
                              resume_from=partial.checkpoint)
        assert resumed.status is unbounded.status
        # Cumulative statistics: resumption never forgets the first leg.
        assert resumed.statistics.valuations_examined >= \
            partial.statistics.valuations_examined

    @settings(max_examples=40, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances(), after=st.integers(0, 25))
    def test_error_mode_is_partial_mode_raised(self, query, db, after):
        assume(satisfies_all(db, DM, [IND]))
        try:
            partial = decide_rcdp(query, db, DM, [IND],
                                  governor=injected(after),
                                  on_exhausted="partial")
        except ReproError:
            assume(False)
        if partial.status is not RCDPStatus.EXHAUSTED:
            return
        try:
            decide_rcdp(query, db, DM, [IND], governor=injected(after),
                        on_exhausted="error")
        except SearchBudgetExceededError as error:
            assert error.partial_result.status is RCDPStatus.EXHAUSTED
            assert error.checkpoint == partial.checkpoint
        else:
            raise AssertionError("error mode did not raise")


class TestMissingAnswersInterruptResume:
    @settings(max_examples=50, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances(), after=st.integers(0, 25))
    def test_interrupted_answers_are_a_lower_bound(self, query, db,
                                                   after):
        assume(satisfies_all(db, DM, [IND]))
        try:
            full = missing_answers_report(query, db, DM, [IND])
        except ReproError:
            assume(False)
        assert full.exhaustive
        partial = missing_answers_report(query, db, DM, [IND],
                                         governor=injected(after))
        if partial.exhaustive:
            assert partial.answers == full.answers
            return
        assert partial.answers <= full.answers
        resumed = missing_answers_report(query, db, DM, [IND],
                                         resume_from=partial.checkpoint)
        assert resumed.exhaustive
        assert resumed.answers == full.answers


RCQP_FDS = FunctionalDependency(
    "R", ["a"], ["b"]).to_containment_constraints(SCHEMA)


class TestRCQPInterruptResume:
    @settings(max_examples=25, deadline=None)
    @given(query=conjunctive_queries(max_atoms=2,
                                     allow_inequalities=False),
           after=st.integers(0, 40))
    def test_resumed_verdict_matches_unbounded(self, query, after):
        assume(query.relations_used() == {"R"})
        kwargs = dict(max_valuation_set_size=1, max_rows_per_unit=1)
        try:
            unbounded = decide_rcqp(query, Instance(MASTER_SCHEMA),
                                    list(RCQP_FDS), SCHEMA, **kwargs)
        except ReproError:
            assume(False)
        partial = decide_rcqp(query, Instance(MASTER_SCHEMA),
                              list(RCQP_FDS), SCHEMA,
                              governor=injected(after),
                              on_exhausted="partial", **kwargs)
        if partial.status is not RCQPStatus.EXHAUSTED:
            assert partial.status is unbounded.status
            return
        resumed = decide_rcqp(query, Instance(MASTER_SCHEMA),
                              list(RCQP_FDS), SCHEMA,
                              resume_from=partial.checkpoint, **kwargs)
        assert resumed.status is unbounded.status
