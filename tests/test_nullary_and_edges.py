"""Edge cases: nullary relations, empty bodies, and other corners the
paper's constructions rely on (e.g. the 0-ary ``Rme`` relation)."""


from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.parser import parse_query
from repro.queries.tableau import Tableau
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([
    RelationSchema("Flag"),          # nullary
    RelationSchema("S", ["a"]),
])
MASTER_SCHEMA = DatabaseSchema([
    RelationSchema("Me"),            # nullary master relation (the Rme)
    RelationSchema("M", ["a"]),
])


class TestNullaryRelations:
    def test_nullary_instance_contents(self):
        inst = Instance(SCHEMA, {"Flag": {()}})
        assert inst["Flag"] == frozenset({()})
        assert inst.total_tuples == 1

    def test_nullary_atom_in_query(self):
        q = cq([var("x")], [rel("S", var("x")), rel("Flag")])
        with_flag = Instance(SCHEMA, {"S": {(1,)}, "Flag": {()}})
        without = Instance(SCHEMA, {"S": {(1,)}})
        assert q.evaluate(with_flag) == frozenset({(1,)})
        assert q.evaluate(without) == frozenset()

    def test_nullary_in_tableau(self):
        q = cq([var("x")], [rel("S", var("x")), rel("Flag")])
        t = Tableau(q, SCHEMA)
        assert any(row.relation == "Flag" and row.is_ground()
                   for row in t.rows)

    def test_nullary_projection_target(self):
        # q ⊆ π()(Me): satisfied iff q empty or Me nonempty.
        q = cq([], [rel("S", var("x"))])
        cc = ContainmentConstraint(q, Projection.on("Me", []), name="φ")
        db = Instance(SCHEMA, {"S": {(1,)}})
        master_with = Instance(MASTER_SCHEMA, {"Me": {()}})
        master_without = Instance(MASTER_SCHEMA)
        assert cc.is_satisfied(db, master_with)
        assert not cc.is_satisfied(db, master_without)

    def test_rcdp_with_nullary_switch(self):
        # The Flag relation acts as the R6-style switch: the Boolean query
        # 'Flag holds' is incomplete while false (Flag can be added), and
        # complete once true.
        q = cq([], [rel("Flag")])
        master = Instance(MASTER_SCHEMA)
        off = Instance(SCHEMA)
        on = Instance(SCHEMA, {"Flag": {()}})
        assert decide_rcdp(q, off, master, []).status \
            is RCDPStatus.INCOMPLETE
        assert decide_rcdp(q, on, master, []).status \
            is RCDPStatus.COMPLETE

    def test_parser_accepts_nullary_atoms(self):
        q = parse_query("Q(x) :- S(x), Flag()")
        db = Instance(SCHEMA, {"S": {(1,)}, "Flag": {()}})
        assert q.evaluate(db) == frozenset({(1,)})


class TestDegenerateQueries:
    def test_constant_only_head(self):
        q = cq([1, 2], [rel("S", var("x"))])
        db = Instance(SCHEMA, {"S": {(9,)}})
        assert q.evaluate(db) == frozenset({(1, 2)})
        assert q.evaluate(Instance(SCHEMA)) == frozenset()

    def test_empty_body_query(self):
        q = cq([7], [])
        assert q.evaluate(Instance(SCHEMA)) == frozenset({(7,)})

    def test_empty_body_is_always_complete(self):
        q = cq([7], [])
        master = Instance(MASTER_SCHEMA)
        result = decide_rcdp(q, Instance(SCHEMA), master, [])
        assert result.status is RCDPStatus.COMPLETE

    def test_cross_product_query(self):
        q = cq([var("x"), var("y")],
               [rel("S", var("x")), rel("S", var("y"))])
        db = Instance(SCHEMA, {"S": {(1,), (2,)}})
        assert len(q.evaluate(db)) == 4

    def test_repeated_atom_is_idempotent(self):
        q1 = cq([var("x")], [rel("S", var("x"))])
        q2 = cq([var("x")], [rel("S", var("x")), rel("S", var("x"))])
        db = Instance(SCHEMA, {"S": {(1,), (2,)}})
        assert q1.evaluate(db) == q2.evaluate(db)
