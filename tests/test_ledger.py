"""The decision observatory: run ledger, history gate, exporters,
progress — plus the layer-wide acceptance invariant.

* **Ledger ≡ no ledger** (differential): running a decision with the
  run ledger and live progress attached yields bit-identical verdicts,
  witnesses, and ``SearchStatistics`` across every backend ×
  worker-count cell.  Recording is observation-only.
* **Crash-safe appends**: two processes hammering one ledger file
  interleave whole lines — every line parses, no record is lost.
* **History gate**: ``repro history --gate`` passes against a
  truthful baseline and exits nonzero under a synthetic 2× slowdown,
  a tick drift, a verdict flip, or a baseline that fails its own
  recorded gates.
"""

import io
import json
import multiprocessing
import os

import pytest

from repro.cli import main
from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.io.json_io import dump_bundle
from repro.obs import atomic_write_text
from repro.obs.export import (event_records, prometheus_lines,
                              render_events, render_prometheus,
                              write_events, write_prometheus)
from repro.obs.history import (HISTORY_FACTOR, diff_reports,
                               discover_baselines, load_bench_report,
                               report_problems)
from repro.obs.ledger import (LEDGER_VERSION, RunRecord, append_record,
                              check_ledger, group_name, ledger_metrics,
                              ledger_report, read_ledger,
                              render_summary, run_key,
                              statistics_fields, summarize_ledger)
from repro.obs.progress import ProgressReporter
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.backends import BACKEND_NAMES
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])


@pytest.fixture
def bundle_path(tmp_path):
    def write(support):
        database = Instance(SCHEMA, {"S": set(support)})
        master = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        cc = ContainmentConstraint(
            cq([var("c")], [rel("S", var("e"), var("c"))]),
            Projection.on("M", [0]), name="ind")
        path = tmp_path / "bundle.json"
        dump_bundle(str(path), schema=SCHEMA,
                    master_schema=MASTER_SCHEMA, database=database,
                    master=master, query=q, constraints=[cc])
        return str(path)

    return write


def _record(i=0, **overrides):
    base = dict(procedure="rcdp", label="demo", verdict="complete",
                backend="python", workers=1, wall_s=0.01 * (i + 1),
                ticks={"valuations": 10 * (i + 1)},
                statistics={"engine_cache_hits": 3,
                            "full_evaluations": 1})
    base.update(overrides)
    return RunRecord(**base)


# ---------------------------------------------------------------------
# Unit: records and the append/read cycle
# ---------------------------------------------------------------------

class TestRunRecord:
    def test_payload_roundtrip(self):
        record = _record(interrupted="budget", exhausted=True,
                         artifacts={"trace": "t.jsonl"},
                         extra={"note": 1})
        payload = record.to_payload()
        assert payload["v"] == LEDGER_VERSION
        assert RunRecord.from_payload(payload) == record

    def test_from_payload_ignores_unknown_keys(self):
        payload = _record().to_payload()
        payload["from_the_future"] = {"x": 1}
        assert RunRecord.from_payload(payload) == _record()

    def test_run_key_is_content_addressed(self):
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        again = cq([var("c")], [rel("S", "e0", var("c"))])
        other = cq([var("c")], [rel("S", "e1", var("c"))])
        assert run_key("rcdp", q) == run_key("rcdp", again)
        assert run_key("rcdp", q) != run_key("rcdp", other)
        assert run_key("rcdp", q) != run_key("rcqp", q)

    def test_statistics_fields_drops_zeroes(self):
        from repro.core.results import SearchStatistics

        stats = SearchStatistics(valuations_examined=4)
        assert statistics_fields(stats) == {"valuations_examined": 4}
        assert statistics_fields(None) == {}


class TestAppendRead:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        for i in range(3):
            append_record(path, _record(i))
        records = read_ledger(path)
        assert records == [_record(0), _record(1), _record(2)]
        assert check_ledger(path) == []

    def test_read_rejects_torn_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_record(str(path), _record())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "procedure": "rc')  # torn mid-write
        with pytest.raises(ValueError, match="not valid JSON"):
            read_ledger(str(path))
        problems = check_ledger(str(path))
        assert problems and "line 2" in problems[0]

    def test_check_flags_version_and_missing_keys(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"v": 99, "procedure": "rcdp", '
                        '"verdict": "", "wall_s": 0}\n'
                        '{"v": 1, "procedure": "rcdp"}\n',
                        encoding="utf-8")
        problems = check_ledger(str(path))
        assert any("version" in p for p in problems)
        assert any("missing keys" in p for p in problems)


def _hammer(path, tag, count):
    for i in range(count):
        append_record(path, RunRecord(
            procedure="stress", label=f"{tag}-{i}", verdict="complete",
            wall_s=0.0, extra={"tag": tag, "i": i}))


class TestConcurrentAppends:
    def test_two_processes_interleave_whole_lines(self, tmp_path):
        """The satellite crash-safety property: two concurrent writer
        processes, every line parses, no record lost."""
        path = str(tmp_path / "ledger.jsonl")
        count = 200
        context = multiprocessing.get_context("fork")
        workers = [context.Process(target=_hammer,
                                   args=(path, tag, count))
                   for tag in ("a", "b")]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        assert check_ledger(path) == []
        records = read_ledger(path)
        assert len(records) == 2 * count
        seen = {(r.extra["tag"], r.extra["i"]) for r in records}
        assert seen == {(tag, i) for tag in ("a", "b")
                        for i in range(count)}


# ---------------------------------------------------------------------
# Unit: aggregation (`repro report`)
# ---------------------------------------------------------------------

class TestSummarize:
    def test_percentiles_verdicts_and_cache_rate(self):
        records = [_record(i, verdict="complete" if i % 2 else
                           "incomplete") for i in range(10)]
        summary = summarize_ledger(records)
        assert summary["records"] == 10
        proc = summary["procedures"]["rcdp"]
        assert proc["runs"] == 10
        assert proc["wall_p50_s"] == pytest.approx(0.05)
        assert proc["wall_p90_s"] == pytest.approx(0.09)
        assert proc["verdicts"] == {"complete": 5, "incomplete": 5}
        # 30 hits vs 10 full evaluations over the 10 records
        assert proc["cache_hit_rate"] == pytest.approx(0.75)
        assert summary["backends"]["python"]["runs"] == 10

    def test_render_mentions_the_headline_numbers(self):
        records = [_record(0), _record(1, exhausted=True)]
        text = render_summary(summarize_ledger(records))
        assert "2 record(s)" in text
        assert "rcdp" in text and "exhausted×1" in text


class TestLedgerReport:
    def test_groups_by_identity_and_takes_p50(self):
        records = ([_record(i) for i in range(3)]
                   + [_record(0, backend="sqlite", workers=2)])
        report = ledger_report(records)
        assert report["name"] == "ledger"
        names = [row["name"] for row in report["rows"]]
        assert names == sorted(["rcdp/demo/python/w1",
                                "rcdp/demo/sqlite/w2"])
        by_name = {row["name"]: row for row in report["rows"]}
        python_row = by_name["rcdp/demo/python/w1"]
        assert python_row["wall_s"] == pytest.approx(0.02)
        assert python_row["extra"]["runs"] == 3
        # ticks come from the most recent record in the group
        assert python_row["ticks"] == {"valuations": 30}
        assert group_name(records[-1]) == "rcdp/demo/sqlite/w2"

    def test_metrics_snapshot_aggregates(self):
        snapshot = ledger_metrics([_record(0), _record(1)])
        assert snapshot["counters"]["ledger.runs.rcdp"] == 2
        assert snapshot["counters"]["ledger.verdict.complete"] == 2
        assert snapshot["counters"]["governor.ticks.valuations"] == 30
        assert snapshot["counters"]["search.engine_cache_hits"] == 6
        assert snapshot["gauges"]["ledger.records"] == 2.0
        assert snapshot["histograms"]["ledger.wall_seconds"][
            "count"] == 2


# ---------------------------------------------------------------------
# Unit: history diffing and the gate
# ---------------------------------------------------------------------

def _bench(name, rows, gates=()):
    return {"bench_report_version": 1, "name": name, "smoke": False,
            "rows": rows, "gates": list(gates), "extra": {}}


def _row(name, wall_s, *, ticks=None, verdicts=None):
    return {"name": name, "wall_s": wall_s, "ticks": ticks or {},
            "verdicts": verdicts or {}, "extra": {}}


class TestHistory:
    BASE = _bench("ledger", [
        _row("rcdp/a/python/w1", 0.10, ticks={"valuations": 8},
             verdicts={"complete": 1}),
        _row("rcdp/b/python/w1", 0.20, ticks={"valuations": 16},
             verdicts={"incomplete": 1}),
    ])

    def test_identical_reports_pass(self):
        result = diff_reports([("base", self.BASE)],
                              [("now", self.BASE)])
        assert result.ok
        assert result.median_ratio == pytest.approx(1.0)
        assert len(result.pairs) == 2

    def test_synthetic_slowdown_trips_the_wall_gate(self):
        result = diff_reports([("base", self.BASE)],
                              [("now", self.BASE)], slowdown=2.0)
        assert not result.ok
        assert any("median wall-time ratio" in r
                   for r in result.regressions)
        # ... while a sub-threshold wobble stays green.
        assert diff_reports([("base", self.BASE)],
                            [("now", self.BASE)],
                            slowdown=HISTORY_FACTOR - 0.1).ok

    def test_tick_drift_is_a_regression_not_noise(self):
        current = _bench("ledger", [
            _row("rcdp/a/python/w1", 0.10, ticks={"valuations": 9},
                 verdicts={"complete": 1})])
        result = diff_reports([("base", self.BASE)],
                              [("now", current)])
        assert not result.ok
        assert any("ticks[valuations]" in r for r in result.regressions)

    def test_verdict_flip_is_a_regression(self):
        current = _bench("ledger", [
            _row("rcdp/a/python/w1", 0.10, ticks={"valuations": 8},
                 verdicts={"incomplete": 1})])
        result = diff_reports([("base", self.BASE)],
                              [("now", current)])
        assert not result.ok
        assert any("verdict mix" in r for r in result.regressions)

    def test_baseline_failing_its_own_gate_is_a_problem(self):
        bad = _bench("ledger", [], gates=[
            {"name": "speed", "required": 5.0, "measured": 2.0,
             "higher_is_better": True, "enforced": True,
             "passed": True}])  # hand-edited into "passing"
        assert report_problems(bad, source="bad")
        result = diff_reports([("bad", bad)], [])
        assert not result.ok and result.baseline_problems

    def test_unpaired_rows_are_informational(self):
        current = _bench("ledger", [
            _row("rcdp/new-row/python/w1", 0.10)])
        orphan = _bench("unknown-report", [_row("x", 0.1)])
        result = diff_reports([("base", self.BASE)],
                              [("now", current), ("now2", orphan)])
        assert result.ok
        assert len(result.unpaired_current) == 2

    def test_discover_and_load(self, tmp_path):
        path = tmp_path / "BENCH_ledger.json"
        path.write_text(json.dumps(self.BASE), encoding="utf-8")
        (tmp_path / "unrelated.json").write_text("{}", encoding="utf-8")
        found = discover_baselines(str(tmp_path))
        assert found == [str(path)]
        assert discover_baselines(str(path)) == [str(path)]
        assert load_bench_report(str(path))["name"] == "ledger"
        (tmp_path / "BENCH_bad.json").write_text(
            '{"bench_report_version": 2, "rows": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="bench_report_version"):
            load_bench_report(str(tmp_path / "BENCH_bad.json"))


# ---------------------------------------------------------------------
# Unit: exporters
# ---------------------------------------------------------------------

class TestExport:
    SNAPSHOT = {
        "counters": {"governor.ticks.valuations": 7},
        "gauges": {"ledger.records": 3.0},
        "histograms": {"ledger.wall_seconds":
                       {"count": 2, "total": 0.5,
                        "min": 0.1, "max": 0.4}},
    }

    def test_prometheus_exposition_shape(self):
        text = render_prometheus(self.SNAPSHOT)
        assert "# TYPE repro_governor_ticks_valuations_total counter" \
            in text
        assert "repro_governor_ticks_valuations_total 7" in text
        assert "# TYPE repro_ledger_records gauge" in text
        assert "repro_ledger_wall_seconds_count 2" in text
        assert "repro_ledger_wall_seconds_sum 0.5" in text
        # every sample line is name<space>value — parseable exposition
        for line in prometheus_lines(self.SNAPSHOT):
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name.replace("_", "a").isalnum()
            float(value)

    def test_event_stream_shape(self):
        records = event_records(self.SNAPSHOT, source="test")
        assert records[0]["type"] == "header"
        kinds = {(r["kind"], r["name"]) for r in records[1:]}
        assert ("counter", "governor.ticks.valuations") in kinds
        assert ("gauge", "ledger.records") in kinds
        assert ("histogram", "ledger.wall_seconds") in kinds
        for line in render_events(self.SNAPSHOT).splitlines():
            json.loads(line)

    def test_writers_are_atomic_and_loadable(self, tmp_path):
        prom = tmp_path / "out.prom"
        events = tmp_path / "events.jsonl"
        write_prometheus(str(prom), self.SNAPSHOT)
        write_events(str(events), self.SNAPSHOT)
        assert "repro_ledger_records 3" in prom.read_text(
            encoding="utf-8")
        assert json.loads(events.read_text(
            encoding="utf-8").splitlines()[0])["type"] == "header"
        # no stray temp files from the atomic-rename dance
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "events.jsonl", "out.prom"]


class TestAtomicWrite:
    def test_replaces_whole_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(str(path), "first")
        atomic_write_text(str(path), "second")
        assert path.read_text(encoding="utf-8") == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]


# ---------------------------------------------------------------------
# Unit: progress
# ---------------------------------------------------------------------

class _FakeBudget:
    def __init__(self):
        self.ticks = {"valuations": 0}

    def snapshot(self):
        return dict(self.ticks)


class TestProgress:
    def _reporter(self, **kwargs):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, poll_interval=0.02,
                                    **kwargs)
        return reporter, stream

    def test_percent_and_eta_with_a_total(self):
        reporter, stream = self._reporter(total=100, label="decide")
        reporter.update_serial(25)
        reporter.close()
        out = stream.getvalue()
        assert "decide:" in out
        assert "25.0% (25/100 ticks)" in out
        assert "eta" in out

    def test_degrades_to_raw_counter_without_total(self):
        reporter, stream = self._reporter()
        reporter.update_serial(7)
        reporter.close()
        assert "7 tick(s)" in stream.getvalue()

    def test_serial_and_shard_sources_never_double_count(self):
        reporter, _ = self._reporter(total=1000)
        reporter.update_serial(10)      # pre-fan-out prefix
        reporter.update_shard(0, 30)
        reporter.update_shard(1, 20)
        assert reporter.value == 10 + 30 + 20
        # reconciliation absorbs worker ticks into the parent ledger:
        # the serial number jumps past the shard sum, no double count
        reporter.update_serial(10 + 30 + 20)
        assert reporter.value == 60
        # shard updates are per-shard monotone maxima
        reporter.update_shard(0, 25)
        assert reporter.value == 60

    def test_polling_samples_the_budget_ledger(self):
        budget = _FakeBudget()
        reporter, stream = self._reporter(total=50)
        reporter.start_polling(budget)
        budget.ticks["valuations"] = 50
        reporter.close()  # takes one final sample before painting
        assert reporter.value == 50
        assert "100.0%" in stream.getvalue()

    def test_value_is_monotone(self):
        reporter, _ = self._reporter()
        reporter.update_serial(9)
        reporter.update_serial(4)
        assert reporter.value == 9


# ---------------------------------------------------------------------
# Acceptance: ledger + progress are observation-only, every cell
# ---------------------------------------------------------------------

class TestLedgerDifferential:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_recorded_run_is_bit_identical(self, backend, workers,
                                           bundle_path, tmp_path,
                                           capsys):
        """`decide --ledger --progress` must print the exact stdout of
        a bare `decide` — verdict, witness, statistics — and the
        ledger record must agree with what was printed."""
        path = bundle_path({("e0", "c1")})
        ledger = str(tmp_path / "ledger.jsonl")
        base_args = ["decide", path, "--backend", backend,
                     "--workers", str(workers), "--stats"]
        plain_exit = main(base_args)
        plain_out = capsys.readouterr().out
        recorded_exit = main(base_args + ["--ledger", ledger,
                                          "--progress"])
        recorded_out = capsys.readouterr().out
        assert recorded_exit == plain_exit == 1
        assert recorded_out == plain_out
        (record,) = read_ledger(ledger)
        assert record.procedure == "rcdp"
        assert record.verdict == "incomplete"
        assert record.backend == backend
        assert record.workers == workers
        assert record.key and record.ticks
        assert str(record.statistics["valuations_examined"]) in plain_out

    def test_same_decision_appends_the_same_key(self, bundle_path,
                                                tmp_path, capsys):
        path = bundle_path({("e0", "c1")})
        ledger = str(tmp_path / "ledger.jsonl")
        for backend in ("python", "sqlite"):
            main(["decide", path, "--backend", backend,
                  "--ledger", ledger])
        capsys.readouterr()
        first, second = read_ledger(ledger)
        assert first.key == second.key != ""


# ---------------------------------------------------------------------
# CLI verbs: report and history
# ---------------------------------------------------------------------

class TestReportCommand:
    def _ledger(self, bundle_path, tmp_path, capsys):
        path = bundle_path({("e0", "c1")})
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["decide", path, "--ledger", ledger]) == 1
        capsys.readouterr()
        return ledger

    def test_text_and_json_summaries(self, bundle_path, tmp_path,
                                     capsys):
        ledger = self._ledger(bundle_path, tmp_path, capsys)
        assert main(["report", "--ledger", ledger]) == 0
        assert "1 record(s)" in capsys.readouterr().out
        assert main(["report", "--ledger", ledger,
                     "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["procedures"]["rcdp"]["runs"] == 1

    def test_out_writes_a_pairable_bench_report(self, bundle_path,
                                                tmp_path, capsys):
        ledger = self._ledger(bundle_path, tmp_path, capsys)
        out = tmp_path / "BENCH_ledger.json"
        prom = tmp_path / "ledger.prom"
        assert main(["report", "--ledger", ledger, "--out", str(out),
                     "--prom", str(prom)]) == 0
        report = load_bench_report(str(out))
        assert report["name"] == "ledger"
        assert report["rows"][0]["name"] == "rcdp/bundle/python/w1"
        assert "repro_ledger_runs_rcdp_total 1" in prom.read_text(
            encoding="utf-8")

    def test_missing_ledger_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert main(["report"]) == 2
        assert "no ledger" in capsys.readouterr().err

    def test_corrupt_ledger_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "ledger.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["report", "--ledger", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_env_var_names_the_default_ledger(self, bundle_path,
                                              tmp_path, capsys,
                                              monkeypatch):
        path = bundle_path({("e0", "c1")})
        ledger = str(tmp_path / "ledger.jsonl")
        monkeypatch.setenv("REPRO_LEDGER", ledger)
        assert main(["decide", path]) == 1
        capsys.readouterr()
        assert main(["report"]) == 0
        assert "1 record(s)" in capsys.readouterr().out


class TestHistoryCommand:
    def _baseline(self, bundle_path, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        path = bundle_path({("e0", "c1")})
        assert main(["decide", path, "--ledger", ledger]) == 1
        baseline = tmp_path / "BENCH_ledger.json"
        assert main(["report", "--ledger", ledger,
                     "--out", str(baseline)]) == 0
        capsys.readouterr()
        return ledger, str(baseline)

    def test_gate_passes_against_its_own_baseline(self, bundle_path,
                                                  tmp_path, capsys):
        ledger, baseline = self._baseline(bundle_path, tmp_path, capsys)
        assert main(["history", "--ledger", ledger,
                     "--baseline", baseline, "--gate"]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_gate_fails_under_synthetic_slowdown(self, bundle_path,
                                                 tmp_path, capsys):
        ledger, baseline = self._baseline(bundle_path, tmp_path, capsys)
        assert main(["history", "--ledger", ledger,
                     "--baseline", baseline, "--gate",
                     "--slowdown", "2.0"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "history gate FAILED" in captured.err

    def test_no_baselines_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["history", "--baseline", str(empty),
                     "--current", str(empty / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err


# ---------------------------------------------------------------------
# The bench side: report_schema forwards rows to $REPRO_LEDGER
# ---------------------------------------------------------------------

class TestBenchLedgerForwarding:
    def test_write_report_appends_rows(self, tmp_path, monkeypatch,
                                       capsys):
        benchmarks = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks")
        monkeypatch.syspath_prepend(benchmarks)
        import report_schema

        ledger = str(tmp_path / "ledger.jsonl")
        monkeypatch.setenv("REPRO_LEDGER", ledger)
        report = report_schema.bench_report(
            "engine",
            [report_schema.bench_row("rcdp/n=4", 0.25,
                                     ticks={"valuations": 16},
                                     verdicts={"complete": 1})],
            smoke=True)
        report_schema.write_report(str(tmp_path / "BENCH_engine.json"),
                                   report)
        capsys.readouterr()
        (record,) = read_ledger(ledger)
        assert record.procedure == "bench-engine"
        assert record.label == "rcdp/n=4"
        assert record.verdict == "complete"
        assert record.ticks == {"valuations": 16}
        assert record.extra == {"smoke": True}

    def test_silent_without_the_env_var(self, tmp_path, monkeypatch,
                                        capsys):
        benchmarks = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks")
        monkeypatch.syspath_prepend(benchmarks)
        import report_schema

        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        report_schema.write_report(
            str(tmp_path / "BENCH_x.json"),
            report_schema.bench_report("x", [], smoke=True))
        capsys.readouterr()
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "BENCH_x.json"]
