"""Property tests for the evaluation engine (:mod:`repro.engine`).

The pre-engine backtracking evaluators survive as ``evaluate_naive`` on
every query class; they are the oracle here.  Three independent
agreements are checked on random queries and instances:

1. the compiled/indexed engine path equals the naive evaluator;
2. the semi-naive delta rule ``Q(D ∪ Δ)`` equals naive evaluation of the
   materialized union (with Δ deliberately allowed to overlap ``D``);
3. the RCDP decider reaches the same verdict with the engine on and off.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection, satisfies_all)
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.engine import EvaluationContext, compile_plan
from repro.queries.atoms import rel
from repro.queries.cq import cq
from repro.queries.terms import Var, var
from repro.relational.instance import Instance, extend_unvalidated
from repro.relational.schema import DatabaseSchema, RelationSchema

from tests.strategies import (conjunctive_queries, extension_facts,
                              instances, union_queries)


class TestEngineMatchesNaive:
    @settings(max_examples=100, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_cq_evaluate(self, query, instance):
        assert query.evaluate(instance) == query.evaluate_naive(instance)

    @settings(max_examples=60, deadline=None)
    @given(query=union_queries(), instance=instances())
    def test_ucq_evaluate(self, query, instance):
        assert query.evaluate(instance) == query.evaluate_naive(instance)

    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_cq_holds(self, query, instance):
        assert query.holds_in(instance) == bool(
            query.evaluate_naive(instance))

    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_context_evaluate_and_cache(self, query, instance):
        context = EvaluationContext()
        first = context.evaluate(query, instance)
        assert first == query.evaluate_naive(instance)
        again = context.evaluate(query, instance)
        assert again == first
        assert context.statistics.cache_hits >= 1
        assert context.statistics.full_evaluations == 1

    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), instance=instances())
    def test_plan_compiles_once_per_query(self, query, instance):
        context = EvaluationContext()
        context.evaluate(query, instance)
        compiled_once = context.statistics.plans_compiled
        context.evaluate(query, instance)
        assert context.statistics.plans_compiled == compiled_once

    @settings(max_examples=40, deadline=None)
    @given(query=conjunctive_queries())
    def test_plan_binds_every_head_variable(self, query):
        # The first occurrence of any variable is always an output, so a
        # safe query's head variables must all appear as plan outputs.
        plan = compile_plan(query)
        if not plan.satisfiable:
            return
        bound = {variable for step in plan.steps
                 for _, variable in step.outputs}
        for term in query.head:
            if isinstance(term, Var):
                assert term in bound


class TestDeltaMatchesFull:
    @settings(max_examples=100, deadline=None)
    @given(query=conjunctive_queries(), base=instances(),
           delta=extension_facts())
    def test_cq_delta(self, query, base, delta):
        context = EvaluationContext()
        via_delta = context.evaluate_extension(query, base, delta)
        materialized = extend_unvalidated(base, delta)
        assert via_delta == query.evaluate_naive(materialized)

    @settings(max_examples=60, deadline=None)
    @given(query=union_queries(), base=instances(),
           delta=extension_facts())
    def test_ucq_delta(self, query, base, delta):
        context = EvaluationContext()
        via_delta = context.evaluate_extension(query, base, delta)
        materialized = extend_unvalidated(base, delta)
        assert via_delta == query.evaluate_naive(materialized)

    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), base=instances(),
           delta=extension_facts())
    def test_delta_reuses_cached_base(self, query, base, delta):
        context = EvaluationContext()
        context.evaluate(query, base)  # warm the base answer cache
        via_delta = context.evaluate_extension(query, base, delta)
        materialized = extend_unvalidated(base, delta)
        assert via_delta == query.evaluate_naive(materialized)

    @settings(max_examples=60, deadline=None)
    @given(query=conjunctive_queries(), base=instances(),
           delta=extension_facts())
    def test_repeated_delta_is_stable(self, query, base, delta):
        context = EvaluationContext()
        first = context.evaluate_extension(query, base, delta)
        second = context.evaluate_extension(query, base, delta)
        assert first == second


# A tiny RCDP workload for the engine-on/engine-off ablation: suppliers
# constrained to master customers (the paper's Example 1.1 shape).
_SCHEMA = DatabaseSchema([RelationSchema("S", ["eid", "cid"])])
_MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])
_DM = Instance(_MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
_IND = InclusionDependency(
    "S", ["cid"], "M", ["cid"]).to_containment_constraint(
    _SCHEMA, _MASTER_SCHEMA)
_EMPTY_CC = ContainmentConstraint(
    cq([], [rel("S", "e9", var("c"))]), Projection.empty(), name="ban-e9")
_Q = cq([var("c")], [rel("S", "e0", var("c"))], name="Q")

_s_rows = st.frozensets(
    st.tuples(st.sampled_from(["e0", "e1"]),
              st.sampled_from(["c1", "c2"])),
    max_size=4)


class TestDeciderAblation:
    @settings(max_examples=50, deadline=None)
    @given(rows=_s_rows)
    def test_rcdp_engine_matches_naive_decider(self, rows):
        db = Instance(_SCHEMA, {"S": rows})
        constraints = [_IND, _EMPTY_CC]
        if not satisfies_all(db, _DM, constraints):
            return
        engine = decide_rcdp(_Q, db, _DM, constraints, use_engine=True)
        naive = decide_rcdp(_Q, db, _DM, constraints, use_engine=False)
        assert engine.status is naive.status
        assert (engine.certificate is None) == (naive.certificate is None)

    @settings(max_examples=40, deadline=None)
    @given(rows=_s_rows)
    def test_shared_context_matches_fresh(self, rows):
        db = Instance(_SCHEMA, {"S": rows})
        constraints = [_IND]
        if not satisfies_all(db, _DM, constraints):
            return
        shared = EvaluationContext()
        first = decide_rcdp(_Q, db, _DM, constraints, context=shared)
        second = decide_rcdp(_Q, db, _DM, constraints, context=shared)
        fresh = decide_rcdp(_Q, db, _DM, constraints)
        assert first.status is second.status is fresh.status

    def test_engine_statistics_populated(self):
        db = Instance(_SCHEMA, {"S": {("e0", "c1")}})
        context = EvaluationContext()
        result = decide_rcdp(_Q, db, _DM, [_IND], context=context)
        assert result.status is RCDPStatus.INCOMPLETE
        stats = result.statistics
        assert stats.plans_compiled >= 1
        assert stats.full_evaluations >= 1
        assert stats.delta_evaluations + stats.full_evaluations >= 2

    def test_delta_statistics_counted(self):
        base = Instance(_SCHEMA, {"S": {("e0", "c1")}})
        context = EvaluationContext()
        answers = context.evaluate_extension(
            _Q, base, [("S", ("e0", "c2"))])
        assert answers == frozenset({("c1",), ("c2",)})
        assert context.statistics.delta_evaluations == 1
