"""Tests for the textual query syntax."""

import pytest

from repro.errors import ParseError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_program, parse_query, parse_rules
from repro.queries.terms import Const
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

SCHEMA = DatabaseSchema([
    RelationSchema("E", ["src", "dst"]),
    RelationSchema("L", ["node", "label"]),
])
GRAPH = Instance(SCHEMA, {
    "E": {(1, 2), (2, 3)},
    "L": {(1, "a"), (2, "b"), (3, "a")},
})


class TestParseQuery:
    def test_single_rule_is_cq(self):
        q = parse_query("Q(x) :- E(x, y)")
        assert isinstance(q, ConjunctiveQuery)
        assert q.evaluate(GRAPH) == frozenset({(1,), (2,)})

    def test_constants_and_comparisons(self):
        q = parse_query("Q(x) :- L(x, l), l = 'a', x != 3")
        assert q.evaluate(GRAPH) == frozenset({(1,)})

    def test_numbers_are_constants(self):
        q = parse_query("Q(y) :- E(1, y)")
        assert q.evaluate(GRAPH) == frozenset({(2,)})

    def test_double_quotes(self):
        q = parse_query('Q(x) :- L(x, "b")')
        assert q.evaluate(GRAPH) == frozenset({(2,)})

    def test_multiple_rules_are_ucq(self):
        q = parse_query("""
            Q(x) :- L(x, 'a')
            Q(x) :- L(x, 'b')
        """)
        assert isinstance(q, UnionOfConjunctiveQueries)
        assert q.evaluate(GRAPH) == frozenset({(1,), (2,), (3,)})

    def test_semicolon_separated(self):
        q = parse_query("Q(x) :- L(x, 'a'); Q(x) :- L(x, 'b')")
        assert len(q.disjuncts) == 2

    def test_comments_ignored(self):
        q = parse_query("""
            # all nodes with an outgoing edge
            Q(x) :- E(x, y)  # the body
        """)
        assert q.evaluate(GRAPH) == frozenset({(1,), (2,)})

    def test_boolean_query(self):
        q = parse_query("Q() :- E(1, 2)")
        assert q.is_boolean
        assert q.holds_in(GRAPH)

    def test_fact_rule(self):
        head, body = parse_rules("F(42)")[0]
        assert head.terms == (Const(42),)
        assert body == []

    def test_multiline_body(self):
        q = parse_query("""
            Q(x) :- E(x, y),
                    L(y, 'b')
        """)
        assert q.evaluate(GRAPH) == frozenset({(1,)})


class TestParseErrors:
    def test_mixed_head_predicates_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- E(x, y); P(x) :- E(x, y)")

    def test_recursion_rejected_in_query(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- E(x, y), Q(y)")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- E(x, y) @")

    def test_missing_comparison_operator(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- E(x, y), x y")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_query("   \n  ")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_query("Q(x :- E(x, y)")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("Q(x) :- E(x, y) @")
        assert "line" in str(excinfo.value)


class TestParseProgram:
    def test_transitive_closure(self):
        program = parse_program("""
            T(x, y) :- E(x, y)
            T(x, z) :- E(x, y), T(y, z)
        """, goal="T")
        assert program.evaluate(GRAPH) == frozenset(
            {(1, 2), (2, 3), (1, 3)})

    def test_facts_in_program(self):
        program = parse_program("""
            Seed(1)
            Reach(x) :- Seed(x)
            Reach(y) :- Reach(x), E(x, y)
        """, goal="Reach")
        assert program.evaluate(GRAPH) == frozenset({(1,), (2,), (3,)})

    def test_inequality_in_program(self):
        program = parse_program(
            "P(x, y) :- E(x, y), x != 1", goal="P")
        assert program.evaluate(GRAPH) == frozenset({(2, 3)})


class TestSpannedParsing:
    """Edge cases of the span-carrying parser entry points."""

    def test_multi_line_rules_carry_line_numbers(self):
        from repro.queries.parser import parse_rules_spanned
        text = "Q(x) :- E(x, y)\nQ(x) :- L(x, l), l = 'a'\n"
        rules, spans = parse_rules_spanned(text)
        assert len(rules) == len(spans) == 2
        first, second = spans
        assert (first.rule.line, first.rule.column) == (1, 1)
        assert (second.rule.line, second.rule.column) == (2, 1)
        # Offsets are absolute: the second rule starts after the newline.
        assert text[second.rule.offset:].startswith("Q(x) :- L")
        # Literal spans are in body order.
        assert [text[s.offset:s.offset + s.length]
                for s in second.literals] == ["L(x, l)", "l = 'a'"]

    def test_variable_spans_record_first_occurrence(self):
        from repro.queries.parser import parse_query_spanned
        text = "Q(x) :- E(x, y), E(y, z)"
        _, spans = parse_query_spanned(text)
        (rule,) = spans
        assert text[rule.variables["x"].offset] == "x"
        # y's recorded occurrence is its first, inside the first atom.
        assert rule.variables["y"].offset == text.index("y")

    def test_tab_counts_as_one_column(self):
        from repro.queries.parser import parse_rules_spanned
        text = "\tQ(x) :- E(x,\ty)"
        _, spans = parse_rules_spanned(text)
        (rule,) = spans
        assert (rule.rule.line, rule.rule.column) == (1, 2)
        assert text[rule.rule.offset] == "Q"

    def test_error_at_eof_points_past_the_last_character(self):
        text = "Q(x) :- E(x,"
        with pytest.raises(ParseError) as excinfo:
            parse_query(text)
        error = excinfo.value
        assert error.line == 1
        assert error.offset == len(text)
        assert error.column == len(text) + 1

    def test_eof_column_resets_per_line(self):
        text = "Q(x) :- E(x, y)\nQ(x) :- E(x,"
        with pytest.raises(ParseError) as excinfo:
            parse_query(text)
        error = excinfo.value
        assert error.line == 2
        assert error.column == len("Q(x) :- E(x,") + 1

    def test_parse_error_round_trips_through_report_json(self):
        import json

        from repro.analysis import lint_bundle
        text = "Q(x) :- E(x,"
        payload = {
            "schema": {"relations": [
                {"name": "E",
                 "attributes": [{"name": "a"}, {"name": "b"}]}]},
            "master_schema": {"relations": [
                {"name": "M", "attributes": [{"name": "a"}]}]},
            "query": {"language": "CQ", "text": text},
            "constraints": [],
        }
        report = lint_bundle(payload)
        decoded = json.loads(json.dumps(report.to_dict()))
        (entry,) = [d for d in decoded["diagnostics"]
                    if d["code"] == "RC000"]
        span = entry["span"]
        assert span["source"] == "query"
        assert (span["line"], span["column"]) == (1, len(text) + 1)
        assert span["offset"] == len(text)
        # The caret renders on the offending line, past its last char.
        rendered = report.render()
        caret_line = rendered.splitlines()[2]
        assert caret_line == "    " + " " * len(text) + "^"
