"""Tests for the deterministic 2-head DFA simulator."""

import pytest

from repro.errors import ReproError
from repro.solvers.twohead import EPSILON, TwoHeadDFA, bounded_emptiness


def equal_halves_automaton() -> TwoHeadDFA:
    """Accepts strings of the form 0ⁿ1ⁿ (n ≥ 1) — a classic non-regular
    language a 2-head DFA recognizes.

    Head 2 first skips to the first '1' (verifying a 0-block); then both
    heads advance together, head 1 over the 0s and head 2 over the 1s;
    acceptance when head 1 reads '1' exactly when head 2 falls off the end.
    """
    transitions = {
        # Phase A (state s): head 2 scans over the 0-block.
        ("s", "0", "0"): ("s", 0, 1),
        # Head 2 found the first 1: start matching (requires ≥ one 0).
        ("s", "0", "1"): ("m", 1, 1),
        # Phase M: head 1 consumes a 0 for every 1 head 2 consumes.
        ("m", "0", "1"): ("m", 1, 1),
        # Head 1 reaches the 1-block exactly when head 2 reaches the end.
        ("m", "1", EPSILON): ("acc", 0, 0),
    }
    return TwoHeadDFA(states={"s", "m", "acc"}, transitions=transitions,
                      initial="s", accepting="acc")


class TestSimulation:
    @pytest.mark.parametrize("word", ["01", "0011", "000111"])
    def test_accepts_equal_halves(self, word):
        assert equal_halves_automaton().accepts(word)

    @pytest.mark.parametrize(
        "word", ["", "0", "1", "10", "001", "011", "0101", "00011"])
    def test_rejects_others(self, word):
        assert not equal_halves_automaton().accepts(word)

    def test_invalid_alphabet_rejected(self):
        with pytest.raises(ReproError):
            equal_halves_automaton().accepts("2")

    def test_accepting_run_recorded(self):
        run = equal_halves_automaton().accepting_run("0011")
        assert run is not None
        assert run[0] == ("s", 0, 0)
        assert run[-1][0] == "acc"

    def test_accepting_run_none_on_reject(self):
        assert equal_halves_automaton().accepting_run("10") is None

    def test_loop_detection_terminates(self):
        # A machine that spins in place forever.
        spinner = TwoHeadDFA(
            states={"q", "acc"},
            transitions={("q", "0", "0"): ("q", 0, 0)},
            initial="q", accepting="acc")
        assert not spinner.accepts("0")

    def test_max_steps_cap(self):
        automaton = equal_halves_automaton()
        assert not automaton.accepts("000111", max_steps=1)


class TestConstruction:
    def test_unknown_state_rejected(self):
        with pytest.raises(ReproError):
            TwoHeadDFA(states={"a"},
                       transitions={("a", "0", "0"): ("zzz", 0, 0)},
                       initial="a", accepting="a")

    def test_invalid_read_symbol_rejected(self):
        with pytest.raises(ReproError):
            TwoHeadDFA(states={"a"},
                       transitions={("a", "x", "0"): ("a", 0, 0)},
                       initial="a", accepting="a")

    def test_invalid_move_rejected(self):
        with pytest.raises(ReproError):
            TwoHeadDFA(states={"a"},
                       transitions={("a", "0", "0"): ("a", -1, 0)},
                       initial="a", accepting="a")


class TestBoundedEmptiness:
    def test_finds_shortest_witness(self):
        assert bounded_emptiness(equal_halves_automaton(), 4) == "01"

    def test_reports_none_below_threshold(self):
        assert bounded_emptiness(equal_halves_automaton(), 1) is None

    def test_empty_language_machine(self):
        dead = TwoHeadDFA(states={"q", "acc"}, transitions={},
                          initial="q", accepting="acc")
        assert bounded_emptiness(dead, 4) is None

    def test_accepts_empty_word_machine(self):
        trivial = TwoHeadDFA(
            states={"q", "acc"},
            transitions={("q", EPSILON, EPSILON): ("acc", 0, 0)},
            initial="q", accepting="acc")
        assert bounded_emptiness(trivial, 2) == ""
