"""Tests for the datalog (FP) engine."""

import pytest

from repro.errors import QueryError
from repro.queries.atoms import neq, rel
from repro.queries.datalog import DatalogQuery, Rule, rule
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema([RelationSchema("E", ["src", "dst"])])


@pytest.fixture
def chain(schema):
    return Instance(schema, {"E": {(1, 2), (2, 3), (3, 4)}})


def transitive_closure_program() -> DatalogQuery:
    x, y, z = var("x"), var("y"), var("z")
    return DatalogQuery([
        rule(rel("T", x, y), rel("E", x, y)),
        rule(rel("T", x, z), rel("E", x, y), rel("T", y, z)),
    ], goal="T")


class TestTransitiveClosure:
    def test_chain(self, chain):
        q = transitive_closure_program()
        expected = {(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)}
        assert q.evaluate(chain) == frozenset(expected)

    def test_cycle(self, schema):
        inst = Instance(schema, {"E": {(1, 2), (2, 1)}})
        q = transitive_closure_program()
        assert q.evaluate(inst) == frozenset(
            {(1, 2), (2, 1), (1, 1), (2, 2)})

    def test_empty_edb(self, schema):
        q = transitive_closure_program()
        assert q.evaluate(Instance.empty(schema)) == frozenset()

    def test_fixpoint_preserves_edb(self, chain):
        q = transitive_closure_program()
        fp = q.fixpoint(chain)
        assert fp.relation("E") == chain["E"]


class TestRuleValidation:
    def test_unsafe_head_variable(self):
        with pytest.raises(QueryError):
            rule(rel("T", var("x"), var("q")), rel("E", var("x"), var("y")))

    def test_unsafe_comparison_variable(self):
        with pytest.raises(QueryError):
            rule(rel("T", var("x")), rel("E", var("x"), var("x")),
                 neq(var("z"), 1))

    def test_head_must_be_relation_atom(self):
        with pytest.raises(QueryError):
            Rule(neq(var("x"), 1), [rel("E", var("x"), var("x"))])

    def test_inconsistent_idb_arity(self):
        with pytest.raises(QueryError):
            DatalogQuery([
                rule(rel("T", var("x")), rel("E", var("x"), var("y"))),
                rule(rel("T", var("x"), var("y")),
                     rel("E", var("x"), var("y"))),
            ], goal="T")

    def test_idb_clash_with_edb(self, chain):
        q = DatalogQuery(
            [rule(rel("E", var("x"), var("y")),
                  rel("E", var("y"), var("x")))], goal="E")
        with pytest.raises(QueryError):
            q.evaluate(chain)

    def test_goal_must_resolve(self, schema):
        q = DatalogQuery([], goal="Nope")
        with pytest.raises(QueryError):
            q.validate(schema)


class TestFeatures:
    def test_inequality_in_body(self, schema):
        inst = Instance(schema, {"E": {(1, 1), (1, 2)}})
        x, y = var("x"), var("y")
        q = DatalogQuery(
            [rule(rel("Proper", x, y), rel("E", x, y), neq(x, y))],
            goal="Proper")
        assert q.evaluate(inst) == frozenset({(1, 2)})

    def test_goal_can_be_edb(self, chain):
        q = DatalogQuery([], goal="E")
        assert q.evaluate(chain) == chain["E"]

    def test_mutual_recursion(self, schema):
        # Even/odd distance from node 1.
        inst = Instance(schema, {"E": {(1, 2), (2, 3), (3, 4)}})
        x, y = var("x"), var("y")
        q = DatalogQuery([
            rule(rel("Even", 1)),
            rule(rel("Odd", y), rel("Even", x), rel("E", x, y)),
            rule(rel("Even", y), rel("Odd", x), rel("E", x, y)),
        ], goal="Even")
        assert q.evaluate(inst) == frozenset({(1,), (3,)})

    def test_constant_only_rule(self, schema):
        q = DatalogQuery([rule(rel("Fact", 42))], goal="Fact")
        assert q.evaluate(Instance.empty(schema)) == frozenset({(42,)})

    def test_language_tag(self):
        assert transitive_closure_program().language == "FP"

    def test_holds_in(self, chain):
        q = transitive_closure_program()
        assert q.holds_in(chain)
