"""Tests for the fixed-(Dm, V) RCQP hardness construction (Corollary 4.6,
∃∀ fragment — see the module docstring for the documented deviation)."""

import itertools
import random

import pytest

from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPStatus
from repro.errors import ReproError
from repro.reductions.qsat_to_rcqp_fixed import (
    reduce_exists_forall_3sat_to_rcqp)
from repro.solvers.qbf import ExistsForall3SAT, random_exists_forall_3sat
from repro.solvers.sat import CNF


def _witness_exists(instance) -> bool:
    """Search over all ∃-assignments for a complete witness database."""
    formula = instance.formula
    for values in itertools.product((False, True),
                                    repeat=len(formula.existential)):
        assignment = dict(zip(formula.existential, values))
        witness = instance.witness_for(assignment)
        verdict = decide_rcdp(instance.query, witness, instance.master,
                              list(instance.constraints))
        if verdict.status is RCDPStatus.COMPLETE:
            return True
    return False


class TestHandPicked:
    def test_true_formula_has_complete_witness(self):
        # ∃x ∀y. (x ∨ y ∨ y): x = 1 works
        formula = ExistsForall3SAT([1], [2], CNF([(1, 2, 2)]))
        assert formula.is_true()
        instance = reduce_exists_forall_3sat_to_rcqp(formula)
        assert _witness_exists(instance)

    def test_false_formula_has_no_complete_witness(self):
        # ∃x ∀y. (y): fails at y = 0 for every x
        formula = ExistsForall3SAT([1], [2], CNF([(2, 2, 2)]))
        assert not formula.is_true()
        instance = reduce_exists_forall_3sat_to_rcqp(formula)
        assert not _witness_exists(instance)

    def test_master_and_constraints_independent_of_formula(self):
        # Fixed (Dm, V): two different formulas share master data and
        # constraint names/shapes.
        f1 = ExistsForall3SAT([1], [2], CNF([(1, 2, 2)]))
        f2 = ExistsForall3SAT([1, 2], [3], CNF([(1, -2, 3), (-1, 2, -3)]))
        i1 = reduce_exists_forall_3sat_to_rcqp(f1)
        i2 = reduce_exists_forall_3sat_to_rcqp(f2)
        assert i1.master == i2.master
        assert [c.name for c in i1.constraints] == \
            [c.name for c in i2.constraints]

    def test_witness_satisfies_constraints(self):
        from repro.constraints.containment import satisfies_all

        formula = ExistsForall3SAT([1], [2], CNF([(1, 2, 2)]))
        instance = reduce_exists_forall_3sat_to_rcqp(formula)
        witness = instance.witness_for({1: True})
        assert satisfies_all(witness, instance.master,
                             list(instance.constraints))

    def test_requires_universal_block(self):
        formula = ExistsForall3SAT([1], [], CNF([(1, 1, 1)]))
        with pytest.raises(ReproError):
            reduce_exists_forall_3sat_to_rcqp(formula)

    def test_losing_assignment_witness_is_incomplete(self):
        # For ∃x ∀y. (x ∨ y): x = 0 loses (y = 0 falsifies).
        formula = ExistsForall3SAT([1], [2], CNF([(1, 2, 2)]))
        instance = reduce_exists_forall_3sat_to_rcqp(formula)
        witness = instance.witness_for({1: False})
        verdict = decide_rcdp(instance.query, witness, instance.master,
                              list(instance.constraints))
        assert verdict.status is RCDPStatus.INCOMPLETE


@pytest.mark.parametrize("seed", range(10))
def test_agrees_with_qbf_solver_on_random_instances(seed):
    rng = random.Random(seed)
    formula = random_exists_forall_3sat(2, 2, rng.randint(1, 5), rng)
    instance = reduce_exists_forall_3sat_to_rcqp(formula)
    assert _witness_exists(instance) == formula.is_true()
