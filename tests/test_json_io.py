"""Tests for JSON serialization round-trips."""

import pytest

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.errors import ReproError
from repro.io.json_io import (constraint_from_dict, constraint_to_dict,
                              dump_bundle, instance_from_dict,
                              instance_to_dict, load_bundle,
                              query_from_dict, query_to_dict,
                              schema_from_dict, schema_to_dict)
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.parser import parse_program, parse_query
from repro.queries.terms import var
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

SCHEMA = DatabaseSchema([
    RelationSchema("S", ["eid", "cid"]),
    RelationSchema("F", [Attribute("b", BOOLEAN)]),
])
MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["cid"])])


class TestSchemaRoundTrip:
    def test_infinite_and_finite_domains(self):
        data = schema_to_dict(SCHEMA)
        restored = schema_from_dict(data)
        assert restored.relation_names == SCHEMA.relation_names
        assert restored.relation("S").arity == 2
        assert not restored.relation("F").domain_at(0).is_infinite

    def test_finite_domain_values_preserved(self):
        restored = schema_from_dict(schema_to_dict(SCHEMA))
        assert set(restored.relation("F").attributes[0].domain.values) \
            == {0, 1}


class TestInstanceRoundTrip:
    def test_round_trip(self):
        inst = Instance(SCHEMA, {"S": {("e0", "c1"), ("e1", "c2")},
                                 "F": {(0,)}})
        restored = instance_from_dict(instance_to_dict(inst), SCHEMA)
        assert restored == inst

    def test_empty_relations_omitted(self):
        inst = Instance(SCHEMA, {"S": {("e0", "c1")}})
        data = instance_to_dict(inst)
        assert "F" not in data


class TestQueryRoundTrip:
    def test_cq(self):
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        restored = query_from_dict(query_to_dict(q))
        inst = Instance(SCHEMA, {"S": {("e0", "c1"), ("e1", "c2")}})
        assert restored.evaluate(inst) == q.evaluate(inst)

    def test_cq_with_comparison(self):
        q = cq([var("e")], [rel("S", var("e"), var("c")),
                            eq(var("c"), "c1")])
        restored = query_from_dict(query_to_dict(q))
        inst = Instance(SCHEMA, {"S": {("e0", "c1"), ("e1", "c2")}})
        assert restored.evaluate(inst) == q.evaluate(inst)

    def test_ucq(self):
        q = parse_query("Q(c) :- S('e0', c); Q(c) :- S('e1', c)")
        restored = query_from_dict(query_to_dict(q))
        inst = Instance(SCHEMA, {"S": {("e0", "c1"), ("e1", "c2")}})
        assert restored.evaluate(inst) == q.evaluate(inst)

    def test_datalog(self):
        program = parse_program(
            "T(x) :- S(x, y)\nT(y) :- S(x, y), T(x)", goal="T")
        restored = query_from_dict(query_to_dict(program))
        inst = Instance(SCHEMA, {"S": {("e0", "c1")}})
        assert restored.evaluate(inst) == program.evaluate(inst)

    def test_fo_rejected(self):
        from repro.queries.fo import FOQuery, fo_atom

        q = FOQuery([var("x")], fo_atom(rel("M", var("x"))))
        with pytest.raises(ReproError):
            query_to_dict(q)


class TestConstraintRoundTrip:
    def test_projection_target(self):
        q = cq([var("c")], [rel("S", var("e"), var("c"))])
        cc = ContainmentConstraint(q, Projection.on("M", [0]), name="φ")
        restored = constraint_from_dict(constraint_to_dict(cc))
        assert restored.name == "φ"
        assert restored.projection.relation == "M"
        assert restored.projection.columns == (0,)

    def test_empty_target(self):
        q = cq([var("e")], [rel("S", var("e"), var("c"))])
        cc = ContainmentConstraint(q, Projection.empty(), name="ψ")
        restored = constraint_from_dict(constraint_to_dict(cc))
        assert restored.projection.is_empty_target


class TestBundle:
    def test_dump_and_load(self, tmp_path):
        database = Instance(SCHEMA, {"S": {("e0", "c1")}})
        master = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        cc = ContainmentConstraint(
            cq([var("c")], [rel("S", var("e"), var("c"))]),
            Projection.on("M", [0]), name="ind")
        path = tmp_path / "bundle.json"
        dump_bundle(str(path), schema=SCHEMA,
                    master_schema=MASTER_SCHEMA, database=database,
                    master=master, query=q, constraints=[cc])
        bundle = load_bundle(str(path))
        assert bundle["database"] == database
        assert bundle["master"] == master
        assert bundle["query"].evaluate(database) == q.evaluate(database)
        assert len(bundle["constraints"]) == 1

    def test_loaded_bundle_drives_decider(self, tmp_path):
        from repro.core.rcdp import decide_rcdp
        from repro.core.results import RCDPStatus

        database = Instance(SCHEMA, {"S": {("e0", "c1")}})
        master = Instance(MASTER_SCHEMA, {"M": {("c1",), ("c2",)}})
        q = cq([var("c")], [rel("S", "e0", var("c"))])
        cc = ContainmentConstraint(
            cq([var("c")], [rel("S", var("e"), var("c"))]),
            Projection.on("M", [0]), name="ind")
        path = tmp_path / "bundle.json"
        dump_bundle(str(path), schema=SCHEMA,
                    master_schema=MASTER_SCHEMA, database=database,
                    master=master, query=q, constraints=[cc])
        bundle = load_bundle(str(path))
        result = decide_rcdp(bundle["query"], bundle["database"],
                             bundle["master"], bundle["constraints"])
        assert result.status is RCDPStatus.INCOMPLETE


class TestIncompleteRoundTrip:
    def test_nulls_round_trip(self):
        import json

        from repro.incomplete.nulls import MarkedNull
        from repro.incomplete.tables import IncompleteDatabase
        from repro.io.json_io import (incomplete_from_dict,
                                      incomplete_to_dict)

        x = MarkedNull("x")
        db = IncompleteDatabase(SCHEMA, {"S": {("e0", x), ("e1", "c1")}})
        payload = incomplete_to_dict(db)
        # must be plain JSON
        text = json.dumps(payload)
        restored = incomplete_from_dict(json.loads(text), SCHEMA)
        assert restored.nulls() == {x}
        worlds_a = {w for w in db.possible_worlds(["c1", "c2"])}
        worlds_b = {w for w in restored.possible_worlds(["c1", "c2"])}
        assert worlds_a == worlds_b

    def test_conditions_round_trip(self):
        from repro.incomplete.conditions import (NeqCondition, conjunction)
        from repro.incomplete.nulls import MarkedNull
        from repro.incomplete.tables import (ConditionalRow,
                                             IncompleteDatabase)
        from repro.io.json_io import (incomplete_from_dict,
                                      incomplete_to_dict)

        x = MarkedNull("x")
        row = ConditionalRow(("e0", x), conjunction(NeqCondition(x, "c1")))
        db = IncompleteDatabase(SCHEMA, {"S": [row]})
        restored = incomplete_from_dict(incomplete_to_dict(db), SCHEMA)
        worlds_a = sorted(
            repr(w) for w in db.possible_worlds(["c1", "c2"]))
        worlds_b = sorted(
            repr(w) for w in restored.possible_worlds(["c1", "c2"]))
        assert worlds_a == worlds_b

    def test_null_encoding_shape(self):
        from repro.incomplete.nulls import MarkedNull
        from repro.incomplete.tables import IncompleteDatabase
        from repro.io.json_io import incomplete_to_dict

        db = IncompleteDatabase(SCHEMA, {"S": {("e0", MarkedNull("u"))}})
        payload = incomplete_to_dict(db)
        (entry,) = payload["S"]
        assert entry["row"][1] == {"⊥": "u"}
