"""Tests for containment constraints (CCs) and projections."""

import pytest

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection, satisfies_all,
                                           violated_constraints)
from repro.constraints.ind import InclusionDependency
from repro.errors import ConstraintError
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema([
        RelationSchema("Cust", ["cid", "name", "cc"]),
        RelationSchema("Supt", ["eid", "cid"]),
    ])


@pytest.fixture
def master_schema():
    return DatabaseSchema([RelationSchema("DCust", ["cid", "name"])])


@pytest.fixture
def master(master_schema):
    return Instance(master_schema, {
        "DCust": {("c1", "ann"), ("c2", "bob")}})


def domestic_cc(schema_unused=None):
    """φ0 of Example 2.1: domestic customers bounded by DCust."""
    q = cq([var("c")],
           [rel("Cust", var("c"), var("n"), var("cc")),
            eq(var("cc"), "01")], name="domestic")
    return ContainmentConstraint(q, Projection.on("DCust", [0]), name="φ0")


class TestProjection:
    def test_evaluate(self, master):
        assert Projection.on("DCust", [0]).evaluate(master) == frozenset(
            {("c1",), ("c2",)})

    def test_full(self, master):
        assert Projection.full("DCust", 2).evaluate(master) == master["DCust"]

    def test_reordered_columns(self, master):
        assert Projection.on("DCust", [1, 0]).evaluate(master) == frozenset(
            {("ann", "c1"), ("bob", "c2")})

    def test_empty_target(self, master):
        assert Projection.empty().evaluate(master) == frozenset()
        assert Projection.empty().is_empty_target

    def test_validate_column_range(self, master_schema):
        with pytest.raises(ConstraintError):
            Projection.on("DCust", [5]).validate(master_schema)


class TestContainmentConstraint:
    def test_satisfied(self, schema, master):
        db = Instance(schema, {
            "Cust": {("c1", "ann", "01"), ("c9", "zoe", "44")}})
        assert domestic_cc().is_satisfied(db, master)

    def test_violated(self, schema, master):
        db = Instance(schema, {"Cust": {("c9", "zoe", "01")}})
        cc = domestic_cc()
        assert not cc.is_satisfied(db, master)
        assert cc.violating_answers(db, master) == frozenset({("c9",)})

    def test_empty_target_requires_empty_answer(self, schema, master):
        q = cq([var("e")], [rel("Supt", var("e"), var("c"))])
        cc = ContainmentConstraint(q, Projection.empty())
        assert cc.is_satisfied(Instance.empty(schema), master)
        assert not cc.is_satisfied(
            Instance(schema, {"Supt": {("e0", "c1")}}), master)

    def test_arity_mismatch_rejected(self):
        q = cq([var("c"), var("n")],
               [rel("Cust", var("c"), var("n"), var("cc"))])
        with pytest.raises(ConstraintError):
            ContainmentConstraint(q, Projection.on("DCust", [0]))

    def test_satisfies_all_and_violated(self, schema, master):
        db = Instance(schema, {"Cust": {("c9", "zoe", "01")}})
        good = ContainmentConstraint(
            cq([var("e")], [rel("Supt", var("e"), var("c"))]),
            Projection.empty(), name="no-support")
        bad = domestic_cc()
        assert not satisfies_all(db, master, [good, bad])
        assert violated_constraints(db, master, [good, bad]) == [bad]

    def test_language_flag(self):
        cc = domestic_cc()
        assert cc.language == "CQ"
        assert cc.is_decidable_language


class TestINDDetection:
    def test_projection_query_is_ind(self, schema, master_schema):
        ind = InclusionDependency("Supt", ["cid"], "DCust", ["cid"])
        cc = ind.to_containment_constraint(schema, master_schema)
        assert cc.is_ind()
        relation, columns = cc.ind_source()
        assert relation == "Supt"
        assert columns == (1,)

    def test_selection_query_is_not_ind(self):
        assert not domestic_cc().is_ind()

    def test_join_query_is_not_ind(self):
        q = cq([var("c")],
               [rel("Supt", var("e"), var("c")),
                rel("Cust", var("c"), var("n"), var("cc"))])
        cc = ContainmentConstraint(q, Projection.on("DCust", [0]))
        assert not cc.is_ind()

    def test_constant_in_atom_is_not_ind(self):
        q = cq([var("c")], [rel("Supt", "e0", var("c"))])
        cc = ContainmentConstraint(q, Projection.on("DCust", [0]))
        assert not cc.is_ind()

    def test_ind_source_on_non_ind_raises(self):
        with pytest.raises(ConstraintError):
            domestic_cc().ind_source()


class TestINDClass:
    def test_satisfaction_through_cc(self, schema, master_schema, master):
        ind = InclusionDependency("Supt", ["cid"], "DCust", ["cid"])
        cc = ind.to_containment_constraint(schema, master_schema)
        ok = Instance(schema, {"Supt": {("e0", "c1")}})
        bad = Instance(schema, {"Supt": {("e0", "c9")}})
        assert cc.is_satisfied(ok, master)
        assert not cc.is_satisfied(bad, master)

    def test_empty_target_ind(self, schema, master_schema, master):
        ind = InclusionDependency("Supt", ["eid"], None)
        cc = ind.to_containment_constraint(schema, master_schema)
        assert cc.is_satisfied(Instance.empty(schema), master)
        assert not cc.is_satisfied(
            Instance(schema, {"Supt": {("e0", "c1")}}), master)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            InclusionDependency("Supt", ["cid", "eid"], "DCust", ["cid"])

    def test_repr_readable(self):
        ind = InclusionDependency("Supt", ["cid"], "DCust", ["cid"])
        assert "Supt[cid]" in repr(ind)
