"""Observability tests: unit coverage for ``repro.obs`` plus the two
layer-wide invariants the module's docstring promises.

* **Traced ≡ untraced** (property-based): attaching an
  :class:`~repro.obs.Observation` to the governor — enabled or
  disabled, serial or sharded, with or without fault injection — never
  changes a verdict, a witness, or the search statistics.  Tracing is
  observation-only.
* **Well-formed traces on the corpus**: every ``examples/bundles``
  bundle that carries a ``"trace"`` block decides cleanly under a
  tracer at ``workers ∈ {1, 2}``; the exported JSONL records pass
  :func:`~repro.obs.check_trace` (no orphans, no same-lane overlap,
  children inside parents, root tick deltas == governor ledger ==
  ``SearchStatistics``) and contain the bundle's expected phase spans.
"""

import json
from pathlib import Path

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints.containment import satisfies_all
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, SearchStatistics
from repro.core.witness import make_complete
from repro.errors import ReproError
from repro.io.json_io import load_bundle
from repro.obs import (MetricsRegistry, Observation, Tracer, check_trace,
                       merged_span_ticks, obs_of, obs_span, profile_rows,
                       read_trace, render_profile, trace_records,
                       write_trace)
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.runtime import Budget, ExecutionGovernor, FaultInjector

from tests.strategies import SCHEMA, conjunctive_queries, instances

MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["c"])])
DM = Instance(MASTER_SCHEMA, {"M": {(0,), (1,)}})
IND = InclusionDependency(
    "R", ["b"], "M", ["c"]).to_containment_constraint(
    SCHEMA, MASTER_SCHEMA)

BUNDLE_DIR = (Path(__file__).resolve().parent.parent / "examples"
              / "bundles")
TRACED_BUNDLES = sorted(
    path for path in BUNDLE_DIR.glob("*.json")
    if "trace" in json.loads(path.read_text(encoding="utf-8")))


def observed_governor(*, enabled=True, faults=None):
    """A governor with an unlimited tick ledger and an attached
    observation — the tracing configuration the CLI builds."""
    governor = ExecutionGovernor(budget=Budget(), faults=faults)
    Observation.attach(governor, enabled=enabled)
    return governor


# ---------------------------------------------------------------------
# Unit: tracer
# ---------------------------------------------------------------------

class TestTracer:
    def test_spans_nest_by_dynamic_scope(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.started <= inner.started
        assert inner.ended <= outer.ended

    def test_tick_attribution_diffs_the_source(self):
        ledger = {"valuations": 0}
        tracer = Tracer(tick_source=lambda: dict(ledger))
        with tracer.span("search"):
            ledger["valuations"] = 7
        assert tracer.spans[0].ticks == {"valuations": 7}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("phase") as span:
            assert span is None
        assert tracer.spans == []

    def test_max_spans_drops_leaves_only(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("root"):
            with tracer.span("kept"):
                pass
            with tracer.span("dropped") as span:
                assert span is None
        assert [s.name for s in tracer.spans] == ["kept", "root"]
        assert tracer.dropped_spans == 1

    def test_absorb_reparents_and_stamps_lane(self):
        worker = Tracer()
        with worker.span("shard"):
            with worker.span("work"):
                pass
        parent = Tracer()
        with parent.span("root"):
            parent.absorb(worker.to_records(), lane="shard-0")
        names = {s.name: s for s in parent.spans}
        root = names["root"]
        assert names["shard"].parent_id == root.span_id
        assert names["work"].parent_id == names["shard"].span_id
        assert names["shard"].attributes["lane"] == "shard-0"

    def test_on_span_end_hooks_fire_in_completion_order(self):
        tracer = Tracer()
        seen = []
        tracer.on_span_end.append(lambda span: seen.append(span.name))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert seen == ["b", "a"]


# ---------------------------------------------------------------------
# Unit: metrics
# ---------------------------------------------------------------------

class TestMetrics:
    def test_merge_adds_counters_and_combines_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.count("calls", 2)
        left.observe("seconds", 1.0)
        right.count("calls", 3)
        right.observe("seconds", 3.0)
        right.gauge("shard", 1)
        left.merge(right.snapshot())
        assert left.counters["calls"] == 5
        assert left.gauges["shard"] == 1
        summary = left.histograms["seconds"]
        assert summary == {"count": 2, "total": 4.0,
                           "min": 1.0, "max": 3.0}

    def test_statistics_roundtrip_through_search_counters(self):
        registry = MetricsRegistry()
        stats = SearchStatistics(valuations_examined=5,
                                 plans_compiled=2, index_builds=1)
        registry.record_statistics(stats)
        assert registry.as_search_statistics() == stats
        assert registry.counters["search.valuations_examined"] == 5

    def test_record_ticks_uses_the_governor_namespace(self):
        registry = MetricsRegistry()
        registry.record_ticks({"valuations": 4, "idle": 0})
        assert registry.counters == {"governor.ticks.valuations": 4}


# ---------------------------------------------------------------------
# Property: merge is associative and order-insensitive over
# shard-style snapshots (satellite: what supervision relies on when it
# folds worker registries home in completion order, not shard order).
#
# Scope of the claim: counter and histogram values are kept integral so
# float addition is exact, and gauge names are disjoint per shard
# (``parallel.shard.N.consumed``) — gauges are last-write-wins, so
# colliding gauge keys are legitimately order-sensitive and real shard
# snapshots never collide.
# ---------------------------------------------------------------------

_COUNTER_NAMES = st.sampled_from(
    ["governor.ticks.valuations", "governor.ticks.nodes",
     "search.valuations_examined", "search.constraint_checks",
     "span.enumerate_valuations.calls"])
_HIST_NAMES = st.sampled_from(
    ["span.decide_rcdp.seconds", "span.analyze.seconds"])


@st.composite
def _shard_snapshots(draw):
    """A list of 2–5 worker-registry snapshots with disjoint gauges."""
    snapshots = []
    for index in range(draw(st.integers(2, 5))):
        registry = MetricsRegistry()
        for name, amount in draw(st.dictionaries(
                _COUNTER_NAMES, st.integers(0, 1000), max_size=4)).items():
            registry.count(name, amount)
        registry.gauge(f"parallel.shard.{index}.consumed",
                       float(draw(st.integers(0, 1000))))
        for name, values in draw(st.dictionaries(
                _HIST_NAMES,
                st.lists(st.integers(0, 100), min_size=1, max_size=4),
                max_size=2)).items():
            for value in values:
                registry.observe(name, float(value))
        snapshots.append(registry.snapshot())
    return snapshots


def _fold(*snapshots):
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


class TestMergeProperties:
    @settings(max_examples=50, deadline=None)
    @given(snapshots=_shard_snapshots(),
           seed=st.randoms(use_true_random=False))
    def test_merge_is_order_insensitive(self, snapshots, seed):
        shuffled = list(snapshots)
        seed.shuffle(shuffled)
        assert _fold(*shuffled) == _fold(*snapshots)

    @settings(max_examples=50, deadline=None)
    @given(snapshots=_shard_snapshots())
    def test_merge_is_associative(self, snapshots):
        a, b, *rest = snapshots
        left_first = _fold(_fold(a, b), *rest)
        right_first = _fold(a, _fold(b, *rest))
        assert left_first == right_first == _fold(*snapshots)

    @settings(max_examples=50, deadline=None)
    @given(snapshots=_shard_snapshots())
    def test_empty_registry_is_identity(self, snapshots):
        folded = _fold(*snapshots)
        assert _fold({}, *snapshots) == folded
        assert _fold(*snapshots, _fold()) == folded


# ---------------------------------------------------------------------
# Unit: trace IO + profile
# ---------------------------------------------------------------------

class TestTraceIO:
    def _records(self):
        tracer = Tracer(tick_source=lambda: {})
        with tracer.span("decide_rcdp"):
            with tracer.span("analyze"):
                pass
            with tracer.span("enumerate_valuations"):
                pass
        return trace_records(tracer.to_records(), procedure="rcdp",
                             command="rcdp bundle.json",
                             ticks={}, verdict="complete")

    def test_roundtrip_and_check(self, tmp_path):
        records = self._records()
        path = tmp_path / "trace.jsonl"
        write_trace(str(path), records)
        loaded = read_trace(str(path))
        assert loaded == json.loads(json.dumps(records))
        assert check_trace(loaded) == []

    def test_check_flags_orphans_and_duplicates(self):
        records = self._records()
        spans = [r for r in records if r["type"] == "span"]
        spans[0]["parent"] = 999
        problems = check_trace(records)
        assert any("orphan" in problem for problem in problems)
        spans[1]["id"] = spans[2]["id"]
        assert any("duplicate" in problem
                   for problem in check_trace(records))

    def test_check_flags_same_lane_overlap(self):
        records = self._records()
        spans = [r for r in records if r["type"] == "span"]
        # Force the two siblings to overlap in the main lane.
        spans[1]["start"] = spans[0]["start"]
        spans[1]["end"] = spans[0]["end"] + (spans[0]["end"]
                                             - spans[0]["start"]) + 1e-3
        spans[1]["dur"] = spans[1]["end"] - spans[1]["start"]
        spans[2]["end"] = max(spans[2]["end"], spans[1]["end"])
        spans[2]["dur"] = spans[2]["end"] - spans[2]["start"]
        assert any("overlap" in problem
                   for problem in check_trace(records))

    def test_check_flags_ledger_statistics_mismatch(self):
        tracer = Tracer(tick_source=lambda: {})
        with tracer.span("decide_rcdp"):
            pass
        tracer.spans[0].ticks = {"valuations": 3}
        records = trace_records(
            tracer.to_records(), procedure="rcdp",
            statistics=SearchStatistics(valuations_examined=5),
            ticks={"valuations": 3}, verdict="complete")
        problems = check_trace(records)
        assert any("statistics" in problem for problem in problems)

    def test_check_flags_root_ledger_divergence(self):
        records = self._records()
        stats = [r for r in records if r["type"] == "statistics"][0]
        stats["ticks"] = {"valuations": 2}
        assert any("ledger" in problem.lower()
                   for problem in check_trace(records))

    def test_merged_span_ticks_counts_roots_only(self):
        records = [
            {"type": "span", "id": 0, "parent": None,
             "ticks": {"valuations": 5}},
            {"type": "span", "id": 1, "parent": 0,
             "ticks": {"valuations": 3}},
        ]
        assert merged_span_ticks(records) == {"valuations": 5}
        assert merged_span_ticks(records, roots_only=False) == {
            "valuations": 8}


class TestProfile:
    def test_own_time_subtracts_children(self):
        records = [
            {"type": "span", "id": 0, "parent": None, "name": "root",
             "start": 0.0, "end": 1.0, "dur": 1.0,
             "ticks": {"valuations": 4}},
            {"type": "span", "id": 1, "parent": 0, "name": "child",
             "start": 0.1, "end": 0.4, "dur": 0.3, "ticks": {}},
        ]
        rows = {row["name"]: row for row in profile_rows(records)}
        assert rows["root"]["own_s"] == pytest.approx(0.7)
        assert rows["root"]["ticks"] == {"valuations": 4}
        table = render_profile(records)
        assert "root" in table and "child" in table
        assert "valuations=4" in table

    def test_empty_profile_renders_placeholder(self):
        assert "no spans" in render_profile([])


# ---------------------------------------------------------------------
# The traced ≡ untraced property (satellite: observation-only tracing)
# ---------------------------------------------------------------------

def _assert_same_decision(plain, traced):
    assert traced.status is plain.status
    assert traced.explanation == plain.explanation
    if plain.certificate is None:
        assert traced.certificate is None
    else:
        assert traced.certificate is not None
        assert (traced.certificate.extension_facts
                == plain.certificate.extension_facts)
        assert (traced.certificate.new_answer
                == plain.certificate.new_answer)


class TestTracedEqualsUntraced:
    @settings(max_examples=25, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances(), enabled=st.booleans())
    def test_rcdp_serial(self, query, db, enabled):
        assume(satisfies_all(db, DM, [IND]))
        try:
            plain = decide_rcdp(query, db, DM, [IND],
                                governor=ExecutionGovernor(
                                    budget=Budget()))
        except ReproError:
            assume(False)
        traced = decide_rcdp(query, db, DM, [IND],
                             governor=observed_governor(enabled=enabled))
        _assert_same_decision(plain, traced)
        assert traced.statistics == plain.statistics

    @settings(max_examples=10, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances())
    def test_rcdp_two_workers(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            plain = decide_rcdp(query, db, DM, [IND], workers=2)
        except ReproError:
            assume(False)
        traced = decide_rcdp(query, db, DM, [IND], workers=2,
                             governor=observed_governor())
        _assert_same_decision(plain, traced)
        if plain.status is RCDPStatus.COMPLETE:
            # Full enumeration: merged counters are exact either way.
            assert (traced.statistics.valuations_examined
                    == plain.statistics.valuations_examined)

    @settings(max_examples=15, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances(), after=st.integers(0, 20),
           workers=st.sampled_from([1, 2]))
    def test_rcdp_fault_injected(self, query, db, after, workers):
        """Deterministic fault clocks: the traced and untraced runs
        trip (or don't) at the same step and agree on the outcome."""
        assume(satisfies_all(db, DM, [IND]))

        def run(governor):
            return decide_rcdp(query, db, DM, [IND], workers=workers,
                               governor=governor, on_exhausted="partial")

        try:
            plain = run(ExecutionGovernor(
                budget=Budget(),
                faults=FaultInjector(exhaust_after=after)))
        except ReproError:
            assume(False)
        traced = run(observed_governor(
            faults=FaultInjector(exhaust_after=after)))
        assert traced.status is plain.status
        assert ((traced.checkpoint is None)
                == (plain.checkpoint is None))
        if plain.status is not RCDPStatus.EXHAUSTED and workers == 1:
            _assert_same_decision(plain, traced)
            assert traced.statistics == plain.statistics

    @settings(max_examples=10, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False))
    def test_rcqp_serial(self, query):
        try:
            plain = decide_rcqp(query, DM, [IND], SCHEMA,
                                governor=ExecutionGovernor(
                                    budget=Budget()))
        except ReproError:
            assume(False)
        traced = decide_rcqp(query, DM, [IND], SCHEMA,
                             governor=observed_governor())
        assert traced.status is plain.status
        assert traced.witness == plain.witness
        assert traced.statistics == plain.statistics

    @settings(max_examples=10, deadline=None)
    @given(query=conjunctive_queries(allow_inequalities=False),
           db=instances())
    def test_make_complete_serial(self, query, db):
        assume(satisfies_all(db, DM, [IND]))
        try:
            plain = make_complete(query, db, DM, [IND],
                                  governor=ExecutionGovernor(
                                      budget=Budget()))
        except ReproError:
            assume(False)
        traced = make_complete(query, db, DM, [IND],
                               governor=observed_governor())
        assert traced.complete == plain.complete
        assert traced.rounds == plain.rounds
        assert traced.added_facts == plain.added_facts
        assert traced.statistics == plain.statistics


# ---------------------------------------------------------------------
# Corpus traces: well-formed span trees with exact tick accounting
# ---------------------------------------------------------------------

def _decide_traced(path, workers):
    bundle = load_bundle(str(path))
    governor = observed_governor()
    observation = obs_of(governor)
    result = decide_rcdp(bundle["query"], bundle["database"],
                         bundle["master"], bundle["constraints"],
                         governor=governor, workers=workers)
    observation.finalize(governor, result.statistics)
    records = trace_records(
        observation.tracer.to_records(), procedure="rcdp",
        command=f"rcdp {path.name}",
        metrics=observation.metrics.snapshot(),
        statistics=result.statistics,
        ticks=governor.budget.snapshot(),
        verdict=result.status.value,
        exhausted=result.status is RCDPStatus.EXHAUSTED)
    return records, result


def test_traced_corpus_is_nonempty():
    assert TRACED_BUNDLES, (
        "examples/bundles/ should ship bundles with 'trace' blocks")


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("path", TRACED_BUNDLES,
                         ids=[path.stem for path in TRACED_BUNDLES])
def test_corpus_traces_are_well_formed(path, workers):
    records, _ = _decide_traced(path, workers)
    problems = check_trace(records)
    assert problems == [], f"{path.name} at workers={workers}: {problems}"


@pytest.mark.parametrize("path", TRACED_BUNDLES,
                         ids=[path.stem for path in TRACED_BUNDLES])
def test_corpus_traces_carry_expected_phases(path):
    block = json.loads(path.read_text(encoding="utf-8"))["trace"]
    assert block["procedure"] == "rcdp"
    records, _ = _decide_traced(path, workers=1)
    names = {r["name"] for r in records if r.get("type") == "span"}
    missing = set(block["expect_spans"]) - names
    assert not missing, f"{path.name}: phases never opened: {missing}"


@pytest.mark.parametrize("path", TRACED_BUNDLES,
                         ids=[path.stem for path in TRACED_BUNDLES])
def test_corpus_worker_spans_carry_lanes(path):
    records, _ = _decide_traced(path, workers=2)
    lanes = {(r.get("attrs") or {}).get("lane")
             for r in records
             if r.get("type") == "span" and r["name"] == "shard"}
    assert lanes == {"shard-0", "shard-1"}


# ---------------------------------------------------------------------
# Observation plumbing
# ---------------------------------------------------------------------

class TestObservation:
    def test_obs_span_returns_null_context_when_unobserved(self):
        assert obs_span(None, "phase") is obs_span(None, "other")
        governor = ExecutionGovernor(budget=Budget())
        assert obs_of(governor) is None
        Observation.attach(governor, enabled=False)
        assert (obs_span(obs_of(governor), "phase")
                is obs_span(None, "phase"))

    def test_finalize_records_ledger_and_statistics(self):
        governor = observed_governor()
        governor.budget.charge("valuations", 3)
        observation = obs_of(governor)
        observation.finalize(
            governor, SearchStatistics(valuations_examined=3))
        counters = observation.metrics.counters
        assert counters["governor.ticks.valuations"] == 3
        assert counters["search.valuations_examined"] == 3
