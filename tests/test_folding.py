"""Tests for the Lemma 3.2 single-relation folding."""

import pytest

from repro.errors import SchemaError
from repro.queries.atoms import eq, rel
from repro.queries.cq import cq
from repro.queries.folding import Folding
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema([
        RelationSchema("E", ["src", "dst"]),
        RelationSchema("L", ["node", "label", "extra"]),
        RelationSchema("U", ["only"]),
    ])


@pytest.fixture
def instance(schema):
    return Instance(schema, {
        "E": {(1, 2), (2, 3)},
        "L": {(1, "a", "x"), (3, "b", "y")},
        "U": {(9,)},
    })


class TestFolding:
    def test_folded_schema_has_single_relation(self, schema):
        folding = Folding.of(schema)
        assert len(folding.folded) == 1
        rel_schema = folding.folded.relation(folding.relation_name)
        assert rel_schema.arity == folding.max_arity + 1

    def test_fold_instance_tuple_count(self, schema, instance):
        folding = Folding.of(schema)
        folded = folding.fold_instance(instance)
        assert len(folded[folding.relation_name]) == instance.total_tuples

    def test_round_trip(self, schema, instance):
        folding = Folding.of(schema)
        assert folding.unfold_instance(
            folding.fold_instance(instance)) == instance

    def test_lemma_32_equivalence_simple(self, schema, instance):
        folding = Folding.of(schema)
        q = cq([var("x"), var("y")], [rel("E", var("x"), var("y"))])
        assert (folding.fold_query(q).evaluate(folding.fold_instance(instance))
                == q.evaluate(instance))

    def test_lemma_32_equivalence_join(self, schema, instance):
        folding = Folding.of(schema)
        q = cq([var("x"), var("l")],
               [rel("E", var("x"), var("y")),
                rel("L", var("y"), var("l"), var("e"))])
        assert (folding.fold_query(q).evaluate(folding.fold_instance(instance))
                == q.evaluate(instance))

    def test_lemma_32_with_comparisons(self, schema, instance):
        folding = Folding.of(schema)
        q = cq([var("n")],
               [rel("L", var("n"), var("lab"), var("e")),
                eq(var("lab"), "a")])
        assert (folding.fold_query(q).evaluate(folding.fold_instance(instance))
                == q.evaluate(instance))

    def test_lemma_32_ucq(self, schema, instance):
        folding = Folding.of(schema)
        q = ucq([
            cq([var("x")], [rel("U", var("x"))]),
            cq([var("x")], [rel("E", var("x"), var("y"))]),
        ])
        assert (folding.fold_ucq(q).evaluate(folding.fold_instance(instance))
                == q.evaluate(instance))

    def test_pad_values_do_not_leak_into_answers(self, schema, instance):
        folding = Folding.of(schema)
        q = cq([var("x")], [rel("U", var("x"))])
        answers = folding.fold_query(q).evaluate(
            folding.fold_instance(instance))
        assert answers == frozenset({(9,)})

    def test_unknown_relation_in_query_rejected(self, schema):
        folding = Folding.of(schema)
        q = cq([], [rel("Nope", var("x"))])
        with pytest.raises(SchemaError):
            folding.fold_query(q)

    def test_name_clash_rejected(self, schema):
        with pytest.raises(SchemaError):
            Folding.of(schema, relation_name="E")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Folding.of(DatabaseSchema([]))
