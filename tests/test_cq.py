"""Tests for conjunctive query construction and evaluation."""

import pytest

from repro.errors import QueryError
from repro.queries.atoms import eq, neq, rel
from repro.queries.cq import ConjunctiveQuery, cq
from repro.queries.terms import Const, Var, var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return DatabaseSchema([
        RelationSchema("E", ["src", "dst"]),
        RelationSchema("L", ["node", "label"]),
    ])


@pytest.fixture
def graph(schema):
    return Instance(schema, {
        "E": {(1, 2), (2, 3), (3, 1), (1, 3)},
        "L": {(1, "a"), (2, "b"), (3, "a")},
    })


class TestConstruction:
    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(QueryError):
            cq([var("x")], [rel("E", var("y"), var("z"))])

    def test_unsafe_comparison_variable_rejected(self):
        with pytest.raises(QueryError):
            cq([], [rel("E", var("x"), var("y")), eq(var("z"), 1)])

    def test_constants_in_head_allowed(self, graph):
        q = cq([Const("fixed"), var("x")], [rel("L", var("x"), "a")])
        assert ("fixed", 1) in q.evaluate(graph)

    def test_unknown_atom_type_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([], ["not-an-atom"])

    def test_validate_checks_relations(self, schema):
        q = cq([], [rel("Nope", var("x"))])
        with pytest.raises(QueryError):
            q.validate(schema)

    def test_validate_checks_arity(self, schema):
        q = cq([], [rel("E", var("x"))])
        with pytest.raises(QueryError):
            q.validate(schema)


class TestEvaluation:
    def test_single_atom(self, graph):
        q = cq([var("x"), var("y")], [rel("E", var("x"), var("y"))])
        assert q.evaluate(graph) == graph["E"]

    def test_join(self, graph):
        q = cq([var("x"), var("z")],
               [rel("E", var("x"), var("y")), rel("E", var("y"), var("z"))])
        answers = q.evaluate(graph)
        assert (1, 3) in answers  # 1->2->3
        assert (3, 2) in answers  # 3->1->2

    def test_repeated_variable_forces_equality(self, graph):
        q = cq([var("x")], [rel("E", var("x"), var("x"))])
        assert q.evaluate(graph) == frozenset()

    def test_constant_in_atom(self, graph):
        q = cq([var("y")], [rel("E", 1, var("y"))])
        assert q.evaluate(graph) == frozenset({(2,), (3,)})

    def test_equality_atom(self, graph):
        q = cq([var("x")],
               [rel("L", var("x"), var("l")), eq(var("l"), "a")])
        assert q.evaluate(graph) == frozenset({(1,), (3,)})

    def test_inequality_atom(self, graph):
        q = cq([var("x")],
               [rel("L", var("x"), var("l")), neq(var("l"), "a")])
        assert q.evaluate(graph) == frozenset({(2,)})

    def test_inequality_between_variables(self, graph):
        q = cq([var("x"), var("y")],
               [rel("L", var("x"), var("l")), rel("L", var("y"), var("l")),
                neq(var("x"), var("y"))])
        assert q.evaluate(graph) == frozenset({(1, 3), (3, 1)})

    def test_boolean_query_true(self, graph):
        q = cq([], [rel("E", 1, 2)])
        assert q.evaluate(graph) == frozenset({()})
        assert q.holds_in(graph)

    def test_boolean_query_false(self, graph):
        q = cq([], [rel("E", 2, 1)])
        assert q.evaluate(graph) == frozenset()
        assert not q.holds_in(graph)

    def test_cross_product(self, graph):
        q = cq([var("x"), var("y")],
               [rel("L", var("x"), "b"), rel("L", var("y"), "b")])
        assert q.evaluate(graph) == frozenset({(2, 2)})

    def test_empty_instance(self, schema):
        q = cq([var("x")], [rel("L", var("x"), "a")])
        assert q.evaluate(Instance.empty(schema)) == frozenset()

    def test_triangle(self, graph):
        q = cq([var("x")],
               [rel("E", var("x"), var("y")), rel("E", var("y"), var("z")),
                rel("E", var("z"), var("x"))])
        assert q.evaluate(graph) == frozenset({(1,), (2,), (3,)})

    def test_monotonicity(self, schema, graph):
        q = cq([var("x"), var("z")],
               [rel("E", var("x"), var("y")), rel("E", var("y"), var("z"))])
        smaller = Instance(schema, {"E": {(1, 2), (2, 3)}})
        assert q.evaluate(smaller) <= q.evaluate(graph)


class TestTransformation:
    def test_rename_variables(self, graph):
        q = cq([var("x")], [rel("L", var("x"), "a")])
        renamed = q.rename_variables({Var("x"): Var("u")})
        assert renamed.evaluate(graph) == q.evaluate(graph)
        assert Var("u") in renamed.variables()
        assert Var("x") not in renamed.variables()

    def test_standardize_apart(self):
        q = cq([var("x")], [rel("E", var("x"), var("y"))])
        apart = q.with_standardized_apart("_1")
        assert apart.variables().isdisjoint(q.variables())

    def test_to_cq_disjuncts_is_self(self):
        q = cq([var("x")], [rel("E", var("x"), var("y"))])
        assert q.to_cq_disjuncts() == [q]


class TestIntrospection:
    def test_constants(self):
        q = cq([Const(7), var("x")],
               [rel("E", var("x"), 3), eq(var("x"), 5)])
        assert q.constants() == {7, 3, 5}

    def test_variables(self):
        q = cq([var("x")], [rel("E", var("x"), var("y")), neq(var("y"), 1)])
        assert q.variables() == {Var("x"), Var("y")}

    def test_relations_used(self):
        q = cq([], [rel("E", 1, 2), rel("L", 1, "a")])
        assert q.relations_used() == {"E", "L"}

    def test_arity_and_boolean(self):
        assert cq([var("x")], [rel("L", var("x"), "a")]).arity == 1
        assert cq([], [rel("E", 1, 2)]).is_boolean
