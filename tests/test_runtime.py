"""Unit tests for the execution-governor runtime primitives."""

import threading
import time

import pytest

from repro.core.results import SearchStatistics
from repro.errors import ExecutionInterrupted, ReproError
from repro.runtime import (Budget, CancellationToken, Deadline,
                           EXHAUSTION_MODES, ExecutionGovernor,
                           FaultInjector, SearchCheckpoint,
                           resolve_governor, validate_exhaustion_mode)


class TestBudget:
    def test_unlimited_budget_never_breaches(self):
        budget = Budget()
        for _ in range(1000):
            assert budget.charge("valuations") is None
        assert not budget.exhausted
        assert budget.remaining is None

    def test_total_limit_admits_exactly_n_ticks(self):
        budget = Budget(limit=3)
        assert [budget.charge() for _ in range(3)] == [None, None, None]
        assert budget.charge() == "total"
        assert budget.exhausted

    def test_breach_is_sticky(self):
        budget = Budget(limit=1)
        budget.charge()
        assert budget.charge() == "total"
        assert budget.charge() == "total"

    def test_per_kind_limit(self):
        budget = Budget(valuations=2)
        assert budget.charge("valuations") is None
        assert budget.charge("nodes") is None  # different kind, uncapped
        assert budget.charge("valuations") is None
        assert budget.charge("valuations") == "valuations"
        assert budget.spent_for("valuations") == 3
        assert budget.spent_for("nodes") == 1

    def test_total_and_kind_limits_combine(self):
        budget = Budget(limit=10, nodes=1)
        assert budget.charge("nodes") is None
        assert budget.charge("nodes") == "nodes"

    def test_snapshot_and_remaining(self):
        budget = Budget(limit=5)
        budget.charge("a", 2)
        budget.charge("b")
        assert budget.snapshot() == {"a": 2, "b": 1}
        assert budget.remaining == 2

    def test_negative_limits_rejected(self):
        with pytest.raises(ReproError):
            Budget(limit=-1)
        with pytest.raises(ReproError):
            Budget(valuations=-5)


class TestDeadlineAndCancellation:
    def test_deadline_expiry(self):
        assert Deadline.after(0).expired()
        future = Deadline.after(60)
        assert not future.expired()
        assert future.remaining() > 0

    def test_negative_deadline_rejected(self):
        with pytest.raises(ReproError):
            Deadline.after(-1)

    def test_cancellation_token(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled

    def test_cancellation_from_another_thread(self):
        token = CancellationToken()
        thread = threading.Thread(target=token.cancel)
        thread.start()
        thread.join()
        assert token.cancelled


class TestFaultInjector:
    def test_exhaust_after_lets_n_ticks_complete(self):
        faults = FaultInjector(exhaust_after=3)
        assert [faults.before_work() for _ in range(3)] == [None] * 3
        assert faults.before_work() == "budget"

    def test_faults_are_sticky(self):
        faults = FaultInjector(cancel_after=0)
        assert faults.before_work() == "cancelled"
        assert faults.before_work() == "cancelled"

    def test_each_reason_maps_to_its_condition(self):
        assert FaultInjector(exhaust_after=0).before_work() == "budget"
        assert FaultInjector(deadline_after=0).before_work() == "deadline"
        assert FaultInjector(cancel_after=0).before_work() == "cancelled"

    def test_probabilistic_faults_are_seed_deterministic(self):
        def trace(seed):
            faults = FaultInjector(exhaust_probability=0.3, seed=seed)
            return [faults.before_work() for _ in range(50)]

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_delay_injection_sleeps(self):
        faults = FaultInjector(delay_every=1, delay_seconds=0.02)
        start = time.monotonic()
        faults.before_work()
        assert time.monotonic() - start >= 0.015

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError):
            FaultInjector(exhaust_after=-1)
        with pytest.raises(ReproError):
            FaultInjector(delay_every=0)
        with pytest.raises(ReproError):
            FaultInjector(exhaust_probability=1.5)


class TestExecutionGovernor:
    def test_bare_governor_is_a_tick_counter(self):
        governor = ExecutionGovernor()
        for _ in range(5):
            governor.tick()
        assert governor.ticks == 5

    def test_budget_trip_raises_with_reason(self):
        governor = ExecutionGovernor(budget=Budget(limit=2))
        governor.tick()
        governor.tick()
        with pytest.raises(ExecutionInterrupted) as excinfo:
            governor.tick()
        assert excinfo.value.reason == "budget"

    def test_interrupt_is_catchable_as_legacy_budget_error(self):
        from repro.errors import SearchBudgetExceededError

        governor = ExecutionGovernor(budget=Budget(limit=0))
        with pytest.raises(SearchBudgetExceededError):
            governor.tick()

    def test_deadline_trip(self):
        governor = ExecutionGovernor(deadline=Deadline.after(0))
        with pytest.raises(ExecutionInterrupted) as excinfo:
            governor.tick()
        assert excinfo.value.reason == "deadline"

    def test_cancellation_trip(self):
        token = CancellationToken()
        governor = ExecutionGovernor(cancellation=token)
        governor.tick()
        token.cancel()
        with pytest.raises(ExecutionInterrupted) as excinfo:
            governor.tick()
        assert excinfo.value.reason == "cancelled"

    def test_injected_fault_trip(self):
        governor = ExecutionGovernor(faults=FaultInjector(exhaust_after=1))
        governor.tick()
        with pytest.raises(ExecutionInterrupted) as excinfo:
            governor.tick()
        assert excinfo.value.reason == "budget"

    def test_check_observes_without_charging(self):
        governor = ExecutionGovernor(budget=Budget(limit=1),
                                     cancellation=CancellationToken())
        for _ in range(10):
            governor.check()  # never charges the budget
        governor.tick()
        governor.cancellation.cancel()
        with pytest.raises(ExecutionInterrupted) as excinfo:
            governor.check()
        assert excinfo.value.reason == "cancelled"

    def test_from_limits(self):
        governor = ExecutionGovernor.from_limits(budget=5, timeout=60)
        assert governor.budget.limit == 5
        assert not governor.deadline.expired()
        assert ExecutionGovernor.from_limits().budget is None


class TestSearchCheckpoint:
    def test_require_accepts_own_procedure(self):
        checkpoint = SearchCheckpoint(procedure="rcdp", cursor=(0, 0))
        assert checkpoint.require("rcdp") is checkpoint

    def test_require_rejects_other_procedures(self):
        checkpoint = SearchCheckpoint(procedure="rcdp", cursor=(0, 0))
        with pytest.raises(ReproError):
            checkpoint.require("rcqp")

    def test_base_statistics_defaults_to_zeros(self):
        checkpoint = SearchCheckpoint(procedure="rcdp", cursor=(0,))
        assert checkpoint.base_statistics() == SearchStatistics()
        stats = SearchStatistics(valuations_examined=7)
        assert SearchCheckpoint(
            procedure="rcdp", cursor=(0,),
            statistics=stats).base_statistics() is stats


class TestResolveGovernor:
    def test_passing_both_is_rejected(self):
        with pytest.raises(ReproError):
            resolve_governor(ExecutionGovernor(), budget=5)

    def test_legacy_budget_becomes_total_cap(self):
        governor = resolve_governor(None, budget=3)
        assert governor.budget.limit == 3
        assert resolve_governor(None, None) is None

    def test_exhaustion_mode_validation(self):
        for mode in EXHAUSTION_MODES:
            assert validate_exhaustion_mode(mode) == mode
        with pytest.raises(ReproError):
            validate_exhaustion_mode("explode")


class TestStatisticsMerging:
    def test_merged_is_fieldwise_sum(self):
        a = SearchStatistics(valuations_examined=3, nodes_examined=1)
        b = SearchStatistics(valuations_examined=4, units_examined=2)
        merged = a.merged(b)
        assert merged.valuations_examined == 7
        assert merged.units_examined == 2
        assert merged.nodes_examined == 1
