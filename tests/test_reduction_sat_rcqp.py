"""Tests for the Theorem 4.5(1) reduction: 3SAT ⟶ co-RCQP(CQ, INDs)."""

import random

import pytest

from repro.core.rcqp import decide_rcqp_with_inds
from repro.core.results import RCDPStatus, RCQPStatus
from repro.reductions.sat_to_rcqp import reduce_3sat_to_rcqp
from repro.solvers.sat import CNF, dpll_satisfiable, random_3sat


def _decide(instance):
    return decide_rcqp_with_inds(instance.query, instance.master,
                                 list(instance.constraints),
                                 instance.schema)


class TestHandPicked:
    def test_satisfiable_formula_gives_empty(self):
        cnf = CNF([(1, 2, 3)])
        assert dpll_satisfiable(cnf) is not None
        result = _decide(reduce_3sat_to_rcqp(cnf))
        assert result.status is RCQPStatus.EMPTY

    def test_unsatisfiable_formula_gives_nonempty(self):
        # x XOR-style contradiction over two variables (padded to width 3)
        cnf = CNF([(1, 2, 2), (-1, -2, -2), (1, -2, -2), (-1, 2, 2)])
        assert dpll_satisfiable(cnf) is None
        result = _decide(reduce_3sat_to_rcqp(cnf))
        assert result.status is RCQPStatus.NONEMPTY

    def test_nonempty_witness_is_verified_complete(self):
        cnf = CNF([(1, 2, 2), (-1, -2, -2), (1, -2, -2), (-1, 2, 2)])
        instance = reduce_3sat_to_rcqp(cnf)
        result = _decide(instance)
        from repro.core.rcdp import decide_rcdp

        verdict = decide_rcdp(instance.query, result.witness,
                              instance.master, list(instance.constraints))
        assert verdict.status is RCDPStatus.COMPLETE

    def test_empty_explanation_names_the_tag_variable(self):
        cnf = CNF([(1, 2, 3)])
        result = _decide(reduce_3sat_to_rcqp(cnf))
        assert "infinite domain" in result.explanation

    def test_constraints_are_fixed_inds(self):
        instance = reduce_3sat_to_rcqp(CNF([(1, 2, 3)]))
        assert len(instance.constraints) == 2
        assert all(c.is_ind() for c in instance.constraints)

    def test_wide_clause_rejected(self):
        with pytest.raises(ValueError):
            reduce_3sat_to_rcqp(CNF([(1, 2, 3, 4)]))


@pytest.mark.parametrize("seed", range(12))
def test_agrees_with_dpll_on_random_instances(seed):
    rng = random.Random(seed)
    cnf = random_3sat(3, rng.randint(1, 10), rng)
    instance = reduce_3sat_to_rcqp(cnf)
    result = _decide(instance)
    satisfiable = dpll_satisfiable(cnf) is not None
    assert (result.status is RCQPStatus.EMPTY) == satisfiable
