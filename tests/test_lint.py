"""Tests for the static analyzer (:mod:`repro.analysis`) and ``repro lint``.

Covers the diagnostics vocabulary, the rule registry, the crafted
bad-bundle scenario from the issue (≥8 distinct codes, spans on every
diagnostic), the decider fast-fail identity (deciders reject with the
same codes lint reports), the RC003 short-circuit, the statistics
surfacing, the CLI, and three hypothesis properties:

* a query the analyzer flags provably empty evaluates to ∅ on random
  instances;
* the minimized query RC005 proposes is equivalent to the original
  under the naive evaluator;
* constraints the analyzer marks redundant (vacuous or subsumed) can be
  dropped without changing the ``decide_rcdp`` verdict.
"""

from __future__ import annotations

import json
import pathlib

import pytest
from hypothesis import given, settings

from repro.analysis import (RULES, Report, Severity, Span, analyze,
                            lint_bundle, validate_for_decision)
from repro.analysis.diagnostics import Diagnostic, Fixit
from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus
from repro.core.witness import make_complete
from repro.cli import main
from repro.errors import AnalysisError, ParseError
from repro.queries.atoms import Eq, rel
from repro.queries.cq import ConjunctiveQuery, cq
from repro.queries.parser import parse_query
from repro.queries.terms import Const, Var, var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from tests.strategies import SCHEMA, conjunctive_queries, instances

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"

MASTER_SCHEMA = DatabaseSchema([RelationSchema("M", ["a"])])

#: Master data covering every constant the strategies generate, so
#: random (D, Dm) pairs are partially closed under R[0] ⊆ M[0] CCs.
MASTER = Instance(MASTER_SCHEMA, {"M": {(0,), (1,), (2,)}})

_CONTRADICTION = Eq(Const(0), Const(1))


def _contradicted(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """*query* with a contradictory comparison appended to the body."""
    return ConjunctiveQuery(query.head,
                            tuple(query.body) + (_CONTRADICTION,),
                            name=query.name)


# The issue's crafted bad scenario: one bundle tripping ≥8 distinct
# rule codes (this one trips 12).
BAD_BUNDLE = {
    "schema": {"relations": [
        {"name": "R", "attributes": [{"name": "a"}, {"name": "b"}]},
        {"name": "S", "attributes": [{"name": "c"}]},
    ]},
    "master_schema": {"relations": [
        {"name": "M", "attributes": [{"name": "a"}]},
        {"name": "Empty", "attributes": [{"name": "a"}]},
    ]},
    "database": {"R": [["x", "x"]]},
    "master": {"M": [["m1"]]},
    "query": {"language": "UCQ", "text":
              "Q(x, y) :- R(x, y), x = 'a', x = 'b'\n"
              "Q(x, y) :- R(x, z), S(y), S(w)"},
    "constraints": [
        {"name": "violated", "query": {"language": "CQ",
         "text": "V(x) :- R(x, x)"},
         "projection": {"relation": "M", "columns": [0]}},
        {"name": "badschema", "query": {"language": "CQ",
         "text": "V(x) :- W(x, y)"},
         "projection": {"relation": "M", "columns": [0]}},
        {"name": "vacuous", "query": {"language": "CQ",
         "text": "V(x) :- R(x, y), x = 'a', x = 'b'"},
         "projection": {"relation": "M", "columns": [0]}},
        {"name": "broken", "query": {"language": "CQ",
         "text": "V(x) :- ("},
         "projection": {"relation": "M", "columns": [0]}},
        {"name": "unsafe", "query": {"language": "CQ",
         "text": "V(x) :- x = 'a'"},
         "projection": {"relation": "M", "columns": [0]}},
        {"name": "broad", "query": {"language": "CQ",
         "text": "V(x) :- R(x, y)"},
         "projection": {"relation": "M", "columns": [0]}},
        {"name": "narrow", "query": {"language": "CQ",
         "text": "V(x) :- R(x, 'k')"},
         "projection": {"relation": "M", "columns": [0]}},
        {"name": "recursive", "query": {"language": "FP",
         "text": "V(x) :- R(x, y)\nV(x) :- V(x)", "goal": "V"},
         "projection": {"relation": "M", "columns": [0]}},
        {"name": "denial", "query": {"language": "CQ",
         "text": "V(x) :- R(x, y)"},
         "projection": {"relation": "Empty", "columns": [0]}},
    ],
}


def _write_bad_bundle(tmp_path) -> str:
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(BAD_BUNDLE))
    return str(path)


# ---------------------------------------------------------------------------
# Diagnostics vocabulary
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert str(Severity.ERROR) == "error"

    def _diag(self, severity, **kwargs):
        return Diagnostic(code="RC999", severity=severity,
                          message="m", **kwargs)

    def test_exit_codes(self):
        assert Report().exit_code == 0
        assert Report(diagnostics=(
            self._diag(Severity.INFO),)).exit_code == 0
        assert Report(diagnostics=(
            self._diag(Severity.WARNING),)).exit_code == 1
        assert Report(diagnostics=(
            self._diag(Severity.WARNING),
            self._diag(Severity.ERROR))).exit_code == 2

    def test_render_caret_under_offending_column(self):
        diag = self._diag(Severity.ERROR,
                          span=Span(source="query", line=1, column=9,
                                    offset=8, length=1))
        text = diag.render({"query": "V(x) :- ("})
        lines = text.splitlines()
        assert lines[1] == "    V(x) :- ("
        assert lines[2] == "    " + " " * 8 + "^"

    def test_render_includes_fixit(self):
        diag = self._diag(Severity.WARNING,
                          fixit=Fixit("drop it", "Q(x) :- R(x, y)"))
        text = diag.render()
        assert "fixit: drop it" in text
        assert "| Q(x) :- R(x, y)" in text

    def test_report_render_most_severe_first(self):
        report = Report(diagnostics=(
            self._diag(Severity.INFO), self._diag(Severity.ERROR)))
        rendered = report.render()
        assert rendered.index("error[") < rendered.index("info[")
        assert "1 error, 1 info" in rendered

    def test_report_to_dict_is_json_serializable(self):
        report = lint_bundle(BAD_BUNDLE)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["exit_code"] == 2
        assert payload["diagnostics"]


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_codes_are_stable_and_blocked(self):
        for code, rule in RULES.items():
            assert code == rule.code
            assert code.startswith("RC") and len(code) == 5
            assert rule.name and rule.description and rule.reference
            assert isinstance(rule.severity, Severity)
            assert rule.cost in ("cheap", "deep", "flow")

    def test_deep_rules_are_the_np_hard_ones(self):
        deep = {code for code, rule in RULES.items()
                if rule.cost == "deep"}
        assert deep == {"RC005", "RC103"}

    def test_partial_closedness_not_in_decider_pass(self):
        assert RULES["RC201"].decider is False


# ---------------------------------------------------------------------------
# The crafted bad bundle
# ---------------------------------------------------------------------------


class TestBadBundle:
    def test_triggers_at_least_eight_distinct_codes(self):
        report = lint_bundle(BAD_BUNDLE)
        codes = set(report.codes())
        assert len(codes) >= 8
        assert codes == {"RC000", "RC001", "RC004", "RC005", "RC009",
                         "RC101", "RC102", "RC103", "RC104", "RC201",
                         "RC202", "RC203"}
        assert report.exit_code == 2

    def test_every_diagnostic_carries_a_span(self):
        report = lint_bundle(BAD_BUNDLE)
        for diag in report:
            entry = diag.to_dict()["span"]
            assert entry["source"]
            assert entry["line"] >= 1 and entry["column"] >= 1

    def test_spans_point_into_the_right_constraint_source(self):
        # 'broken' (constraints[3]) fails to parse; the later constraints
        # must still map to their own payload sources, not shifted ones.
        report = lint_bundle(BAD_BUNDLE)
        rc104 = report.by_code("RC104")
        assert [d.span.source for d in rc104] == ["constraints[7]"]
        sources = {d.span.source for d in report.by_code("RC201")}
        assert "constraints[3]" not in sources  # 'broken' never ran

    def test_parse_error_position_and_caret(self):
        report = lint_bundle(BAD_BUNDLE)
        (rc000,) = report.by_code("RC000")
        assert rc000.span.source == "constraints[3]"
        assert rc000.span.line == 1
        assert rc000.span.column == 9
        assert rc000.span.offset == 8
        rendered = rc000.render(report.sources)
        assert "    V(x) :- (" in rendered
        assert "    " + " " * 8 + "^" in rendered

    def test_empty_disjunct_fixit_drops_it(self):
        report = lint_bundle(BAD_BUNDLE)
        (rc004,) = report.by_code("RC004")
        assert rc004.fixit is not None
        assert "R(x, y)" not in rc004.fixit.replacement.splitlines()[0]

    def test_fast_pass_skips_deep_rules(self):
        report = lint_bundle(BAD_BUNDLE, deep=False)
        codes = set(report.codes())
        assert "RC005" not in codes and "RC103" not in codes
        assert "RC101" in codes  # cheap rules still run


# ---------------------------------------------------------------------------
# Decider fast-fail identity
# ---------------------------------------------------------------------------


def _object_level_bad_scenario():
    """The constructible part of BAD_BUNDLE as library objects (the
    unparseable/unsafe/FP constraints cannot exist as objects)."""
    from repro.io.json_io import instance_from_dict, schema_from_dict

    schema = schema_from_dict(BAD_BUNDLE["schema"])
    master_schema = schema_from_dict(BAD_BUNDLE["master_schema"])
    database = instance_from_dict(BAD_BUNDLE["database"], schema)
    master = instance_from_dict(BAD_BUNDLE["master"], master_schema)
    query = parse_query(BAD_BUNDLE["query"]["text"])
    constraints = []
    for entry in BAD_BUNDLE["constraints"]:
        if entry["name"] in ("broken", "unsafe", "recursive"):
            continue
        projection = Projection.on(entry["projection"]["relation"],
                                   entry["projection"]["columns"])
        constraints.append(ContainmentConstraint(
            parse_query(entry["query"]["text"]), projection,
            name=entry["name"]))
    return query, database, master, constraints, schema, master_schema


class TestDeciderIdentity:
    def test_decide_rcdp_rejects_with_lint_codes(self):
        query, database, master, constraints, *_ = (
            _object_level_bad_scenario())
        with pytest.raises(AnalysisError) as excinfo:
            decide_rcdp(query, database, master, constraints)
        report = excinfo.value.report
        assert report is not None
        decider_codes = {d.code for d in report.errors}
        assert decider_codes == {"RC101"}
        lint_codes = {d.code
                      for d in lint_bundle(BAD_BUNDLE).errors}
        assert decider_codes <= lint_codes

    def test_decide_rcqp_rejects_with_same_codes(self):
        query, _, master, constraints, schema, _ = (
            _object_level_bad_scenario())
        with pytest.raises(AnalysisError) as excinfo:
            decide_rcqp(query, master, constraints, schema)
        assert {d.code for d in excinfo.value.report.errors} == {"RC101"}

    def test_audit_rejects_before_any_search(self):
        from repro.mdm.audit import CompletenessAudit

        query, database, master, constraints, schema, _ = (
            _object_level_bad_scenario())
        audit = CompletenessAudit(master=master, constraints=constraints,
                                  schema=schema)
        with pytest.raises(AnalysisError):
            audit.assess(query, database)

    def test_validate_for_decision_passes_clean_scenarios(self):
        x, y = var("x"), var("y")
        query = cq([x], [rel("R", x, y)])
        report = validate_for_decision(query, [], schema=SCHEMA,
                                       master_schema=MASTER_SCHEMA)
        assert not report.has_errors


# ---------------------------------------------------------------------------
# RC003 short-circuit and statistics surfacing
# ---------------------------------------------------------------------------


def _empty_query_scenario():
    x, y = var("x"), var("y")
    query = _contradicted(cq([x], [rel("R", x, y)]))
    database = Instance(SCHEMA, {"R": {(0, 1)}})
    real = ContainmentConstraint(
        cq([x], [rel("R", x, y)], name="real_q"),
        Projection.on("M", [0]), name="real")
    return query, database, [real]


class TestShortCircuitAndStatistics:
    def test_provably_empty_query_short_circuits_to_complete(self):
        query, database, constraints = _empty_query_scenario()
        result = decide_rcdp(query, database, MASTER, constraints)
        assert result.status is RCDPStatus.COMPLETE
        assert "static analysis" in result.explanation
        assert result.statistics.valuations_examined == 0
        # RC003 is warning severity, so the verdict records it.
        assert result.statistics.analysis_warnings >= 1

    def test_missing_answers_short_circuit(self):
        query, database, constraints = _empty_query_scenario()
        report = missing_answers_report(query, database, MASTER,
                                        constraints)
        assert report.answers == frozenset()
        assert report.exhaustive
        assert report.statistics.analysis_warnings >= 1

    def test_make_complete_surfaces_analysis_warnings(self):
        query, database, constraints = _empty_query_scenario()
        outcome = make_complete(query, database, MASTER, constraints)
        assert outcome.complete
        assert outcome.statistics.analysis_warnings >= 1

    def test_warning_counted_once_not_per_round(self):
        # A vacuous constraint yields exactly one analysis warning in
        # the outcome's statistics even across completion rounds.
        x, y = var("x"), var("y")
        query = cq([x], [rel("R", x, y)])
        database = Instance(SCHEMA, {"R": {(0, 1)}})
        vacuous = ContainmentConstraint(
            _contradicted(cq([x], [rel("R", x, y)], name="vac_q")),
            Projection.on("M", [0]), name="vacuous")
        outcome = make_complete(query, database, MASTER, [vacuous])
        assert outcome.statistics.analysis_warnings == 1

    def test_audit_summary_mentions_analysis(self):
        from repro.mdm.audit import CompletenessAudit

        query, database, constraints = _empty_query_scenario()
        audit = CompletenessAudit(master=MASTER, constraints=constraints,
                                  schema=SCHEMA)
        report = audit.assess(query, database)
        assert report.analysis is not None
        assert "analysis:" in report.summary()


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(conjunctive_queries(), instances())
    def test_flagged_empty_query_evaluates_to_empty(self, query,
                                                    instance):
        contradicted = _contradicted(query)
        report = analyze(contradicted, [], schema=SCHEMA, deep=False)
        assert report.facts.query_provably_empty
        assert "RC003" in report.codes()
        assert contradicted.evaluate(instance) == frozenset()

    @settings(max_examples=50, deadline=None)
    @given(conjunctive_queries(allow_inequalities=False), instances())
    def test_minimized_query_is_equivalent(self, query, instance):
        # Pad the body with variable-renamed copies of every relation
        # atom: the copies fold back onto the originals, so the padded
        # query is equivalent to the original and the analyzer should
        # find a smaller core.
        renamed = {}
        copies = []
        head_vars = {t.name for t in query.head if isinstance(t, Var)}
        for atom in query.relation_atoms:
            terms = [Var(t.name + "_c")
                     if isinstance(t, Var) and t.name not in head_vars
                     else t for t in atom.terms]
            copies.append(rel(atom.relation, *terms))
        padded = ConjunctiveQuery(query.head,
                                  tuple(query.body) + tuple(copies),
                                  name=query.name)
        report = analyze(padded, [], schema=SCHEMA, deep=True)
        minimized = report.facts.minimized_query
        if minimized is None:
            # Nothing foldable (the copies were literal duplicates);
            # the padded query must still agree with the original.
            assert padded.evaluate_naive(instance) == (
                query.evaluate_naive(instance))
            return
        assert "RC005" in report.codes()
        assert minimized.evaluate_naive(instance) == (
            query.evaluate_naive(instance))
        # the fixit replacement parses back into an equivalent query
        (rc005, *_rest) = report.by_code("RC005")
        replacement = parse_query(rc005.fixit.replacement)
        assert replacement.evaluate_naive(instance) == (
            query.evaluate_naive(instance))

    @settings(max_examples=25, deadline=None)
    @given(conjunctive_queries(max_atoms=2, allow_inequalities=False),
           instances())
    def test_redundant_constraints_droppable(self, query, instance):
        x, y = var("x"), var("y")
        real = ContainmentConstraint(
            cq([x], [rel("R", x, y)], name="real_q"),
            Projection.on("M", [0]), name="real")
        vacuous = ContainmentConstraint(
            _contradicted(cq([x], [rel("R", x, y)], name="vac_q")),
            Projection.on("M", [0]), name="vacuous")
        narrow = ContainmentConstraint(
            cq([x], [rel("R", x, Const(0))], name="nar_q"),
            Projection.on("M", [0]), name="narrow")
        constraints = [real, vacuous, narrow]
        report = analyze(query, constraints, schema=SCHEMA,
                         master_schema=MASTER_SCHEMA, database=instance,
                         master=MASTER, deep=True)
        redundant = set(report.facts.redundant_constraints)
        assert {"vacuous", "narrow"} <= redundant
        pruned = [c for c in constraints if c.name not in redundant]
        full = decide_rcdp(query, instance, MASTER, constraints)
        slim = decide_rcdp(query, instance, MASTER, pruned)
        assert full.status is slim.status


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCLI:
    def test_shipped_example_bundles_are_clean(self, capsys):
        bundles = sorted(str(p)
                         for p in (EXAMPLES / "bundles").glob("*.json"))
        assert bundles, "examples/bundles/ should ship lint-clean bundles"
        assert main(["lint", *bundles]) == 0
        out = capsys.readouterr().out
        assert "error[" not in out and "warning[" not in out

    def test_bad_bundle_exits_two_with_caret(self, tmp_path, capsys):
        path = _write_bad_bundle(tmp_path)
        assert main(["lint", path]) == 2
        out = capsys.readouterr().out
        assert "error[RC101]" in out
        assert "^" in out

    def test_json_format_single_bundle(self, tmp_path, capsys):
        path = _write_bad_bundle(tmp_path)
        assert main(["lint", "--format", "json", path]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["bundle"] == path
        assert payload["exit_code"] == 2
        codes = {d["code"] for d in payload["diagnostics"]}
        assert len(codes) >= 8
        assert all(d["span"]["source"] for d in payload["diagnostics"])

    def test_json_format_multiple_bundles_is_a_list(self, tmp_path,
                                                    capsys):
        bad = _write_bad_bundle(tmp_path)
        clean = str(EXAMPLES / "bundles" / "crm_q0_area_code.json")
        assert main(["lint", "--format", "json", clean, bad]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2
        assert payload[0]["exit_code"] == 0
        assert payload[1]["exit_code"] == 2

    def test_fast_flag_skips_deep_rules(self, tmp_path, capsys):
        path = _write_bad_bundle(tmp_path)
        assert main(["lint", "--fast", path]) == 2
        out = capsys.readouterr().out
        assert "RC005" not in out and "RC103" not in out

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["lint", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_rcdp_renders_analysis_report_on_rejection(self, tmp_path,
                                                       capsys):
        # The decider path prints the same diagnostics lint would.
        bundle = dict(BAD_BUNDLE)
        bundle["constraints"] = [
            entry for entry in BAD_BUNDLE["constraints"]
            if entry["name"] in ("badschema", "broad")]
        path = tmp_path / "reject.json"
        path.write_text(json.dumps(bundle))
        assert main(["rcdp", str(path)]) == 2
        err = capsys.readouterr().err
        assert "static analysis rejected" in err
        assert "RC101" in err


# ---------------------------------------------------------------------------
# Parser offsets (satellite 1)
# ---------------------------------------------------------------------------


class TestParserOffsets:
    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("Q(x) :- (")
        error = excinfo.value
        assert error.line == 1
        assert error.column == 9
        assert error.offset == 8

    def test_multiline_parse_error_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("Q(x) :- R(x, y)\nQ(x) :- R(x,")
        assert excinfo.value.line == 2
