"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------

``rcdp BUNDLE.json``
    Decide whether the bundle's database is complete for its query
    relative to its master data and constraints; print the verdict and,
    when incomplete, the counterexample extension.

``rcqp BUNDLE.json``
    Decide whether any relatively complete database exists for the
    bundle's query; print the verdict and witness.

``complete BUNDLE.json``
    Run the certificate-completion loop and print the facts that would
    make the database complete.

``audit BUNDLE.json``
    Run the full §2.3 cascade (RCDP → RCQP → completion guidance →
    master-data expansion advice) and print the report.

``missing BUNDLE.json``
    Enumerate the answers the query could still gain over the active
    domain (the completeness *margin*).

``lint BUNDLE.json [...]``
    Run the static analyzer (:mod:`repro.analysis`) over one or more
    bundles without deciding anything: schema mismatches, unsafe or
    provably empty queries, vacuous/subsumed constraints, violated
    partial closedness, unbounded output variables — each finding with
    a stable ``RCxxx`` code, a source span (rendered with a caret), and,
    where possible, a fix-it.  ``--format json`` emits the report as
    machine-readable JSON.  Exit codes: 0 clean (infos allowed),
    1 warnings, 2 errors.

``demo``
    Run the paper's CRM example end to end and print the §2.3 audit.

Bundles are JSON files in the format of :mod:`repro.io.json_io`.

Execution governor flags (``rcdp``, ``rcqp``, ``complete``, ``audit``,
``missing``): ``--budget N`` caps the total units of search work,
``--timeout SECONDS`` sets a wall-clock deadline, and
``--on-exhausted {error,partial}`` picks between failing fast (exit
code 3) and degrading gracefully to a partial, checkpointed result
(also exit code 3, but with the best-so-far output printed).  The same
subcommands accept ``--workers N`` to shard the search across N worker
processes (0 = all cores; see ``docs/PARALLEL.md``) — the verdict is
identical for every worker count.

Exit codes: 0 — affirmative verdict (complete / nonempty /
trustworthy / no missing answers); 1 — negative verdict; 2 — error;
3 — the governed search was interrupted before reaching a verdict.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.core.witness import make_complete
from repro.errors import (AnalysisError, ExecutionInterrupted, ReproError)
from repro.io.json_io import load_bundle
from repro.runtime import EXHAUSTION_MODES, ExecutionGovernor

__all__ = ["main"]

#: Exit code for searches interrupted by a budget or deadline.
EXIT_EXHAUSTED = 3


def _add_governor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="cap the total units of search work (valuations, candidate "
             "sets, solver nodes, ...) across the whole command")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for the whole command")
    parser.add_argument(
        "--on-exhausted", choices=EXHAUSTION_MODES, default="partial",
        help="when the budget or deadline trips: 'error' fails fast, "
             "'partial' (default) prints the best-so-far partial result")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the search across N worker processes (default 1 = "
             "serial, 0 = all cores); the verdict is identical for "
             "every worker count")


def _governor_from_args(args: argparse.Namespace) -> ExecutionGovernor | None:
    budget = getattr(args, "budget", None)
    timeout = getattr(args, "timeout", None)
    if budget is None and timeout is None:
        return None
    return ExecutionGovernor.from_limits(budget=budget, timeout=timeout)


def _print_exhaustion(result) -> None:
    print(f"search interrupted: {result.interrupted}")
    if result.checkpoint is not None:
        print(f"resumable checkpoint: {result.checkpoint!r}")


def _cmd_rcdp(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle)
    result = decide_rcdp(bundle["query"], bundle["database"],
                         bundle["master"], bundle["constraints"],
                         governor=_governor_from_args(args),
                         on_exhausted=args.on_exhausted,
                         workers=args.workers)
    print(f"RCDP: {result.status.value}")
    print(result.explanation)
    if result.certificate is not None:
        print("counterexample extension:")
        for name, row in result.certificate.extension_facts:
            print(f"  + {name}{row!r}")
        print(f"new answer: {result.certificate.new_answer!r}")
    if result.is_exhausted:
        _print_exhaustion(result)
        return EXIT_EXHAUSTED
    return 0 if result.status is RCDPStatus.COMPLETE else 1


def _cmd_rcqp(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle)
    result = decide_rcqp(bundle["query"], bundle["master"],
                         bundle["constraints"], bundle["schema"],
                         max_valuation_set_size=args.max_set_size,
                         governor=_governor_from_args(args),
                         on_exhausted=args.on_exhausted,
                         workers=args.workers)
    print(f"RCQP: {result.status.value}")
    print(result.explanation)
    if result.witness is not None:
        print("witness database:")
        print(result.witness.pretty())
    if result.is_exhausted:
        _print_exhaustion(result)
        return EXIT_EXHAUSTED
    return 0 if result.status is RCQPStatus.NONEMPTY else 1


def _cmd_complete(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle)
    outcome = make_complete(bundle["query"], bundle["database"],
                            bundle["master"], bundle["constraints"],
                            max_rounds=args.max_rounds,
                            governor=_governor_from_args(args),
                            on_exhausted=args.on_exhausted,
                            workers=args.workers)
    if outcome.complete:
        print(f"complete after {outcome.rounds} round(s); collect:")
    else:
        print(f"NOT complete after {outcome.rounds} round(s); "
              f"partial guidance:")
    for name, row in outcome.added_facts:
        print(f"  + {name}{row!r}")
    if outcome.interrupted is not None:
        print(f"search interrupted: {outcome.interrupted}")
        return EXIT_EXHAUSTED
    return 0 if outcome.complete else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.mdm.audit import AuditVerdict, CompletenessAudit

    bundle = load_bundle(args.bundle)
    audit = CompletenessAudit(
        master=bundle["master"], constraints=bundle["constraints"],
        schema=bundle["schema"],
        rcqp_valuation_set_size=args.max_set_size,
        workers=args.workers)
    report = audit.assess(bundle["query"], bundle["database"],
                          governor=_governor_from_args(args),
                          on_exhausted=args.on_exhausted)
    print(report.summary())
    if report.verdict is AuditVerdict.INCONCLUSIVE:
        return EXIT_EXHAUSTED
    return 0 if report.verdict.value == "trustworthy" else 1


def _cmd_missing(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle)
    report = missing_answers_report(
        bundle["query"], bundle["database"], bundle["master"],
        bundle["constraints"], limit=args.limit,
        governor=_governor_from_args(args),
        on_exhausted=args.on_exhausted, workers=args.workers)
    if not report.answers and report.exhaustive:
        print("no missing answers: the database is relatively complete")
        return 0
    qualifier = "" if report.exhaustive else "at least "
    print(f"{qualifier}{len(report.answers)} answer(s) the query could "
          f"still gain:")
    for row in sorted(report.answers, key=repr):
        print(f"  ? {row!r}")
    if report.interrupted is not None:
        _print_exhaustion(report)
        return EXIT_EXHAUSTED
    return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import lint_path

    worst = 0
    payloads = []
    for path in args.bundles:
        report = lint_path(path, deep=not args.fast)
        worst = max(worst, report.exit_code)
        if args.format == "json":
            payloads.append({"bundle": path, **report.to_dict()})
        else:
            if len(args.bundles) > 1:
                print(f"== {path}")
            print(report.render())
    if args.format == "json":
        print(json.dumps(payloads if len(args.bundles) > 1
                         else payloads[0], indent=2, sort_keys=True))
    return worst


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.mdm.audit import CompletenessAudit
    from repro.mdm.scenario import CRMScenario

    scenario = CRMScenario.example()
    # The strict supt⊆dcust IND only holds for domestic support tuples.
    scenario.support = {(e, d, c) for e, d, c in scenario.support
                        if not c.startswith("i")}
    audit = CompletenessAudit(
        master=scenario.master(),
        constraints=[scenario.supt_cid_ind()],
        schema=scenario.schema)
    database = scenario.database()
    print("master data:")
    print(scenario.master().pretty())
    print()
    print("database:")
    print(database.pretty())
    print()
    for query in (scenario.q2_all_supported_by("e0"),
                  scenario.q2_all_supported_by("e1")):
        report = audit.assess(query, database)
        print(f"--- audit of {query.name} ({query!r})")
        print(report.summary())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Relative information completeness (Fan & Geerts, "
                    "PODS 2009) — completeness checks for partially "
                    "closed databases.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    rcdp = subparsers.add_parser(
        "rcdp", help="is the database complete for the query?")
    rcdp.add_argument("bundle", help="JSON problem bundle")
    _add_governor_arguments(rcdp)
    rcdp.set_defaults(func=_cmd_rcdp)

    rcqp = subparsers.add_parser(
        "rcqp", help="does any relatively complete database exist?")
    rcqp.add_argument("bundle", help="JSON problem bundle")
    rcqp.add_argument("--max-set-size", type=int, default=2,
                      help="valuation-set budget for the E2 search")
    _add_governor_arguments(rcqp)
    rcqp.set_defaults(func=_cmd_rcqp)

    complete = subparsers.add_parser(
        "complete", help="suggest the facts that make the database "
                         "complete")
    complete.add_argument("bundle", help="JSON problem bundle")
    complete.add_argument("--max-rounds", type=int, default=32)
    _add_governor_arguments(complete)
    complete.set_defaults(func=_cmd_complete)

    audit = subparsers.add_parser(
        "audit", help="run the full §2.3 audit cascade")
    audit.add_argument("bundle", help="JSON problem bundle")
    audit.add_argument("--max-set-size", type=int, default=1,
                       help="valuation-set budget for the RCQP step")
    _add_governor_arguments(audit)
    audit.set_defaults(func=_cmd_audit)

    missing = subparsers.add_parser(
        "missing", help="enumerate answers the query could still gain")
    missing.add_argument("bundle", help="JSON problem bundle")
    missing.add_argument("--limit", type=int, default=None,
                         help="stop after this many missing answers")
    _add_governor_arguments(missing)
    missing.set_defaults(func=_cmd_missing)

    lint = subparsers.add_parser(
        "lint", help="statically analyze bundles without deciding "
                     "anything")
    lint.add_argument("bundles", nargs="+", metavar="bundle",
                      help="JSON problem bundle(s)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text", help="output format")
    lint.add_argument("--fast", action="store_true",
                      help="skip the NP-hard minimization/containment "
                           "rules (RC005, RC103)")
    lint.set_defaults(func=_cmd_lint)

    demo = subparsers.add_parser(
        "demo", help="run the paper's CRM example")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ExecutionInterrupted as interrupt:
        print(f"search interrupted: {interrupt.reason} — {interrupt}",
              file=sys.stderr)
        if interrupt.checkpoint is not None:
            print(f"resumable checkpoint: {interrupt.checkpoint!r}",
                  file=sys.stderr)
        return EXIT_EXHAUSTED
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.report is not None:
            print(error.report.render(), file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
