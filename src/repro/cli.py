"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------

``rcdp BUNDLE.json``
    Decide whether the bundle's database is complete for its query
    relative to its master data and constraints; print the verdict and,
    when incomplete, the counterexample extension.

``rcqp BUNDLE.json``
    Decide whether any relatively complete database exists for the
    bundle's query; print the verdict and witness.

``complete BUNDLE.json``
    Run the certificate-completion loop and print the facts that would
    make the database complete.

``audit BUNDLE.json``
    Run the full §2.3 cascade (RCDP → RCQP → completion guidance →
    master-data expansion advice) and print the report.

``missing BUNDLE.json``
    Enumerate the answers the query could still gain over the active
    domain (the completeness *margin*).

``lint BUNDLE.json [...]``
    Run the static analyzer (:mod:`repro.analysis`) over one or more
    bundles — or directories of bundles — without deciding anything:
    schema mismatches, unsafe or provably empty queries,
    vacuous/subsumed constraints, violated partial closedness,
    unbounded output variables, plus the whole-scenario flow pass
    (chase termination, unreachable/dead constraints, plan shapes,
    search-space cost) — each finding with a stable ``RCxxx`` code, a
    source span (rendered with a caret), and, where possible, a fix-it.
    ``--format json`` emits the report as machine-readable JSON;
    ``--explain-cost`` prints the static cost estimate (predicted
    governor ticks, dominant phase, per-disjunct breakdown).  Exit
    codes: 0 clean (infos allowed), 1 warnings, 2 errors.  A directory
    argument is linted file by file in sorted name order; the exit code
    is the worst severity found anywhere.

``trace FILE.jsonl``
    Inspect a JSONL trace written by ``--trace``: print its phase
    profile, or with ``--check`` validate it (span-tree well-formedness
    and tick accounting — see ``docs/OBSERVABILITY.md``) and exit 0/2.

``report``
    Aggregate a JSONL run ledger (``--ledger FILE`` or
    ``$REPRO_LEDGER``): latency percentiles, verdict mix, cache hit
    rates, per-backend comparison; ``--out`` derives a BENCH-format
    report, ``--prom`` a Prometheus exposition.

``history``
    Diff fresh runs (a ledger and/or BENCH-format reports) against the
    committed ``BENCH_*.json`` baselines: exact tick equality and
    verdict mixes per paired row, a median wall-time ratio against
    ``--factor``.  ``--gate`` exits nonzero on any regression (the CI
    mode); ``--slowdown 2`` injects a synthetic regression to prove
    the gate trips.

``demo``
    Run the paper's CRM example end to end and print the §2.3 audit.

Bundles are JSON files in the format of :mod:`repro.io.json_io`.

Observability flags (same subcommands as the governor flags):
``--trace FILE`` writes a JSONL span trace, ``--metrics FILE`` writes
the metrics-registry snapshot as JSON, ``--prom FILE`` writes a
Prometheus text exposition, ``--profile`` prints a phase profile
table, and ``--stats`` prints the search statistics (including the
engine's ``plans_compiled`` / ``index_builds`` / ``cache_hits``
counters).  Any of trace/metrics/prom/profile attaches a tick-ledger
governor so phases can be attributed even without
``--budget``/``--timeout``.  ``--progress`` renders live
percent-complete and ETA to stderr (the denominator is the static cost
model's prediction), and ``--ledger FILE`` (or ``$REPRO_LEDGER``)
appends a schema-versioned ``RunRecord`` to the crash-safe JSONL run
ledger — content key, verdict, backend, workers, tick ledger, wall
time, artifact paths — for ``repro report`` / ``repro history``.

Execution governor flags (``rcdp``, ``rcqp``, ``complete``, ``audit``,
``missing``): ``--budget N`` caps the total units of search work —
before the search starts, a static cost preflight compares the
predicted ticks against the budget and prints an advisory (with a
suggested budget and worker count) when the budget looks too small —
``--timeout SECONDS`` sets a wall-clock deadline, and
``--on-exhausted {error,partial}`` picks between failing fast (exit
code 3) and degrading gracefully to a partial, checkpointed result
(also exit code 3, but with the best-so-far output printed).  The same
subcommands accept ``--workers N`` to shard the search across N worker
processes (0 = all cores; see ``docs/PARALLEL.md``) — the verdict is
identical for every worker count.

Fault-tolerance flags (same subcommands): ``--max-retries N`` bounds
how often a crashed or silent worker shard is respawned from its last
progress snapshot before quarantine, ``--heartbeat SECONDS`` sets the
progress-snapshot interval liveness detection keys off, and
``--no-retry`` disables supervision entirely, restoring the legacy
fail-fast behavior where any worker death aborts the command.

Exit codes: 0 — affirmative verdict (complete / nonempty /
trustworthy / no missing answers); 1 — negative verdict; 2 — error;
3 — the governed search was interrupted before reaching a verdict;
4 — an unrecovered worker-pool failure (a worker reported an
unexpected exception, or died under ``--no-retry``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.core.witness import make_complete
from repro.errors import (AnalysisError, ExecutionInterrupted, ReproError,
                          WorkerPoolError)
from repro.io.json_io import load_bundle
from repro.relational.backends import BACKEND_NAMES
from repro.runtime import EXHAUSTION_MODES, ExecutionGovernor, RetryPolicy

__all__ = ["main"]

#: Exit code for searches interrupted by a budget or deadline.
EXIT_EXHAUSTED = 3
#: Exit code for unrecovered worker-pool failures.
EXIT_POOL_FAILURE = 4


def _add_governor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="cap the total units of search work (valuations, candidate "
             "sets, solver nodes, ...) across the whole command")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for the whole command")
    parser.add_argument(
        "--on-exhausted", choices=EXHAUSTION_MODES, default="partial",
        help="when the budget or deadline trips: 'error' fails fast, "
             "'partial' (default) prints the best-so-far partial result")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the search across N worker processes (default 1 = "
             "serial, 0 = all cores); the verdict is identical for "
             "every worker count")
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="respawn a crashed or silent worker shard from its last "
             "progress snapshot up to N times before quarantining it "
             "to an in-process serial re-run (default 2)")
    parser.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="worker progress-snapshot interval; a shard silent for "
             "~40 heartbeats is presumed hung and retried (default 0.25)")
    parser.add_argument(
        "--no-retry", action="store_true",
        help="disable shard supervision: any worker death aborts the "
             "command with exit code 4 (the pre-supervision behavior)")
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a JSONL span trace of the decision to FILE "
             "(validate it with 'repro trace --check FILE')")
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the metrics-registry snapshot (counters, gauges, "
             "histograms) as JSON to FILE")
    parser.add_argument(
        "--profile", action="store_true",
        help="print a per-phase profile table (calls, total/own time, "
             "attributed ticks) after the verdict")
    parser.add_argument(
        "--stats", action="store_true",
        help="print the search statistics, including the evaluation "
             "engine's plans_compiled/index_builds/cache_hits counters")
    parser.add_argument(
        "--progress", action="store_true",
        help="render live percent-complete and ETA to stderr while the "
             "search runs (numerator: governor ticks + shard "
             "heartbeats; denominator: the static cost model's "
             "predicted ticks)")
    parser.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="append a RunRecord for this decision to the JSONL run "
             "ledger at FILE (default: $REPRO_LEDGER, else no ledger); "
             "aggregate with 'repro report', gate with 'repro history'")
    parser.add_argument(
        "--prom", default=None, metavar="FILE",
        help="write the metrics registry as Prometheus text exposition "
             "to FILE after the verdict")
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="instance storage backend for the evaluation engine "
             "(default: $REPRO_BACKEND or 'python'); the verdict is "
             "identical for every backend")


def _observability_requested(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace", None)
                or getattr(args, "metrics", None)
                or getattr(args, "prom", None)
                or getattr(args, "profile", False))


def _ledger_path(args: argparse.Namespace) -> str | None:
    """The run-ledger file: ``--ledger``, else ``$REPRO_LEDGER``."""
    path = getattr(args, "ledger", None)
    if path:
        return path
    from repro.obs.ledger import LEDGER_ENV

    return os.environ.get(LEDGER_ENV) or None


def _retry_from_args(args: argparse.Namespace) -> "RetryPolicy | None":
    """The retry policy the flags ask for, or None for the default."""
    max_retries = getattr(args, "max_retries", None)
    heartbeat = getattr(args, "heartbeat", None)
    if getattr(args, "no_retry", False):
        if max_retries is not None or heartbeat is not None:
            raise ReproError("--no-retry conflicts with --max-retries "
                             "and --heartbeat")
        return RetryPolicy.disabled()
    if max_retries is None and heartbeat is None:
        return None
    defaults = RetryPolicy()
    return RetryPolicy(
        max_retries=(max_retries if max_retries is not None
                     else defaults.max_retries),
        heartbeat=(heartbeat if heartbeat is not None
                   else defaults.heartbeat))


def _governor_from_args(args: argparse.Namespace) -> ExecutionGovernor | None:
    budget = getattr(args, "budget", None)
    timeout = getattr(args, "timeout", None)
    observed = _observability_requested(args)
    progressed = getattr(args, "progress", False)
    ledgered = _ledger_path(args) is not None
    retry = _retry_from_args(args)
    if (budget is None and timeout is None and not observed
            and not progressed and not ledgered and retry is None):
        return None
    governor = ExecutionGovernor.from_limits(budget=budget, timeout=timeout,
                                             retry=retry)
    if observed or progressed or ledgered:
        from repro.runtime import Budget

        if governor.budget is None:
            # An unlimited budget is the tick *ledger* spans diff to
            # attribute work to phases (and the progress numerator /
            # RunRecord tick source); it never trips.
            governor.budget = Budget()
    if observed:
        from repro.obs import Observation

        Observation.attach(governor)
    if progressed:
        from repro.obs import ProgressReporter

        reporter = ProgressReporter(
            label=getattr(args, "command", None) or "search")
        governor.progress = reporter
        reporter.start_polling(governor.budget)
    return governor


def _statistics_lines(statistics) -> list[str]:
    from dataclasses import fields

    return [f"  {field.name}: {getattr(statistics, field.name)}"
            for field in fields(statistics)]


def _finish_observability(args: argparse.Namespace,
                          governor: ExecutionGovernor | None, *,
                          procedure: str, statistics,
                          verdict: str, exhausted: bool) -> None:
    """Render/export everything the obs flags asked for, after a verdict.

    The statistics block (``--stats``, or implied by any obs flag)
    surfaces the full :class:`~repro.core.results.SearchStatistics` —
    engine counters included.  With an observation attached, the
    governor ledger and statistics are folded into the registry, the
    profile table is printed, and trace/metrics files are written.
    """
    from repro.obs import obs_of, render_profile, trace_records, write_trace

    progress = getattr(governor, "progress", None)
    if progress is not None:
        progress.close()
    observation = obs_of(governor)
    if statistics is not None and (getattr(args, "stats", False)
                                   or observation is not None):
        print("statistics:")
        for line in _statistics_lines(statistics):
            print(line)
    if observation is None:
        return
    observation.finalize(governor, statistics)
    payload = observation.payload()
    if getattr(args, "profile", False):
        print(render_profile(payload["spans"]))
    if getattr(args, "trace", None):
        ticks = (dict(governor.budget.snapshot())
                 if governor.budget is not None else {})
        write_trace(args.trace, trace_records(
            payload["spans"], procedure=procedure,
            command=f"{procedure} {getattr(args, 'bundle', '')}".strip(),
            metrics=payload["metrics"], statistics=statistics,
            ticks=ticks, verdict=verdict, exhausted=exhausted))
        print(f"trace written to {args.trace}")
    if getattr(args, "metrics", None):
        from repro.obs import atomic_write_text

        atomic_write_text(args.metrics, json.dumps(
            payload["metrics"], indent=2, sort_keys=True) + "\n")
        print(f"metrics written to {args.metrics}")
    if getattr(args, "prom", None):
        from repro.obs import write_prometheus

        write_prometheus(args.prom, payload["metrics"])
        print(f"prometheus exposition written to {args.prom}")


def _preflight(args: argparse.Namespace,
               governor: ExecutionGovernor | None,
               bundle, procedure: str) -> None:
    """Static cost check before a decision: annotate the trace root span
    with the prediction and warn when it exceeds ``--budget``.

    Advisory only — estimation failures are swallowed and the decision
    proceeds untouched (the differential tests pin verdict/witness/
    statistics identity with and without a governor attached).
    """
    if governor is None:
        return
    try:
        from repro.analysis.cost import estimate_decision, suggested_budget

        if procedure == "rcqp":
            estimate = estimate_decision(
                "rcqp", bundle["query"], None, bundle["master"],
                bundle["constraints"], schema=bundle["schema"])
        else:
            kind = "missing" if procedure == "missing" else "rcdp"
            estimate = estimate_decision(
                kind, bundle["query"], bundle.get("database"),
                bundle["master"], bundle["constraints"])
    except Exception:
        return
    from repro.obs import obs_of

    observation = obs_of(governor)
    if observation is not None:
        observation.annotate(
            cost_estimate=estimate.total_predicted,
            cost_dominant_phase=estimate.dominant_phase)
    progress = getattr(governor, "progress", None)
    if progress is not None:
        # The prediction is the --progress denominator; without it the
        # reporter falls back to a raw tick counter.
        progress.set_total(estimate.total_predicted)
    budget = governor.budget
    if (budget is not None and budget.limit is not None
            and estimate.total_predicted > budget.limit):
        from repro.parallel import suggest_workers

        print(f"preflight: predicted ~{estimate.total_predicted} tick(s) "
              f"exceeds --budget {budget.limit} (dominant phase "
              f"{estimate.dominant_phase}); suggested budget "
              f"{governor.suggest_budget(estimate)}, suggested workers "
              f"{suggest_workers(estimate)}")


def _record_run(args: argparse.Namespace,
                governor: ExecutionGovernor | None, *,
                procedure: str, bundle, statistics, verdict: str,
                exhausted: bool, wall_s: float,
                interrupted: str | None = None) -> None:
    """Append one :class:`~repro.obs.ledger.RunRecord` for this
    decision when a ledger is configured (``--ledger``/$REPRO_LEDGER).

    Observation-only: the record is derived *after* the verdict, and
    failures to compute the content key degrade to an empty key rather
    than failing the command.
    """
    path = _ledger_path(args)
    if path is None:
        return
    from repro.obs import (RunRecord, append_record, run_key,
                           statistics_fields)

    try:
        objects = [bundle[name] for name in
                   ("query", "database", "master", "constraints")
                   if bundle.get(name) is not None]
        key = run_key(procedure, *objects)
    except Exception:
        key = ""
    backend = (getattr(args, "backend", None)
               or os.environ.get("REPRO_BACKEND") or "python")
    label = os.path.splitext(
        os.path.basename(getattr(args, "bundle", "") or ""))[0]
    ticks = (dict(governor.budget.snapshot())
             if governor is not None and governor.budget is not None
             else {})
    artifacts = {name: value for name, value in
                 (("trace", getattr(args, "trace", None)),
                  ("metrics", getattr(args, "metrics", None)),
                  ("prom", getattr(args, "prom", None)))
                 if value}
    append_record(path, RunRecord(
        procedure=procedure, label=label, key=key, verdict=verdict,
        backend=backend, workers=getattr(args, "workers", 1),
        wall_s=wall_s, exhausted=exhausted, interrupted=interrupted,
        ticks=ticks, statistics=statistics_fields(statistics),
        artifacts=artifacts))
    print(f"run recorded in {path}", file=sys.stderr)


def _print_exhaustion(result) -> None:
    print(f"search interrupted: {result.interrupted}")
    if result.checkpoint is not None:
        print(f"resumable checkpoint: {result.checkpoint!r}")


def _cmd_rcdp(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle, backend=args.backend)
    governor = _governor_from_args(args)
    _preflight(args, governor, bundle, "rcdp")
    started = time.perf_counter()
    result = decide_rcdp(bundle["query"], bundle["database"],
                         bundle["master"], bundle["constraints"],
                         governor=governor,
                         on_exhausted=args.on_exhausted,
                         backend=args.backend,
                         workers=args.workers)
    wall_s = time.perf_counter() - started
    print(f"RCDP: {result.status.value}")
    print(result.explanation)
    if result.certificate is not None:
        print("counterexample extension:")
        for name, row in result.certificate.extension_facts:
            print(f"  + {name}{row!r}")
        print(f"new answer: {result.certificate.new_answer!r}")
    _finish_observability(args, governor, procedure="rcdp",
                          statistics=result.statistics,
                          verdict=result.status.value,
                          exhausted=result.is_exhausted)
    _record_run(args, governor, procedure="rcdp", bundle=bundle,
                statistics=result.statistics,
                verdict=result.status.value,
                exhausted=result.is_exhausted, wall_s=wall_s,
                interrupted=(str(result.interrupted)
                             if result.is_exhausted else None))
    if result.is_exhausted:
        _print_exhaustion(result)
        return EXIT_EXHAUSTED
    return 0 if result.status is RCDPStatus.COMPLETE else 1


def _cmd_rcqp(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle, backend=args.backend)
    governor = _governor_from_args(args)
    _preflight(args, governor, bundle, "rcqp")
    started = time.perf_counter()
    result = decide_rcqp(bundle["query"], bundle["master"],
                         bundle["constraints"], bundle["schema"],
                         max_valuation_set_size=args.max_set_size,
                         governor=governor,
                         on_exhausted=args.on_exhausted,
                         backend=args.backend,
                         workers=args.workers)
    wall_s = time.perf_counter() - started
    print(f"RCQP: {result.status.value}")
    print(result.explanation)
    if result.witness is not None:
        print("witness database:")
        print(result.witness.pretty())
    _finish_observability(args, governor, procedure="rcqp",
                          statistics=result.statistics,
                          verdict=result.status.value,
                          exhausted=result.is_exhausted)
    _record_run(args, governor, procedure="rcqp", bundle=bundle,
                statistics=result.statistics,
                verdict=result.status.value,
                exhausted=result.is_exhausted, wall_s=wall_s,
                interrupted=(str(result.interrupted)
                             if result.is_exhausted else None))
    if result.is_exhausted:
        _print_exhaustion(result)
        return EXIT_EXHAUSTED
    return 0 if result.status is RCQPStatus.NONEMPTY else 1


def _cmd_complete(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle, backend=args.backend)
    governor = _governor_from_args(args)
    _preflight(args, governor, bundle, "complete")
    started = time.perf_counter()
    outcome = make_complete(bundle["query"], bundle["database"],
                            bundle["master"], bundle["constraints"],
                            max_rounds=args.max_rounds,
                            governor=governor,
                            on_exhausted=args.on_exhausted,
                            backend=args.backend,
                            workers=args.workers)
    if outcome.complete:
        print(f"complete after {outcome.rounds} round(s); collect:")
    else:
        print(f"NOT complete after {outcome.rounds} round(s); "
              f"partial guidance:")
    for name, row in outcome.added_facts:
        print(f"  + {name}{row!r}")
    _finish_observability(
        args, governor, procedure="complete",
        statistics=outcome.statistics,
        verdict="complete" if outcome.complete else "incomplete",
        exhausted=outcome.interrupted is not None)
    _record_run(args, governor, procedure="complete", bundle=bundle,
                statistics=outcome.statistics,
                verdict="complete" if outcome.complete else "incomplete",
                exhausted=outcome.interrupted is not None,
                wall_s=time.perf_counter() - started,
                interrupted=(str(outcome.interrupted)
                             if outcome.interrupted is not None
                             else None))
    if outcome.interrupted is not None:
        print(f"search interrupted: {outcome.interrupted}")
        return EXIT_EXHAUSTED
    return 0 if outcome.complete else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.mdm.audit import AuditVerdict, CompletenessAudit

    bundle = load_bundle(args.bundle, backend=args.backend)
    governor = _governor_from_args(args)
    audit = CompletenessAudit(
        master=bundle["master"], constraints=bundle["constraints"],
        schema=bundle["schema"],
        rcqp_valuation_set_size=args.max_set_size,
        backend=args.backend,
        workers=args.workers)
    _preflight(args, governor, bundle, "rcdp")
    started = time.perf_counter()
    report = audit.assess(bundle["query"], bundle["database"],
                          governor=governor,
                          on_exhausted=args.on_exhausted)
    wall_s = time.perf_counter() - started
    print(report.summary())
    statistics = report.rcdp.statistics
    if report.rcqp is not None:
        statistics = statistics.merged(report.rcqp.statistics)
    if report.completion is not None:
        statistics = statistics.merged(report.completion.statistics)
    _finish_observability(
        args, governor, procedure="audit", statistics=statistics,
        verdict=report.verdict.value,
        exhausted=report.verdict is AuditVerdict.INCONCLUSIVE)
    _record_run(args, governor, procedure="audit", bundle=bundle,
                statistics=statistics, verdict=report.verdict.value,
                exhausted=report.verdict is AuditVerdict.INCONCLUSIVE,
                wall_s=wall_s)
    if report.verdict is AuditVerdict.INCONCLUSIVE:
        return EXIT_EXHAUSTED
    return 0 if report.verdict.value == "trustworthy" else 1


def _cmd_missing(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle, backend=args.backend)
    governor = _governor_from_args(args)
    _preflight(args, governor, bundle, "missing")
    started = time.perf_counter()
    report = missing_answers_report(
        bundle["query"], bundle["database"], bundle["master"],
        bundle["constraints"], limit=args.limit,
        governor=governor, backend=args.backend,
        on_exhausted=args.on_exhausted, workers=args.workers)
    wall_s = time.perf_counter() - started
    if not report.answers and report.exhaustive:
        print("no missing answers: the database is relatively complete")
        _finish_observability(args, governor, procedure="missing",
                              statistics=report.statistics,
                              verdict="none", exhausted=False)
        _record_run(args, governor, procedure="missing", bundle=bundle,
                    statistics=report.statistics, verdict="none",
                    exhausted=False, wall_s=wall_s)
        return 0
    qualifier = "" if report.exhaustive else "at least "
    print(f"{qualifier}{len(report.answers)} answer(s) the query could "
          f"still gain:")
    for row in sorted(report.answers, key=repr):
        print(f"  ? {row!r}")
    _finish_observability(
        args, governor, procedure="missing",
        statistics=report.statistics,
        verdict="exhaustive" if report.exhaustive else "partial",
        exhausted=report.interrupted is not None)
    _record_run(args, governor, procedure="missing", bundle=bundle,
                statistics=report.statistics,
                verdict="exhaustive" if report.exhaustive else "partial",
                exhausted=report.interrupted is not None, wall_s=wall_s,
                interrupted=(str(report.interrupted)
                             if report.interrupted is not None
                             else None))
    if report.interrupted is not None:
        _print_exhaustion(report)
        return EXIT_EXHAUSTED
    return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import lint_path

    worst = 0
    payloads = []
    for path in args.bundles:
        report = lint_path(path, deep=not args.fast)
        worst = max(worst, report.exit_code)
        if args.format == "json":
            payloads.append({"bundle": path, **report.to_dict()})
        else:
            if len(args.bundles) > 1:
                print(f"== {path}")
            print(report.render())
            if args.explain_cost and report.facts.cost_estimate is not None:
                print(report.facts.cost_estimate.render())
    if args.format == "json":
        print(json.dumps(payloads if len(args.bundles) > 1
                         else payloads[0], indent=2, sort_keys=True))
    return worst


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import check_trace, read_trace, render_profile

    try:
        records = read_trace(args.file)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    problems = check_trace(records)
    spans = [r for r in records if r.get("type") == "span"]
    if problems:
        print(f"{args.file}: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 2
    if args.check:
        print(f"{args.file}: OK ({len(spans)} span(s))")
        return 0
    print(render_profile(spans))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import (atomic_write_text, check_ledger,
                           ledger_metrics, ledger_report, read_ledger,
                           render_summary, summarize_ledger,
                           write_prometheus)

    path = _ledger_path(args)
    if path is None:
        raise ReproError("no ledger: pass --ledger FILE or set "
                         "$REPRO_LEDGER")
    problems = check_ledger(path)
    if problems:
        print(f"{path}: {len(problems)} problem(s)", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    try:
        records = read_ledger(path)
    except (OSError, ValueError) as error:
        raise ReproError(str(error)) from error
    summary = summarize_ledger(records)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    if args.out:
        report = ledger_report(records)
        atomic_write_text(args.out, json.dumps(
            report, indent=2, ensure_ascii=False, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.prom:
        write_prometheus(args.prom, ledger_metrics(records))
        print(f"prometheus exposition written to {args.prom}")
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    from repro.obs import ledger_report, read_ledger
    from repro.obs.history import (HISTORY_FACTOR, diff_reports,
                                   discover_baselines,
                                   load_bench_report, render_history)

    baselines = []
    for path in args.baseline:
        files = discover_baselines(path)
        if not files:
            raise ReproError(f"no BENCH_*.json baselines under {path!r}")
        for file in files:
            try:
                baselines.append((file, load_bench_report(file)))
            except (OSError, ValueError, json.JSONDecodeError) as error:
                raise ReproError(f"bad baseline {file}: {error}") \
                    from error

    currents = []
    ledger_path = _ledger_path(args)
    if ledger_path is not None:
        try:
            records = read_ledger(ledger_path)
        except (OSError, ValueError) as error:
            raise ReproError(str(error)) from error
        currents.append((ledger_path, ledger_report(records)))
    for path in args.current:
        try:
            currents.append((path, load_bench_report(path)))
        except (OSError, ValueError, json.JSONDecodeError) as error:
            raise ReproError(f"bad current report {path}: {error}") \
                from error

    factor = args.factor if args.factor is not None else HISTORY_FACTOR
    result = diff_reports(baselines, currents, factor=factor,
                          slowdown=args.slowdown)
    print(render_history(result))
    if args.gate and not result.ok:
        print("history gate FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.mdm.audit import CompletenessAudit
    from repro.mdm.scenario import CRMScenario

    scenario = CRMScenario.example()
    # The strict supt⊆dcust IND only holds for domestic support tuples.
    scenario.support = {(e, d, c) for e, d, c in scenario.support
                        if not c.startswith("i")}
    audit = CompletenessAudit(
        master=scenario.master(),
        constraints=[scenario.supt_cid_ind()],
        schema=scenario.schema)
    database = scenario.database()
    print("master data:")
    print(scenario.master().pretty())
    print()
    print("database:")
    print(database.pretty())
    print()
    for query in (scenario.q2_all_supported_by("e0"),
                  scenario.q2_all_supported_by("e1")):
        report = audit.assess(query, database)
        print(f"--- audit of {query.name} ({query!r})")
        print(report.summary())
        print()
    return 0


DEFAULT_CORPUS_DIR = "corpus_bundles"


def corpus_families() -> tuple[str, ...]:
    from repro.corpus.spec import FAMILIES
    return FAMILIES


def _cmd_corpus_generate(args: argparse.Namespace) -> int:
    from repro.corpus import generate_corpus

    manifest = generate_corpus(
        args.out, seed=args.seed, per_family=args.per_family,
        families=tuple(args.families))
    print(f"generated {len(manifest['scenarios'])} scenarios "
          f"(seed {manifest['seed']}, families "
          f"{'/'.join(manifest['families'])}) into {args.out}")
    return 0


def _cmd_corpus_run(args: argparse.Namespace) -> int:
    from repro.corpus import build_report, check_report, render_report, \
        run_corpus

    result = run_corpus(args.dir, backends=tuple(args.backends),
                        workers=tuple(args.workers),
                        check_counting=not args.no_counting,
                        ledger=_ledger_path(args))
    report = build_report(result, smoke=args.smoke)
    print(render_report(report))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, ensure_ascii=False)
            handle.write("\n")
        print(f"wrote {args.report}")
    return check_report(report)


def _cmd_corpus_report(args: argparse.Namespace) -> int:
    from repro.corpus import check_report, render_report
    from repro.corpus.report import load_report

    report = load_report(args.file)
    print(render_report(report))
    return check_report(report)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Relative information completeness (Fan & Geerts, "
                    "PODS 2009) — completeness checks for partially "
                    "closed databases.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    rcdp = subparsers.add_parser(
        "rcdp", aliases=["decide"],
        help="is the database complete for the query?")
    rcdp.add_argument("bundle", help="JSON problem bundle")
    _add_governor_arguments(rcdp)
    rcdp.set_defaults(func=_cmd_rcdp)

    rcqp = subparsers.add_parser(
        "rcqp", help="does any relatively complete database exist?")
    rcqp.add_argument("bundle", help="JSON problem bundle")
    rcqp.add_argument("--max-set-size", type=int, default=2,
                      help="valuation-set budget for the E2 search")
    _add_governor_arguments(rcqp)
    rcqp.set_defaults(func=_cmd_rcqp)

    complete = subparsers.add_parser(
        "complete", help="suggest the facts that make the database "
                         "complete")
    complete.add_argument("bundle", help="JSON problem bundle")
    complete.add_argument("--max-rounds", type=int, default=32)
    _add_governor_arguments(complete)
    complete.set_defaults(func=_cmd_complete)

    audit = subparsers.add_parser(
        "audit", help="run the full §2.3 audit cascade")
    audit.add_argument("bundle", help="JSON problem bundle")
    audit.add_argument("--max-set-size", type=int, default=1,
                       help="valuation-set budget for the RCQP step")
    _add_governor_arguments(audit)
    audit.set_defaults(func=_cmd_audit)

    missing = subparsers.add_parser(
        "missing", help="enumerate answers the query could still gain")
    missing.add_argument("bundle", help="JSON problem bundle")
    missing.add_argument("--limit", type=int, default=None,
                         help="stop after this many missing answers")
    _add_governor_arguments(missing)
    missing.set_defaults(func=_cmd_missing)

    lint = subparsers.add_parser(
        "lint", help="statically analyze bundles without deciding "
                     "anything")
    lint.add_argument("bundles", nargs="+", metavar="bundle",
                      help="JSON problem bundle(s), or directories of "
                           "them (linted in sorted name order)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text", help="output format")
    lint.add_argument("--fast", action="store_true",
                      help="skip the NP-hard minimization/containment "
                           "rules (RC005, RC103)")
    lint.add_argument("--explain-cost", action="store_true",
                      help="print the static cost estimate (predicted "
                           "governor ticks, dominant phase, per-disjunct "
                           "breakdown) after each report")
    lint.set_defaults(func=_cmd_lint)

    trace = subparsers.add_parser(
        "trace", help="inspect or validate a JSONL trace written by "
                      "--trace")
    trace.add_argument("file", help="JSONL trace file")
    trace.add_argument("--check", action="store_true",
                       help="validate only (span-tree well-formedness "
                            "and tick accounting); exit 0 when valid, "
                            "2 otherwise")
    trace.set_defaults(func=_cmd_trace)

    corpus = subparsers.add_parser(
        "corpus", help="generate and differentially run the scenario "
                       "corpus (see docs/CORPUS.md)")
    corpus_sub = corpus.add_subparsers(dest="corpus_command",
                                       required=True)

    generate = corpus_sub.add_parser(
        "generate", help="emit a seeded, oracle-verified scenario sweep")
    generate.add_argument("--out", default=DEFAULT_CORPUS_DIR,
                          metavar="DIR",
                          help=f"output directory (default "
                               f"{DEFAULT_CORPUS_DIR})")
    generate.add_argument("--seed", type=int, default=9,
                          help="sweep seed; the same seed reproduces "
                               "byte-identical bundles (default 9)")
    generate.add_argument("--per-family", type=int, default=25,
                          metavar="N",
                          help="scenarios per domain family (default 25 "
                               "→ a 100-scenario sweep)")
    generate.add_argument("--families", nargs="+", metavar="FAMILY",
                          default=list(corpus_families()),
                          choices=corpus_families(),
                          help="domain families to sweep (default: all)")
    generate.set_defaults(func=_cmd_corpus_generate)

    run = corpus_sub.add_parser(
        "run", help="re-decide every scenario across the backend × "
                    "worker matrix against the python-serial oracle")
    run.add_argument("--dir", default=DEFAULT_CORPUS_DIR, metavar="DIR",
                     help=f"corpus directory (default "
                          f"{DEFAULT_CORPUS_DIR})")
    run.add_argument("--backends", nargs="+", choices=BACKEND_NAMES,
                     default=list(BACKEND_NAMES),
                     help="storage backends to cross-check "
                          "(default: all)")
    run.add_argument("--workers", nargs="+", type=int, default=[1, 2],
                     metavar="N", help="worker counts to cross-check "
                                       "(default: 1 2)")
    run.add_argument("--no-counting", action="store_true",
                     help="skip the per-backend missing-answer "
                          "counting leg")
    run.add_argument("--smoke", action="store_true",
                     help="mark the report as a smoke run")
    run.add_argument("--report", default=None, metavar="FILE",
                     help="also write the BENCH-format JSON report "
                          "to FILE")
    run.add_argument("--ledger", default=None, metavar="FILE",
                     help="append one RunRecord per scenario to the "
                          "JSONL run ledger at FILE (default: "
                          "$REPRO_LEDGER, else no ledger)")
    run.set_defaults(func=_cmd_corpus_run)

    corpus_report = corpus_sub.add_parser(
        "report", help="render a previously written corpus report and "
                       "re-check its gates")
    corpus_report.add_argument("file", help="BENCH-format corpus report")
    corpus_report.set_defaults(func=_cmd_corpus_report)

    report = subparsers.add_parser(
        "report", help="aggregate a JSONL run ledger: latency "
                       "percentiles, verdict mix, cache hit rates, "
                       "per-backend comparison")
    report.add_argument("--ledger", default=None, metavar="FILE",
                        help="ledger file (default: $REPRO_LEDGER)")
    report.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    report.add_argument("--out", default=None, metavar="FILE",
                        help="also write a BENCH-format report derived "
                             "from the ledger (the current side of "
                             "'repro history')")
    report.add_argument("--prom", default=None, metavar="FILE",
                        help="write the aggregated metrics as "
                             "Prometheus text exposition to FILE")
    report.set_defaults(func=_cmd_report)

    history = subparsers.add_parser(
        "history", help="diff fresh runs against committed BENCH_*.json "
                        "baselines; --gate exits nonzero on regression")
    history.add_argument("--ledger", default=None, metavar="FILE",
                         help="derive the current side from this run "
                              "ledger (default: $REPRO_LEDGER if set)")
    history.add_argument("--baseline", nargs="+", default=["."],
                         metavar="PATH",
                         help="baseline report file(s), or directories "
                              "globbed for BENCH_*.json (default: .)")
    history.add_argument("--current", nargs="+", default=[],
                         metavar="FILE",
                         help="additional current-side BENCH-format "
                              "report file(s)")
    history.add_argument("--gate", action="store_true",
                         help="exit 1 on any baseline problem or "
                              "regression (the CI mode)")
    history.add_argument("--factor", type=float, default=None,
                         help="ceiling on the median paired wall-time "
                              "ratio (default 1.75)")
    history.add_argument("--slowdown", type=float, default=1.0,
                         metavar="X",
                         help="multiply current wall times by X — a "
                              "synthetic regression for gate "
                              "self-tests (default 1.0)")
    history.set_defaults(func=_cmd_history)

    demo = subparsers.add_parser(
        "demo", help="run the paper's CRM example")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ExecutionInterrupted as interrupt:
        print(f"search interrupted: {interrupt.reason} — {interrupt}",
              file=sys.stderr)
        if interrupt.checkpoint is not None:
            print(f"resumable checkpoint: {interrupt.checkpoint!r}",
                  file=sys.stderr)
        return EXIT_EXHAUSTED
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.report is not None:
            print(error.report.render(), file=sys.stderr)
        return 2
    except WorkerPoolError as error:
        # One-line diagnostic; the per-shard tracebacks are in
        # ``error.details`` for interactive debugging, not the console.
        print(f"error: worker pool failure — {error.summary}",
              file=sys.stderr)
        return EXIT_POOL_FAILURE
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
