"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------

``rcdp BUNDLE.json``
    Decide whether the bundle's database is complete for its query
    relative to its master data and constraints; print the verdict and,
    when incomplete, the counterexample extension.

``rcqp BUNDLE.json``
    Decide whether any relatively complete database exists for the
    bundle's query; print the verdict and witness.

``complete BUNDLE.json``
    Run the certificate-completion loop and print the facts that would
    make the database complete.

``audit BUNDLE.json``
    Run the full §2.3 cascade (RCDP → RCQP → completion guidance →
    master-data expansion advice) and print the report.

``missing BUNDLE.json``
    Enumerate the answers the query could still gain over the active
    domain (the completeness *margin*).

``demo``
    Run the paper's CRM example end to end and print the §2.3 audit.

Bundles are JSON files in the format of :mod:`repro.io.json_io`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.rcdp import decide_rcdp
from repro.core.rcqp import decide_rcqp
from repro.core.results import RCDPStatus, RCQPStatus
from repro.core.witness import make_complete
from repro.errors import ReproError
from repro.io.json_io import load_bundle

__all__ = ["main"]


def _cmd_rcdp(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle)
    result = decide_rcdp(bundle["query"], bundle["database"],
                         bundle["master"], bundle["constraints"])
    print(f"RCDP: {result.status.value}")
    print(result.explanation)
    if result.certificate is not None:
        print("counterexample extension:")
        for name, row in result.certificate.extension_facts:
            print(f"  + {name}{row!r}")
        print(f"new answer: {result.certificate.new_answer!r}")
    return 0 if result.status is RCDPStatus.COMPLETE else 1


def _cmd_rcqp(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle)
    result = decide_rcqp(bundle["query"], bundle["master"],
                         bundle["constraints"], bundle["schema"],
                         max_valuation_set_size=args.max_set_size)
    print(f"RCQP: {result.status.value}")
    print(result.explanation)
    if result.witness is not None:
        print("witness database:")
        print(result.witness.pretty())
    return 0 if result.status is RCQPStatus.NONEMPTY else 1


def _cmd_complete(args: argparse.Namespace) -> int:
    bundle = load_bundle(args.bundle)
    outcome = make_complete(bundle["query"], bundle["database"],
                            bundle["master"], bundle["constraints"],
                            max_rounds=args.max_rounds)
    if outcome.complete:
        print(f"complete after {outcome.rounds} round(s); collect:")
    else:
        print(f"NOT complete after {outcome.rounds} round(s); "
              f"partial guidance:")
    for name, row in outcome.added_facts:
        print(f"  + {name}{row!r}")
    return 0 if outcome.complete else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.mdm.audit import CompletenessAudit

    bundle = load_bundle(args.bundle)
    audit = CompletenessAudit(
        master=bundle["master"], constraints=bundle["constraints"],
        schema=bundle["schema"],
        rcqp_valuation_set_size=args.max_set_size)
    report = audit.assess(bundle["query"], bundle["database"])
    print(report.summary())
    return 0 if report.verdict.value == "trustworthy" else 1


def _cmd_missing(args: argparse.Namespace) -> int:
    from repro.core.rcdp import enumerate_missing_answers

    bundle = load_bundle(args.bundle)
    missing = enumerate_missing_answers(
        bundle["query"], bundle["database"], bundle["master"],
        bundle["constraints"], limit=args.limit)
    if not missing:
        print("no missing answers: the database is relatively complete")
        return 0
    print(f"{len(missing)} answer(s) the query could still gain:")
    for row in sorted(missing, key=repr):
        print(f"  ? {row!r}")
    return 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.mdm.audit import CompletenessAudit
    from repro.mdm.scenario import CRMScenario

    scenario = CRMScenario.example()
    # The strict supt⊆dcust IND only holds for domestic support tuples.
    scenario.support = {(e, d, c) for e, d, c in scenario.support
                        if not c.startswith("i")}
    audit = CompletenessAudit(
        master=scenario.master(),
        constraints=[scenario.supt_cid_ind()],
        schema=scenario.schema)
    database = scenario.database()
    print("master data:")
    print(scenario.master().pretty())
    print()
    print("database:")
    print(database.pretty())
    print()
    for query in (scenario.q2_all_supported_by("e0"),
                  scenario.q2_all_supported_by("e1")):
        report = audit.assess(query, database)
        print(f"--- audit of {query.name} ({query!r})")
        print(report.summary())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Relative information completeness (Fan & Geerts, "
                    "PODS 2009) — completeness checks for partially "
                    "closed databases.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    rcdp = subparsers.add_parser(
        "rcdp", help="is the database complete for the query?")
    rcdp.add_argument("bundle", help="JSON problem bundle")
    rcdp.set_defaults(func=_cmd_rcdp)

    rcqp = subparsers.add_parser(
        "rcqp", help="does any relatively complete database exist?")
    rcqp.add_argument("bundle", help="JSON problem bundle")
    rcqp.add_argument("--max-set-size", type=int, default=2,
                      help="valuation-set budget for the E2 search")
    rcqp.set_defaults(func=_cmd_rcqp)

    complete = subparsers.add_parser(
        "complete", help="suggest the facts that make the database "
                         "complete")
    complete.add_argument("bundle", help="JSON problem bundle")
    complete.add_argument("--max-rounds", type=int, default=32)
    complete.set_defaults(func=_cmd_complete)

    audit = subparsers.add_parser(
        "audit", help="run the full §2.3 audit cascade")
    audit.add_argument("bundle", help="JSON problem bundle")
    audit.add_argument("--max-set-size", type=int, default=1,
                       help="valuation-set budget for the RCQP step")
    audit.set_defaults(func=_cmd_audit)

    missing = subparsers.add_parser(
        "missing", help="enumerate answers the query could still gain")
    missing.add_argument("bundle", help="JSON problem bundle")
    missing.add_argument("--limit", type=int, default=None,
                         help="stop after this many missing answers")
    missing.set_defaults(func=_cmd_missing)

    demo = subparsers.add_parser(
        "demo", help="run the paper's CRM example")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
