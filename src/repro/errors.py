"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one type to handle all library
failures while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or an object refers to an unknown relation,
    attribute, or has the wrong arity."""


class DomainError(ReproError):
    """A value does not belong to the domain of the attribute it is used in."""


class QueryError(ReproError):
    """A query is malformed (unknown relation, arity mismatch, unsafe head
    variable, unbound variable in a comparison, ...)."""


class UnsatisfiableQueryError(QueryError):
    """Raised when an operation requires a satisfiable query but the query's
    equality atoms are contradictory (e.g. ``x = 'a' AND x = 'b'``)."""


class ConstraintError(ReproError):
    """A containment or integrity constraint is malformed."""


class EvaluationError(ReproError):
    """A query could not be evaluated over the given instance."""


class ParseError(ReproError):
    """The textual query/constraint syntax could not be parsed.

    Carries the position of the offending token — ``line``/``column``
    (1-based) plus the absolute character ``offset`` and token ``length``
    — so tools like ``repro lint`` can render a caret under the exact
    span.  The position is also folded into the message.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None, offset: int | None = None,
                 length: int = 1) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
            if offset is not None:
                location += f" (offset {offset})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column
        self.offset = offset
        self.length = length


class UndecidableConfigurationError(ReproError):
    """Raised when an exact decision procedure is invoked on a language
    combination the paper proves undecidable (FO or FP on either side).

    Callers who want a best-effort answer must explicitly use the bounded
    semi-decision procedures in :mod:`repro.core.bounded`.
    """


class AnalysisError(ReproError):
    """Static analysis (:mod:`repro.analysis`) found error-severity
    diagnostics in a decision procedure's inputs.

    The deciders run a fast-fail validation pass before searching; when
    the pass reports errors (schema mismatches, invalid constraints, …)
    they raise this exception instead of crashing mid-search or burning
    budget on a malformed instance.  The full
    :class:`~repro.analysis.Report` is attached as ``report``.
    """

    def __init__(self, message: str, *, report=None) -> None:
        super().__init__(message)
        self.report = report


class NotPartiallyClosedError(ReproError):
    """The database handed to RCDP does not satisfy the containment
    constraints, i.e. it is not partially closed w.r.t. ``(Dm, V)``."""


class WorkerPoolError(ReproError):
    """The parallel worker pool failed and could not recover.

    Raised by the shard supervisor when a worker reports an unexpected
    exception (a deterministic bug — retrying would reproduce it), when
    a poison shard exhausts its retries under ``on_poison="error"``, or
    when supervision is disabled and any worker dies.  A crashed worker
    means an unscanned slice of the search space, so no sound verdict
    can be assembled from the remaining shards.

    ``summary`` carries the one-line form (shard counts and reasons);
    the full message appends per-shard details such as worker
    tracebacks.  The CLI maps this error to its own exit code (4) and
    prints only the summary.
    """

    def __init__(self, summary: str, *, details: str = "") -> None:
        super().__init__(f"{summary}\n{details}" if details else summary)
        self.summary = summary
        self.details = details


class CorpusError(ReproError):
    """A scenario-corpus generation or run failure.

    Raised when a generated bundle fails its self-check (the oracle
    verdict disagrees with the scenario's target), when a corpus
    directory is missing or malformed, or when a run cannot be
    assembled."""


class DiversityError(CorpusError):
    """The corpus diversity gate tripped.

    Generation refuses to emit a sweep whose family / verdict /
    language-tier coverage has collapsed; the message lists every
    violated coverage requirement."""


class SearchBudgetExceededError(ReproError):
    """An exact decision procedure exceeded its configured search budget.

    The exact deciders solve problems that are Πᵖ₂- to NEXPTIME-complete;
    budgets keep runaway instances from hanging the caller.

    The exception does not discard the search's progress.  Attributes:

    ``reason``
        What tripped: ``"budget"``, ``"deadline"``, or ``"cancelled"``
        (injected faults report the condition they simulate).
    ``statistics``
        :class:`~repro.core.results.SearchStatistics` at the moment of
        interruption, when the raising procedure tracked them.
    ``partial_result``
        The structured ``EXHAUSTED`` result the procedure would have
        returned under ``on_exhausted="partial"`` (best-so-far data).
    ``checkpoint``
        A :class:`~repro.runtime.checkpoint.SearchCheckpoint` that the
        procedure's ``resume_from`` parameter accepts to continue the
        search under a fresh budget.
    """

    def __init__(self, message: str = "", *, reason: str = "budget",
                 statistics=None, partial_result=None,
                 checkpoint=None) -> None:
        super().__init__(message)
        self.reason = reason
        self.statistics = statistics
        self.partial_result = partial_result
        self.checkpoint = checkpoint


class ExecutionInterrupted(SearchBudgetExceededError):
    """Raised by :class:`~repro.runtime.governor.ExecutionGovernor` when a
    budget, deadline, cancellation token, or injected fault trips.

    Subclasses :class:`SearchBudgetExceededError` so existing callers that
    catch budget exhaustion transparently catch every governed stop
    condition.  Deciders intercept this exception in the hot loop, attach
    statistics and a checkpoint, and either re-raise it
    (``on_exhausted="error"``) or degrade to a structured ``EXHAUSTED``
    result (``on_exhausted="partial"``).
    """
