"""Denial constraints.

A denial constraint forbids a pattern:
``∀x̄1...x̄k ¬(R1(x̄1) ∧ ... ∧ Rk(x̄k) ∧ φ(x̄1, ..., x̄k))`` where ``φ`` is a
conjunction of ``=`` / ``≠`` (Section 2.2, following Arenas et al. 1999).

We represent the forbidden pattern directly as the body of a Boolean CQ;
``D ⊨ ϕ_d`` iff that CQ has no answer in ``D``.  Proposition 2.1(a) compiles
it to the single CC ``q ⊆ ∅``.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.errors import ConstraintError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.relational.instance import Instance

__all__ = ["DenialConstraint"]


class DenialConstraint:
    """``¬(atom1 ∧ atom2 ∧ ... ∧ comparisons)``."""

    __slots__ = ("name", "atoms")

    def __init__(self, atoms: Iterable[Any], name: str = "dc") -> None:
        self.atoms = tuple(atoms)
        self.name = name
        if not any(isinstance(a, RelAtom) for a in self.atoms):
            raise ConstraintError(
                f"denial constraint {name!r} needs at least one relation "
                f"atom")
        for atom in self.atoms:
            if not isinstance(atom, (RelAtom, Eq, Neq)):
                raise ConstraintError(
                    f"denial constraint {name!r}: unsupported atom "
                    f"{atom!r}")

    def _pattern_query(self) -> ConjunctiveQuery:
        # The paper compiles ϕ_d to q(x̄1, ..., x̄k) ⊆ ∅ with all variables
        # in the head; the head does not affect emptiness, but the RCQP
        # boundedness characterization (condition E2) reads CC summaries,
        # so we keep them, in first-occurrence order.
        head: list[Any] = []
        seen = set()
        for atom in self.atoms:
            if isinstance(atom, RelAtom):
                for term in atom.terms:
                    if term not in seen:
                        seen.add(term)
                        head.append(term)
        return ConjunctiveQuery(head, self.atoms, name=f"q[{self.name}]")

    def is_satisfied(self, database: Instance) -> bool:
        """Direct semantics: the forbidden pattern has no match."""
        return not self._pattern_query().holds_in(database)

    def violations(self, database: Instance) -> bool:
        """True when the pattern matches (evidence of inconsistency)."""
        return self._pattern_query().holds_in(database)

    def to_containment_constraint(self) -> ContainmentConstraint:
        """Proposition 2.1(a): the CC ``q ⊆ ∅``."""
        return ContainmentConstraint(
            self._pattern_query(), Projection.empty(), name=self.name)

    def __repr__(self) -> str:
        inner = " ∧ ".join(repr(a) for a in self.atoms)
        return f"¬({inner})"
