"""Containment constraints and the integrity constraints of Section 2.2."""

from repro.constraints.cfd import (ConditionalFunctionalDependency,
                                   FunctionalDependency)
from repro.constraints.cind import ConditionalInclusionDependency
from repro.constraints.compile import compile_all, compile_to_containment
from repro.constraints.containment import (ContainmentConstraint,
                                           Projection, satisfies_all,
                                           violated_constraints)
from repro.constraints.denial import DenialConstraint
from repro.constraints.ind import InclusionDependency

__all__ = [
    "ConditionalFunctionalDependency",
    "ConditionalInclusionDependency",
    "ContainmentConstraint",
    "DenialConstraint",
    "FunctionalDependency",
    "InclusionDependency",
    "Projection",
    "compile_all",
    "compile_to_containment",
    "satisfies_all",
    "violated_constraints",
]
