"""Containment constraints (CCs): ``q(D) ⊆ p(Dm)``.

A CC pairs a query ``q`` over the database schema with a *projection* ``p``
over the master schema: ``p`` is a query of the form ``∃x̄ Rm_i(x̄, ȳ)``,
i.e. the projection of one master relation onto some of its columns
(Section 2.1).  The paper's shorthand ``q ⊆ ∅`` (projection on an empty
master relation) is modelled by :meth:`Projection.empty`.

Satisfaction: ``(D, Dm) ⊨ q ⊆ p`` iff ``q(D) ⊆ p(Dm)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ConstraintError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = ["Projection", "ContainmentConstraint", "satisfies_all",
           "satisfies_all_extension", "violated_constraints"]

#: Query languages whose queries the exact deciders can handle in CCs.
_DECIDABLE_LANGUAGES = frozenset({"CQ", "UCQ", "EFO"})


@dataclass(frozen=True)
class Projection:
    """The right-hand side ``p`` of a CC.

    Either a projection ``π_columns(relation)`` of a master relation, or the
    empty target ``∅`` (``relation is None``), which evaluates to the empty
    set on every master instance.
    """

    relation: str | None
    columns: tuple[int, ...] = ()

    @classmethod
    def empty(cls) -> "Projection":
        """The target ``∅``."""
        return cls(relation=None, columns=())

    @classmethod
    def on(cls, relation: str, columns: Iterable[int]) -> "Projection":
        """Projection of *relation* on 0-based column indices *columns*."""
        return cls(relation=relation, columns=tuple(columns))

    @classmethod
    def full(cls, relation: str, arity: int) -> "Projection":
        """Identity projection of an *arity*-ary relation."""
        return cls(relation=relation, columns=tuple(range(arity)))

    @property
    def is_empty_target(self) -> bool:
        return self.relation is None

    @property
    def arity(self) -> int:
        return len(self.columns)

    def validate(self, master_schema: DatabaseSchema) -> None:
        if self.relation is None:
            return
        relation = master_schema.relation(self.relation)
        for column in self.columns:
            if not 0 <= column < relation.arity:
                raise ConstraintError(
                    f"projection column {column} out of range for master "
                    f"relation {self.relation!r} of arity {relation.arity}")

    def evaluate(self, master: Instance, *,
                 context: Any = None) -> frozenset[tuple]:
        """Compute ``p(Dm)``.

        With an :class:`~repro.engine.context.EvaluationContext` the
        result is memoized per (projection, master) pair — ``Dm`` is
        fixed for an entire decision, so each projection is computed at
        most once instead of on every constraint check.
        """
        if context is not None:
            return context.projection_rows(self, master)
        if self.relation is None:
            return frozenset()
        rows = master.relation(self.relation)
        return frozenset(
            tuple(row[c] for c in self.columns) for row in rows)

    def __repr__(self) -> str:
        if self.relation is None:
            return "∅"
        cols = ",".join(str(c) for c in self.columns)
        return f"π[{cols}]({self.relation})"


class ContainmentConstraint:
    """A containment constraint ``q ⊆ p``.

    *query* may be any of the library's query objects (CQ, UCQ, ∃FO⁺, FO,
    FP); its ``language`` attribute drives decidability checks in the core
    deciders.  The query arity must match the projection arity unless the
    target is ``∅`` (which contains nothing of any arity).
    """

    __slots__ = ("name", "query", "projection")

    def __init__(self, query: Any, projection: Projection,
                 name: str = "φ") -> None:
        if not hasattr(query, "evaluate") or not hasattr(query, "language"):
            raise ConstraintError(
                f"CC left-hand side must be a query object, got "
                f"{type(query).__name__}")
        if not isinstance(projection, Projection):
            raise ConstraintError(
                f"CC right-hand side must be a Projection, got "
                f"{type(projection).__name__}")
        arity = getattr(query, "arity", None)
        if (not projection.is_empty_target and arity is not None
                and arity != projection.arity):
            raise ConstraintError(
                f"CC {name!r}: query arity {arity} does not match "
                f"projection arity {projection.arity}")
        self.name = name
        self.query = query
        self.projection = projection

    @property
    def language(self) -> str:
        return self.query.language

    @property
    def is_decidable_language(self) -> bool:
        """True when the CC's query language keeps RCDP/RCQP decidable."""
        return self.language in _DECIDABLE_LANGUAGES

    def is_ind(self) -> bool:
        """True when this CC is an inclusion dependency: ``q`` itself is a
        projection query (single relation atom, distinct variables, head a
        subset of those variables, no comparisons)."""
        query = self.query
        if not isinstance(query, ConjunctiveQuery):
            return False
        if query.comparisons or len(query.relation_atoms) != 1:
            return False
        atom = query.relation_atoms[0]
        terms = atom.terms
        if len(set(terms)) != len(terms):
            return False
        from repro.queries.terms import Var

        if not all(isinstance(t, Var) for t in terms):
            return False
        return all(t in terms for t in query.head)

    def ind_source(self) -> tuple[str, tuple[int, ...]]:
        """For an IND, return ``(relation, projected column indices)``."""
        if not self.is_ind():
            raise ConstraintError(f"CC {self.name!r} is not an IND")
        query: ConjunctiveQuery = self.query
        atom = query.relation_atoms[0]
        positions = {term: pos for pos, term in enumerate(atom.terms)}
        return atom.relation, tuple(positions[t] for t in query.head)

    def validate(self, schema: DatabaseSchema,
                 master_schema: DatabaseSchema) -> None:
        self.query.validate(schema)
        self.projection.validate(master_schema)

    def is_satisfied(self, database: Instance, master: Instance, *,
                     context: Any = None) -> bool:
        """``(D, Dm) ⊨ q ⊆ p``."""
        answers = (context.evaluate(self.query, database)
                   if context is not None
                   else self.query.evaluate(database))
        if not answers:
            return True
        if self.projection.is_empty_target:
            return False
        return answers <= self.projection.evaluate(master, context=context)

    def is_satisfied_extension(self, base: Instance,
                               delta_facts: Iterable[tuple[str, tuple]],
                               master: Instance, *,
                               context: Any = None) -> bool:
        """``(base ∪ Δ, Dm) ⊨ q ⊆ p`` without materializing the union.

        With a context, the check is delegated to
        :meth:`~repro.engine.context.EvaluationContext
        .extension_satisfies` — the semi-naive delta rule over the
        cached ``q(base)`` on the python backend, a pushed-down
        violation probe on the others; without one the union is
        materialized.  Same verdict every way.
        """
        if context is None:
            from repro.relational.instance import extend_unvalidated

            return self.is_satisfied(extend_unvalidated(base, delta_facts),
                                     master)
        return context.extension_satisfies(self.query, base, delta_facts,
                                           self.projection, master)

    def violating_answers(self, database: Instance,
                          master: Instance, *,
                          context: Any = None) -> frozenset[tuple]:
        """The answers of ``q(D)`` missing from ``p(Dm)`` (evidence)."""
        answers = (context.evaluate(self.query, database)
                   if context is not None
                   else self.query.evaluate(database))
        return frozenset(
            answers - self.projection.evaluate(master, context=context))

    def __repr__(self) -> str:
        return f"{self.name}: {self.query!r} ⊆ {self.projection!r}"


def satisfies_all(database: Instance, master: Instance,
                  constraints: Sequence[ContainmentConstraint], *,
                  context: Any = None) -> bool:
    """``(D, Dm) ⊨ V``."""
    return all(c.is_satisfied(database, master, context=context)
               for c in constraints)


def satisfies_all_extension(base: Instance,
                            delta_facts: Iterable[tuple[str, tuple]],
                            master: Instance,
                            constraints: Sequence[ContainmentConstraint], *,
                            context: Any = None) -> bool:
    """``(base ∪ Δ, Dm) ⊨ V`` — the candidate-extension check the
    decider hot loops run per valuation, on the delta path when a
    context is supplied."""
    delta_facts = list(delta_facts)
    return all(c.is_satisfied_extension(base, delta_facts, master,
                                        context=context)
               for c in constraints)


def violated_constraints(database: Instance, master: Instance,
                         constraints: Sequence[ContainmentConstraint], *,
                         context: Any = None) -> list[ContainmentConstraint]:
    """The subset of *constraints* violated by ``(D, Dm)``."""
    return [c for c in constraints
            if not c.is_satisfied(database, master, context=context)]
