"""Conditional functional dependencies (CFDs) and plain FDs.

A CFD extends an FD ``X → Y`` on a relation ``R`` with constant patterns:
``φ(x̄)`` constrains the ``X`` attributes and ``ψ(ȳ)`` the ``Y`` attributes
(Section 2.2, following Fan et al. 2008).  A plain FD is the pattern-free
special case.

Both direct semantics (:meth:`ConditionalFunctionalDependency.is_satisfied`)
and the Proposition 2.1(b) compilation to CQ containment constraints with
empty target are provided; tests check they agree on random instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.errors import ConstraintError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = ["ConditionalFunctionalDependency", "FunctionalDependency"]


@dataclass(frozen=True)
class ConditionalFunctionalDependency:
    """``R: (X → Y, (pattern_x ∥ pattern_y))``.

    *lhs* / *rhs* are attribute-name tuples; *lhs_pattern* / *rhs_pattern*
    map a subset of those attributes to required constants.
    """

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]
    lhs_pattern: Mapping[str, Any] = field(default_factory=dict)
    rhs_pattern: Mapping[str, Any] = field(default_factory=dict)
    name: str = "cfd"

    def __init__(self, relation: str, lhs: Iterable[str],
                 rhs: Iterable[str],
                 lhs_pattern: Mapping[str, Any] | None = None,
                 rhs_pattern: Mapping[str, Any] | None = None,
                 name: str = "cfd") -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", tuple(rhs))
        object.__setattr__(self, "lhs_pattern", dict(lhs_pattern or {}))
        object.__setattr__(self, "rhs_pattern", dict(rhs_pattern or {}))
        object.__setattr__(self, "name", name)
        if not self.rhs:
            raise ConstraintError(f"CFD {name!r} needs at least one RHS "
                                  f"attribute")
        bad = set(self.lhs_pattern) - set(self.lhs)
        if bad:
            raise ConstraintError(
                f"CFD {name!r}: pattern attributes {sorted(bad)} are not "
                f"in the LHS {self.lhs}")
        bad = set(self.rhs_pattern) - set(self.rhs)
        if bad:
            raise ConstraintError(
                f"CFD {name!r}: pattern attributes {sorted(bad)} are not "
                f"in the RHS {self.rhs}")

    # ------------------------------------------------------------------
    # Direct semantics
    # ------------------------------------------------------------------

    def _matches_lhs_pattern(self, row: tuple, positions: dict[str, int]
                             ) -> bool:
        return all(row[positions[attr]] == value
                   for attr, value in self.lhs_pattern.items())

    def is_satisfied(self, database: Instance) -> bool:
        """Direct CFD semantics over *database*."""
        relation = database.schema.relation(self.relation)
        positions = {attr: relation.position_of(attr)
                     for attr in set(self.lhs) | set(self.rhs)}
        rows = [row for row in database.relation(self.relation)
                if self._matches_lhs_pattern(row, positions)]
        # Single-tuple condition: ψ constants must hold.
        for row in rows:
            for attr, value in self.rhs_pattern.items():
                if row[positions[attr]] != value:
                    return False
        # Pairwise condition: equal X implies equal Y.
        by_key: dict[tuple, tuple] = {}
        for row in rows:
            key = tuple(row[positions[attr]] for attr in self.lhs)
            rhs_value = tuple(row[positions[attr]] for attr in self.rhs)
            existing = by_key.get(key)
            if existing is None:
                by_key[key] = rhs_value
            elif existing != rhs_value:
                return False
        return True

    # ------------------------------------------------------------------
    # Proposition 2.1(b): compilation to CCs in CQ
    # ------------------------------------------------------------------

    def to_containment_constraints(
            self, schema: DatabaseSchema) -> list[ContainmentConstraint]:
        """Compile into CQ CCs with target ``∅``.

        Two families, following the proof of Proposition 2.1:

        1. for each RHS attribute ``y``: the pair query
           ``R(t1) ∧ R(t2) ∧ φ(t1) ∧ φ(t2) ∧ t1[X]=t2[X] ∧ t1[y]≠t2[y] ⊆ ∅``;
        2. for each ``y = c`` in ψ: the single-tuple query
           ``R(t) ∧ φ(t) ∧ t[y]≠c ⊆ ∅``.
        """
        relation = schema.relation(self.relation)
        attrs = relation.attribute_names
        constraints: list[ContainmentConstraint] = []

        def fresh_atom(tag: str) -> tuple[RelAtom, dict[str, Var]]:
            variables = {attr: Var(f"{self.name}.{tag}.{attr}")
                         for attr in attrs}
            atom = RelAtom(self.relation,
                           [variables[attr] for attr in attrs])
            return atom, variables

        def pattern_atoms(variables: dict[str, Var]) -> list[Eq]:
            return [Eq(variables[attr], Const(value))
                    for attr, value in self.lhs_pattern.items()]

        for index, y in enumerate(self.rhs):
            atom1, vars1 = fresh_atom("t1")
            atom2, vars2 = fresh_atom("t2")
            body: list[Any] = [atom1, atom2]
            body += pattern_atoms(vars1) + pattern_atoms(vars2)
            body += [Eq(vars1[attr], vars2[attr]) for attr in self.lhs]
            body.append(Neq(vars1[y], vars2[y]))
            # The paper's query keeps all variables in the head
            # (q(x̄1, z̄1, ȳ1, x̄2, z̄2, ȳ2) ⊆ ∅); the head is irrelevant for
            # satisfaction of an empty-target CC, but the RCQP boundedness
            # characterization (condition E2) reads the CC summary, so we
            # preserve it.
            head = tuple(atom1.terms) + tuple(atom2.terms)
            query = ConjunctiveQuery(
                head, body, name=f"q[{self.name}.pair.{index}]")
            constraints.append(ContainmentConstraint(
                query, Projection.empty(),
                name=f"{self.name}.pair.{y}"))

        for y, value in self.rhs_pattern.items():
            atom, variables = fresh_atom("t")
            body = [atom] + pattern_atoms(variables)
            body.append(Neq(variables[y], Const(value)))
            query = ConjunctiveQuery(
                tuple(atom.terms), body, name=f"q[{self.name}.const.{y}]")
            constraints.append(ContainmentConstraint(
                query, Projection.empty(),
                name=f"{self.name}.const.{y}"))
        return constraints

    def __repr__(self) -> str:
        phi = ", ".join(f"{a}={v!r}" for a, v in self.lhs_pattern.items())
        psi = ", ".join(f"{a}={v!r}" for a, v in self.rhs_pattern.items())
        pattern = f" | φ({phi}) ψ({psi})" if (phi or psi) else ""
        return (f"{self.relation}: {', '.join(self.lhs) or '∅'} → "
                f"{', '.join(self.rhs)}{pattern}")


class FunctionalDependency(ConditionalFunctionalDependency):
    """A traditional FD ``R: X → Y`` (pattern-free CFD)."""

    def __init__(self, relation: str, lhs: Iterable[str],
                 rhs: Iterable[str], name: str = "fd") -> None:
        super().__init__(relation, lhs, rhs, name=name)
