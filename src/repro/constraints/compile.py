"""Proposition 2.1: compiling integrity constraints to containment
constraints.

One uniform entry point, :func:`compile_to_containment`, turns any supported
integrity constraint (denial constraint, FD, CFD, CIND, IND) into a list of
:class:`~repro.constraints.containment.ContainmentConstraint` objects, so
that a single set ``V`` of CCs enforces both relative completeness and data
consistency ("there is no need to overburden the notion with a set of
integrity constraints").

Denial constraints and CFDs compile to CCs in CQ; CINDs need FO (and hence
push the exact deciders into the undecidable regime — the paper makes the
same observation implicitly via Theorems 3.1(2) and 4.1(2)).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.constraints.cfd import ConditionalFunctionalDependency
from repro.constraints.cind import ConditionalInclusionDependency
from repro.constraints.containment import ContainmentConstraint
from repro.constraints.denial import DenialConstraint
from repro.constraints.ind import InclusionDependency
from repro.errors import ConstraintError
from repro.relational.schema import DatabaseSchema

__all__ = ["compile_to_containment", "compile_all"]


def compile_to_containment(constraint: Any, schema: DatabaseSchema,
                           master_schema: DatabaseSchema | None = None,
                           ) -> list[ContainmentConstraint]:
    """Compile one integrity constraint into CCs (Proposition 2.1).

    ``ContainmentConstraint`` objects pass through unchanged, so mixed lists
    of CCs and integrity constraints can be compiled uniformly.
    """
    if isinstance(constraint, ContainmentConstraint):
        return [constraint]
    if isinstance(constraint, DenialConstraint):
        return [constraint.to_containment_constraint()]
    if isinstance(constraint, ConditionalFunctionalDependency):
        return constraint.to_containment_constraints(schema)
    if isinstance(constraint, ConditionalInclusionDependency):
        return [constraint.to_containment_constraint(schema)]
    if isinstance(constraint, InclusionDependency):
        if master_schema is None:
            raise ConstraintError(
                "compiling an IND requires the master schema")
        return [constraint.to_containment_constraint(schema, master_schema)]
    raise ConstraintError(
        f"cannot compile {type(constraint).__name__} to containment "
        f"constraints")


def compile_all(constraints: Iterable[Any], schema: DatabaseSchema,
                master_schema: DatabaseSchema | None = None,
                ) -> list[ContainmentConstraint]:
    """Compile a mixed sequence of constraints into one flat list of CCs."""
    compiled: list[ContainmentConstraint] = []
    for constraint in constraints:
        compiled.extend(
            compile_to_containment(constraint, schema, master_schema))
    return compiled
