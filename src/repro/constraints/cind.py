"""Conditional inclusion dependencies (CINDs).

A CIND extends an IND ``R1[X] ⊆ R2[X']`` with constant patterns:
``∀x̄ȳ1z̄1 (R1(x̄, ȳ1, z̄1) ∧ φ(ȳ1) → ∃ȳ2z̄2 (R2(x̄, ȳ2, z̄2) ∧ ψ(ȳ2)))``
(Section 2.2, following Bravo et al. 2007).

Proposition 2.1(c) compiles a CIND to a single CC **in FO** with empty
target; FO is required because of the negated existential.  Both relations
live in the *database* schema here — a CIND is an intra-database integrity
constraint, unlike an IND-to-master CC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.errors import ConstraintError
from repro.queries.atoms import Eq, RelAtom
from repro.queries.fo import (FOQuery, fo_and, fo_atom, fo_exists,
                              fo_not)
from repro.queries.terms import Const, Var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = ["ConditionalInclusionDependency"]


@dataclass(frozen=True)
class ConditionalInclusionDependency:
    """``(R1[X; lhs_pattern] ⊆ R2[Y; rhs_pattern])``.

    *lhs_attributes* of *source* must match *rhs_attributes* of *target*
    position-wise; patterns map further attributes to required constants.
    """

    source: str
    lhs_attributes: tuple[str, ...]
    target: str
    rhs_attributes: tuple[str, ...]
    lhs_pattern: Mapping[str, Any] = field(default_factory=dict)
    rhs_pattern: Mapping[str, Any] = field(default_factory=dict)
    name: str = "cind"

    def __init__(self, source: str, lhs_attributes: Iterable[str],
                 target: str, rhs_attributes: Iterable[str],
                 lhs_pattern: Mapping[str, Any] | None = None,
                 rhs_pattern: Mapping[str, Any] | None = None,
                 name: str = "cind") -> None:
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "lhs_attributes", tuple(lhs_attributes))
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "rhs_attributes", tuple(rhs_attributes))
        object.__setattr__(self, "lhs_pattern", dict(lhs_pattern or {}))
        object.__setattr__(self, "rhs_pattern", dict(rhs_pattern or {}))
        object.__setattr__(self, "name", name)
        if len(self.lhs_attributes) != len(self.rhs_attributes):
            raise ConstraintError(
                f"CIND {name!r}: attribute lists must have equal length")
        overlap = set(self.lhs_pattern) & set(self.lhs_attributes)
        if overlap:
            raise ConstraintError(
                f"CIND {name!r}: pattern attributes {sorted(overlap)} "
                f"overlap the correspondence attributes")

    # ------------------------------------------------------------------
    # Direct semantics
    # ------------------------------------------------------------------

    def is_satisfied(self, database: Instance) -> bool:
        """Direct CIND semantics over *database*."""
        source = database.schema.relation(self.source)
        target = database.schema.relation(self.target)
        src_pos = {a: source.position_of(a)
                   for a in self.lhs_attributes}
        src_pat_pos = {a: source.position_of(a) for a in self.lhs_pattern}
        tgt_pos = {a: target.position_of(a) for a in self.rhs_attributes}
        tgt_pat_pos = {a: target.position_of(a) for a in self.rhs_pattern}

        matching_targets: set[tuple] = set()
        for row in database.relation(self.target):
            if all(row[tgt_pat_pos[a]] == v
                   for a, v in self.rhs_pattern.items()):
                matching_targets.add(
                    tuple(row[tgt_pos[a]] for a in self.rhs_attributes))

        for row in database.relation(self.source):
            if not all(row[src_pat_pos[a]] == v
                       for a, v in self.lhs_pattern.items()):
                continue
            key = tuple(row[src_pos[a]] for a in self.lhs_attributes)
            if key not in matching_targets:
                return False
        return True

    # ------------------------------------------------------------------
    # Proposition 2.1(c): compilation to a CC in FO
    # ------------------------------------------------------------------

    def to_containment_constraint(
            self, schema: DatabaseSchema) -> ContainmentConstraint:
        """The FO CC ``q ⊆ ∅`` with
        ``q = ∃t1 (R1(t1) ∧ φ(t1) ∧ ∀t2 (¬R2(t2 matching) ∨ ¬ψ(t2)))``.

        We emit the Boolean (fully quantified) form of the proof's query:
        emptiness of the two versions coincides, and the Boolean form is
        cheaper to evaluate.
        """
        source = schema.relation(self.source)
        target = schema.relation(self.target)
        src_vars = {a: Var(f"{self.name}.s.{a}")
                    for a in source.attribute_names}
        tgt_vars = {a: Var(f"{self.name}.t.{a}")
                    for a in target.attribute_names}
        # Share variables across the correspondence attributes x̄.
        for src_attr, tgt_attr in zip(self.lhs_attributes,
                                      self.rhs_attributes):
            tgt_vars[tgt_attr] = src_vars[src_attr]

        src_atom = fo_atom(RelAtom(
            self.source,
            [src_vars[a] for a in source.attribute_names]))
        lhs_pattern = [
            fo_atom(Eq(src_vars[a], Const(v)))
            for a, v in self.lhs_pattern.items()]

        tgt_atom = fo_atom(RelAtom(
            self.target,
            [tgt_vars[a] for a in target.attribute_names]))
        rhs_pattern = [
            fo_atom(Eq(tgt_vars[a], Const(v)))
            for a, v in self.rhs_pattern.items()]
        matched = (fo_and(tgt_atom, *rhs_pattern)
                   if rhs_pattern else tgt_atom)

        # Bound variables of the inner quantifier: all target columns that
        # are not tied to source columns.
        tied = set(self.rhs_attributes)
        inner_bound = [tgt_vars[a] for a in target.attribute_names
                       if a not in tied]

        no_witness = fo_not(fo_exists(inner_bound, matched)) \
            if inner_bound else fo_not(matched)
        body_parts = [src_atom] + lhs_pattern + [no_witness]
        body = fo_and(*body_parts) if len(body_parts) > 1 else body_parts[0]
        outer_bound = list(dict.fromkeys(src_vars.values()))
        formula = fo_exists(outer_bound, body)
        query = FOQuery((), formula, name=f"q[{self.name}]")
        return ContainmentConstraint(query, Projection.empty(),
                                     name=self.name)

    def __repr__(self) -> str:
        phi = ", ".join(f"{a}={v!r}" for a, v in self.lhs_pattern.items())
        psi = ", ".join(f"{a}={v!r}" for a, v in self.rhs_pattern.items())
        lhs = f"{self.source}[{', '.join(self.lhs_attributes)}"
        lhs += f"; {phi}]" if phi else "]"
        rhs = f"{self.target}[{', '.join(self.rhs_attributes)}"
        rhs += f"; {psi}]" if psi else "]"
        return f"{lhs} ⊆ {rhs}"
