"""Inclusion dependencies (INDs) from the database to master data.

An IND is the special case of a CC whose left-hand query is itself a
projection: ``π_X(R) ⊆ π_Y(Rm)`` (Section 2.1: "a CC ``qv(R) ⊆ p(Rm)`` is an
inclusion dependency when ``qv`` is also a projection query").

The class stores attribute *names* for readability and compiles to a
:class:`~repro.constraints.containment.ContainmentConstraint` whose query is
the corresponding CQ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.errors import ConstraintError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.atoms import RelAtom
from repro.queries.terms import Var
from repro.relational.schema import DatabaseSchema

__all__ = ["InclusionDependency"]


@dataclass(frozen=True)
class InclusionDependency:
    """``source[source_attributes] ⊆ target[target_attributes]``.

    *source* is a relation of the database schema; *target* a relation of
    the master schema (or ``None`` for the empty target ``∅``).
    """

    source: str
    source_attributes: tuple[str, ...]
    target: str | None
    target_attributes: tuple[str, ...] = ()
    name: str = "ind"

    def __init__(self, source: str, source_attributes: Iterable[str],
                 target: str | None,
                 target_attributes: Iterable[str] = (),
                 name: str = "ind") -> None:
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "source_attributes",
                           tuple(source_attributes))
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "target_attributes",
                           tuple(target_attributes))
        object.__setattr__(self, "name", name)
        if target is not None and (len(self.source_attributes)
                                   != len(self.target_attributes)):
            raise ConstraintError(
                f"IND {name!r}: attribute lists must have equal length, "
                f"got {self.source_attributes} and {self.target_attributes}")

    def to_containment_constraint(
            self, schema: DatabaseSchema,
            master_schema: DatabaseSchema) -> ContainmentConstraint:
        """Compile into a CC whose query is a projection CQ."""
        relation = schema.relation(self.source)
        variables = tuple(
            Var(f"{self.name}.{attr}") for attr in relation.attribute_names)
        head = tuple(
            variables[relation.position_of(attr)]
            for attr in self.source_attributes)
        query = ConjunctiveQuery(
            head, [RelAtom(self.source, variables)], name=f"q[{self.name}]")
        if self.target is None:
            projection = Projection.empty()
        else:
            master_relation = master_schema.relation(self.target)
            projection = Projection.on(
                self.target,
                (master_relation.position_of(attr)
                 for attr in self.target_attributes))
        cc = ContainmentConstraint(query, projection, name=self.name)
        cc.validate(schema, master_schema)
        return cc

    def __repr__(self) -> str:
        lhs = f"{self.source}[{', '.join(self.source_attributes)}]"
        if self.target is None:
            return f"{lhs} ⊆ ∅"
        rhs = f"{self.target}[{', '.join(self.target_attributes)}]"
        return f"{lhs} ⊆ {rhs}"
