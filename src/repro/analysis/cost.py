"""Static cost model: predicted governor ticks before a tick is spent.

The decider search spaces are knowable up front.  RCDP (Theorem 4.2's
small-model argument, made operational in :mod:`repro.core.valuations`)
enumerates the valid valuations of every query tableau over

    ``adom(y) = Adom ∪ {fresh(y)}``          (infinite-domain ``y``)
    ``adom(y) = dom(y)``                     (finite-domain ``y``),

so the raw search space of a tableau is ``Π_y |adom(y)|`` — the
``|Adom|^k`` valuation-space formula.  Two refinements make the estimate
tight enough to gate on (within 4× on every shipped bundle; exact on the
CRM corpus):

* **IND caps.**  `split_ind_constraints` compiles IND constraints into a
  row filter that prunes the DFS at the first tableau row leaving the
  master projection.  For a tableau row over ``R`` covered by an IND
  ``R[cols] ⊆ p``, the variables at ``cols`` jointly range over at most
  the rows of ``p(Dm)`` that agree with the row's constants — a *joint*
  cap replacing the product of the per-variable counts.  Caps over
  disjoint variable groups are applied greedily (smallest first).
* **Inequality discount.**  Each ``x ≠ t`` check removes roughly one of
  ``m`` candidates, scaling the *point* estimate by ``(m − 1)/m``; the
  upper bound is left untouched.

Estimates are intervals (`Interval`), folded into a `CostEstimate` whose
``predicted_ticks`` mirror the governor's per-kind ledger.  Consumers:
``repro lint --explain-cost``, the CLI preflight advisory,
`ExecutionGovernor.suggest_budget`, and `repro.parallel.suggest_workers`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.queries.terms import Const, Var
from repro.relational.instance import Instance

__all__ = [
    "Interval",
    "DisjunctCost",
    "StepEstimate",
    "PlanEstimate",
    "CostEstimate",
    "estimate_plan",
    "estimate_decision",
    "suggested_budget",
]

# Beyond this many candidate combinations the RCQP unit enumeration is
# summarised, not expanded (the bound stays sound; the note says so).
_MAX_UNIT_SUBSETS = 4096


@dataclass(frozen=True, slots=True)
class Interval:
    """An integer interval ``[lo, hi]``; ``hi=None`` means unbounded."""

    lo: int
    hi: int | None

    @classmethod
    def point(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def zero(cls) -> "Interval":
        return cls(0, 0)

    def __add__(self, other: "Interval") -> "Interval":
        hi = (None if self.hi is None or other.hi is None
              else self.hi + other.hi)
        return Interval(self.lo + other.lo, hi)

    def __mul__(self, other: "Interval") -> "Interval":
        if self.hi is None or other.hi is None:
            hi = None if (self.hi != 0 and other.hi != 0) else 0
        else:
            hi = self.hi * other.hi
        return Interval(self.lo * other.lo, hi)

    def scaled(self, factor: int) -> "Interval":
        return Interval(self.lo * factor,
                        None if self.hi is None else self.hi * factor)

    def join(self, other: "Interval") -> "Interval":
        hi = (None if self.hi is None or other.hi is None
              else max(self.hi, other.hi))
        return Interval(min(self.lo, other.lo), hi)

    def render(self) -> str:
        if self.hi is None:
            return f"[{self.lo}, ∞)"
        if self.lo == self.hi:
            return str(self.lo)
        return f"[{self.lo}, {self.hi}]"

    def to_dict(self) -> dict[str, int | None]:
        return {"lo": self.lo, "hi": self.hi}


@dataclass(frozen=True, slots=True)
class DisjunctCost:
    """Valuation-space estimate for one query disjunct's tableau."""

    disjunct: str
    variables: tuple[tuple[str, int], ...]  # (name, |adom(y)|) per variable
    raw_product: int
    predicted: int
    bound: Interval
    caps: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "disjunct": self.disjunct,
            "variables": [list(v) for v in self.variables],
            "raw_product": self.raw_product,
            "predicted": self.predicted,
            "bound": self.bound.to_dict(),
            "caps": list(self.caps),
        }


@dataclass(frozen=True, slots=True)
class StepEstimate:
    """Interval estimate for one `CompiledPlan` step."""

    relation: str
    rows: int
    keyed: bool
    bindings: Interval  # bindings alive *after* this step
    probes: Interval    # candidate rows examined at this step

    def to_dict(self) -> dict[str, Any]:
        return {"relation": self.relation, "rows": self.rows,
                "keyed": self.keyed, "bindings": self.bindings.to_dict(),
                "probes": self.probes.to_dict()}


@dataclass(frozen=True, slots=True)
class PlanEstimate:
    """Interval estimate for a whole compiled plan."""

    query: str
    steps: tuple[StepEstimate, ...]
    result: Interval
    work: Interval

    def to_dict(self) -> dict[str, Any]:
        return {"query": self.query, "result": self.result.to_dict(),
                "work": self.work.to_dict(),
                "steps": [s.to_dict() for s in self.steps]}


@dataclass(frozen=True)
class CostEstimate:
    """Per-decision predicted governor ticks with provenance.

    ``predicted_ticks`` maps tick kinds (the governor ledger's keys —
    ``"valuations"``, ``"units"``, ``"candidate_sets"``) to point
    estimates; ``intervals`` carries the matching sound bounds.  The
    point estimates are exact for full-enumeration RCDP decisions on
    IND/CC scenarios (the bench_cost gate); early-exiting decisions
    (INCOMPLETE certificates, E2/E6 bounding sets) stop earlier, which
    the bounds' ``lo = 0`` reflects.
    """

    procedure: str
    predicted_ticks: Mapping[str, int]
    intervals: Mapping[str, Interval]
    adom_size: int
    disjuncts: tuple[DisjunctCost, ...] = ()
    plans: tuple[PlanEstimate, ...] = ()
    notes: tuple[str, ...] = field(default=())

    @property
    def total_predicted(self) -> int:
        return sum(self.predicted_ticks.values())

    @property
    def dominant_phase(self) -> str:
        if not self.predicted_ticks:
            return "none"
        kind = max(sorted(self.predicted_ticks),
                   key=lambda k: self.predicted_ticks[k])
        return {
            "valuations": "enumerate_valuations",
            "units": "enumerate_units",
            "candidate_sets": "enumerate_candidate_sets",
        }.get(kind, kind)

    def to_dict(self) -> dict[str, Any]:
        return {
            "procedure": self.procedure,
            "predicted_ticks": dict(self.predicted_ticks),
            "intervals": {k: v.to_dict()
                          for k, v in self.intervals.items()},
            "total_predicted": self.total_predicted,
            "dominant_phase": self.dominant_phase,
            "adom_size": self.adom_size,
            "disjuncts": [d.to_dict() for d in self.disjuncts],
            "plans": [p.to_dict() for p in self.plans],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"cost estimate ({self.procedure}): "
                 f"~{self.total_predicted} ticks, dominant phase "
                 f"{self.dominant_phase}, |Adom| = {self.adom_size}"]
        for kind in sorted(self.predicted_ticks):
            interval = self.intervals.get(kind, Interval.point(
                self.predicted_ticks[kind]))
            lines.append(f"  {kind}: ~{self.predicted_ticks[kind]} "
                         f"in {interval.render()}")
        for disjunct in self.disjuncts:
            terms = " × ".join(f"|adom({name})|={count}"
                               for name, count in disjunct.variables)
            lines.append(f"  {disjunct.disjunct}: {terms or '1'} "
                         f"= {disjunct.raw_product}"
                         + (f", capped to {disjunct.predicted}"
                            if disjunct.predicted != disjunct.raw_product
                            else ""))
            for cap in disjunct.caps:
                lines.append(f"    cap: {cap}")
        for plan in self.plans:
            lines.append(f"  plan {plan.query}: result "
                         f"{plan.result.render()}, work "
                         f"{plan.work.render()}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def suggested_budget(estimate: "CostEstimate | int", *,
                     safety: int = 4) -> int:
    """A governor budget that admits the full predicted enumeration.

    *estimate* is a `CostEstimate` or a plain predicted tick count.
    ``safety`` multiplies the point estimate so decisions whose actuals
    land within the bench-gated 4× envelope still finish.
    """
    predicted = int(getattr(estimate, "total_predicted", estimate))
    return max(1, predicted) * max(1, safety)


# --------------------------------------------------------------------------
# Plan-level interval estimation
# --------------------------------------------------------------------------

def estimate_plan(plan: Any, database: Instance) -> PlanEstimate:
    """Interval estimate over a `CompiledPlan`'s steps.

    Bindings start at ``[1, 1]`` (the empty binding).  A keyed step with
    residual outputs can match anywhere between 0 and every row; a fully
    bound step (no outputs) is a membership probe matching at most once; an
    unkeyed step is a scan multiplying bindings by the relation size.
    ``work`` accumulates candidate-row examinations — the quantity the
    engine's ``plan_rows`` loops actually spend.
    """
    bindings = Interval.point(1)
    work = Interval.zero()
    steps: list[StepEstimate] = []
    if not getattr(plan, "satisfiable", True):
        return PlanEstimate(query=plan.query.name, steps=(),
                            result=Interval.zero(), work=Interval.zero())
    for step in plan.steps:
        rows = len(database.relation(step.relation)) \
            if step.relation in database.schema.relations else 0
        keyed = bool(step.key_positions)
        if not keyed:
            fanout = Interval(0, rows)
        elif not step.outputs:
            fanout = Interval(0, min(1, rows))
        else:
            fanout = Interval(0, rows)
        probes = bindings * Interval.point(rows) if not keyed \
            else bindings * Interval(0, rows)
        bindings = bindings * fanout
        work = work + probes
        steps.append(StepEstimate(relation=step.relation, rows=rows,
                                  keyed=keyed, bindings=bindings,
                                  probes=probes))
    return PlanEstimate(query=plan.query.name, steps=tuple(steps),
                        result=bindings, work=work)


# --------------------------------------------------------------------------
# Valuation-space estimation (the |Adom|^k formula with IND caps)
# --------------------------------------------------------------------------

def _variable_counts(tableau: Any, adom: Any) -> dict[Var, int]:
    """``|adom(y)|`` per tableau variable under the RCDP ``fresh="own"``
    policy: the finite domain's size, else the shared constants plus the
    variable's dedicated fresh value."""
    counts: dict[Var, int] = {}
    shared = len(adom.constants)
    for variable in tableau.ordered_variables():
        if tableau.has_finite_domain(variable):
            counts[variable] = len(
                adom.candidates_for(tableau, variable, fresh="own"))
        else:
            counts[variable] = shared + 1
    return counts


def _ind_caps(tableau: Any, counts: Mapping[Var, int],
              constraints: Sequence[ContainmentConstraint],
              master: Instance,
              ) -> tuple[list[tuple[frozenset, int, str]], bool]:
    """Joint caps induced by IND row filters on this tableau.

    Returns ``(caps, viable)`` where each cap is ``(variable group, joint
    count, description)`` and *viable* is False when a fully ground row
    can never pass its filter (zero valid valuations).
    """
    caps: list[tuple[frozenset, int, str]] = []
    viable = True
    for constraint in constraints:
        if not constraint.is_ind():
            continue
        relation, columns = constraint.ind_source()
        try:
            allowed = constraint.projection.evaluate(master)
        except Exception:
            continue  # schema mismatch: RC101's business
        for row in tableau.rows:
            if row.relation != relation:
                continue
            selected = [row.terms[c] for c in columns]
            group_vars: list[Var] = []
            positions: dict[Var, list[int]] = {}
            for j, term in enumerate(selected):
                if isinstance(term, Var):
                    if term not in positions:
                        group_vars.append(term)
                    positions.setdefault(term, []).append(j)
            matching: set[tuple] = set()
            for candidate in allowed:
                ok = True
                for j, term in enumerate(selected):
                    if isinstance(term, Const) and \
                            candidate[j] != term.value:
                        ok = False
                        break
                if not ok:
                    continue
                for var, places in positions.items():
                    first = candidate[places[0]]
                    if any(candidate[p] != first for p in places[1:]):
                        ok = False
                        break
                if ok:
                    matching.add(tuple(
                        candidate[positions[v][0]] for v in group_vars))
            if not group_vars:
                if not matching:
                    viable = False
                continue
            raw = math.prod(counts.get(v, 1) for v in group_vars)
            joint = min(len(matching), raw)
            names = ", ".join(v.name for v in group_vars)
            caps.append((frozenset(group_vars), joint,
                         f"{constraint.name}: ({names}) jointly range "
                         f"over ≤ {joint} rows of the master projection "
                         f"(raw {raw})"))
    return caps, viable


def _disjunct_cost(tableau: Any, adom: Any,
                   constraints: Sequence[ContainmentConstraint],
                   master: Instance | None) -> DisjunctCost:
    counts = _variable_counts(tableau, adom)
    ordered = list(tableau.ordered_variables())
    raw = math.prod(counts[v] for v in ordered) if ordered else 1
    caps: list[tuple[frozenset, int, str]] = []
    viable = True
    if master is not None:
        caps, viable = _ind_caps(tableau, counts, constraints, master)
    if not viable:
        return DisjunctCost(
            disjunct=tableau.query.name,
            variables=tuple((v.name, counts[v]) for v in ordered),
            raw_product=raw, predicted=0, bound=Interval.zero(),
            caps=("a ground tableau row leaves the master projection; "
                  "no valuation survives the IND filter",))
    assigned: set[Var] = set()
    capped = 1
    applied: list[str] = []
    for group, joint, description in sorted(
            caps, key=lambda c: (c[1], sorted(v.name for v in c[0]))):
        if group & assigned:
            continue
        capped *= joint
        assigned |= group
        applied.append(description)
    for variable in ordered:
        if variable not in assigned:
            capped *= counts[variable]
    predicted = capped
    for left, right in tableau.inequalities:
        m = min((counts[t] for t in (left, right)
                 if isinstance(t, Var) and t in counts), default=0)
        if m > 1:
            predicted = predicted * (m - 1) // m
    pruned = bool(applied) or bool(tableau.inequalities)
    bound = Interval(0 if pruned else capped, capped)
    return DisjunctCost(
        disjunct=tableau.query.name,
        variables=tuple((v.name, counts[v]) for v in ordered),
        raw_product=raw, predicted=predicted, bound=bound,
        caps=tuple(applied))


def _search_space(query: Any, database: Instance, master: Instance,
                  constraints: Sequence[ContainmentConstraint],
                  ) -> tuple[list[DisjunctCost], int]:
    """Per-disjunct costs plus ``|Adom|``, mirroring ``_prepare_search``."""
    from repro.core.valuations import ActiveDomain
    from repro.queries.tableau import Tableau

    disjuncts = query.to_cq_disjuncts()
    tableaux = [Tableau(d, database.schema) for d in disjuncts]
    satisfiable = [t for t in tableaux if t.satisfiable]
    adom = ActiveDomain.build(
        instances=(database, master),
        queries=[query] + [c.query for c in constraints],
        tableaux=satisfiable)
    costs = [_disjunct_cost(t, adom, constraints, master)
             for t in satisfiable]
    return costs, len(adom.constants)


def _rcqp_space(query: Any, master: Instance,
                constraints: Sequence[ContainmentConstraint],
                schema: Any, *, max_rows_per_unit: int,
                max_valuation_set_size: int,
                ) -> tuple[dict[str, Interval], dict[str, int],
                           list[DisjunctCost], int, list[str]]:
    """Upper-bound the three RCQP tick kinds.

    ``units`` follows ``_enumerate_units`` exactly (one tick per candidate
    partial valuation); the bounding-set search exits at the first
    bounding candidate, so ``candidate_sets`` and the per-candidate
    ``valuations`` re-enumeration are genuine worst cases with ``lo = 0``.
    """
    from itertools import combinations

    from repro.core.valuations import ActiveDomain
    from repro.queries.tableau import Tableau

    notes: list[str] = []
    q_tableaux = [t for t in (Tableau(d, schema)
                              for d in query.to_cq_disjuncts())
                  if t.satisfiable]
    cc_tableaux = [t for c in constraints
                   for t in (Tableau(d, schema)
                             for d in c.query.to_cq_disjuncts())
                   if t.satisfiable]
    adom = ActiveDomain.build(
        instances=(master,),
        queries=[query] + [c.query for c in constraints],
        tableaux=q_tableaux + cc_tableaux)
    # Phase E3: one pass over the query valuation space per disjunct.
    disjunct_costs = [_disjunct_cost(t, adom, (), None)
                      for t in q_tableaux]
    e3 = sum(d.predicted for d in disjunct_costs)
    units = 0
    truncated = False
    for tableau in cc_tableaux:
        counts = _variable_counts(tableau, adom)
        rows = tableau.rows
        max_rows = min(max_rows_per_unit, len(rows))
        subsets = 0
        for size in range(1, max_rows + 1):
            for subset in combinations(range(len(rows)), size):
                subsets += 1
                if subsets > _MAX_UNIT_SUBSETS:
                    truncated = True
                    break
                variables = {v for i in subset
                             for v in rows[i].variables()}
                units += math.prod(counts[v] for v in variables) \
                    if variables else 1
            if truncated:
                break
        if truncated:
            units *= 2  # sound-ish headroom; flagged in the notes
            notes.append(
                f"unit enumeration truncated after {_MAX_UNIT_SUBSETS} "
                f"row subsets; the units bound is doubled instead")
            break
    max_size = min(max_valuation_set_size, units)
    sets_hi = sum(math.comb(units, size)
                  for size in range(0, max_size + 1))
    per_set_valuations = sum(
        math.prod(counts[v] for v in t.ordered_variables())
        for t in q_tableaux
        for counts in (_variable_counts(t, adom),))
    intervals = {
        "valuations": Interval(0, e3 + sets_hi * per_set_valuations),
        "units": Interval(0, units),
        "candidate_sets": Interval(0, sets_hi),
    }
    predicted = {
        "valuations": e3 + per_set_valuations,
        "units": units,
        "candidate_sets": min(sets_hi, units + 1),
    }
    notes.append(
        "the E2/E6 search exits at the first bounding candidate set; "
        "points assume an early (size ≤ 1) exit, the bounds the full "
        "sweep")
    return intervals, predicted, disjunct_costs, len(adom.constants), notes


def estimate_decision(procedure: str, query: Any,
                      database: Instance | None,
                      master: Instance,
                      constraints: Sequence[ContainmentConstraint] = (), *,
                      schema: Any = None,
                      with_plans: bool = True,
                      max_rows_per_unit: int = 1,
                      max_valuation_set_size: int = 2) -> CostEstimate:
    """Predict the governor ticks of one decision.

    *procedure* is ``"rcdp"`` (may exit at the first INCOMPLETE
    certificate), ``"missing"`` (full enumeration — the bench-gated
    case), or ``"rcqp"`` (no database; *schema* required).
    """
    notes: list[str] = []
    if procedure == "rcqp":
        if schema is None:
            raise ValueError("estimate_decision('rcqp', ...) needs schema=")
        intervals, predicted, costs, adom_size, extra = _rcqp_space(
            query, master, constraints, schema,
            max_rows_per_unit=max_rows_per_unit,
            max_valuation_set_size=max_valuation_set_size)
        notes.extend(extra)
        return CostEstimate(procedure=procedure,
                            predicted_ticks=predicted,
                            intervals=intervals, adom_size=adom_size,
                            disjuncts=tuple(costs), notes=tuple(notes))
    if database is None:
        raise ValueError(
            f"estimate_decision({procedure!r}, ...) needs a database")
    costs, adom_size = _search_space(query, database, master, constraints)
    total = sum(c.predicted for c in costs)
    bound = Interval.zero()
    for cost in costs:
        bound = bound + cost.bound
    if procedure == "rcdp":
        bound = Interval(0, bound.hi)
        notes.append(
            "decide_rcdp exits at the first INCOMPLETE certificate; the "
            "point predicts the full (COMPLETE-verdict) enumeration")
    plans: list[PlanEstimate] = []
    if with_plans:
        from repro.engine.plan import compile_plan
        for disjunct in query.to_cq_disjuncts():
            try:
                plans.append(estimate_plan(
                    compile_plan(disjunct), database))
            except Exception:
                continue  # unplannable disjuncts are RC002's business
    return CostEstimate(procedure=procedure,
                        predicted_ticks={"valuations": total},
                        intervals={"valuations": bound},
                        adom_size=adom_size, disjuncts=tuple(costs),
                        plans=tuple(plans), notes=tuple(notes))
