"""Plan linting: walk compiled plans for avoidable evaluation cost.

The engine compiles every CQ body once (:mod:`repro.engine.plan`); the
shape of that plan is known statically, and three anti-patterns are worth
surfacing before a decision spends its budget on them:

* **Cross products** — a step with no index key rescans its whole
  relation per pending binding.  When the body's join graph is connected
  the greedy order always finds a shared variable, so a mid-plan scan
  means the body is genuinely disconnected (`RC401`).
* **Post-filter equalities** — ``x = y`` / ``x = 'c'`` survive as
  comparison checks instead of being folded into the atom terms, so rows
  are enumerated first and discarded after (`RC402`).
* **Missed constant keys** — the greedy order seeds on shared variables
  only; when the chosen first atom scans while another atom carries
  constants, starting from the selective atom turns the scan into an
  index probe (`RC403`, with a reorder fix-it).

These are *findings*, not diagnostics: :mod:`repro.analysis.flow` wraps
them into RC4xx `Diagnostic`s with spans into the bundle sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.queries.atoms import Eq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const

__all__ = ["PlanFinding", "lint_plan"]


@dataclass(frozen=True, slots=True)
class PlanFinding:
    """One plan-shape finding, pre-diagnostic."""

    kind: str  # "cross-product" | "post-filter-equality" | "unkeyed-start"
    message: str
    atom_index: int | None = None
    suggestion: str | None = None


def _render_atom(atom: object) -> str:
    return repr(atom)


def lint_plan(query: ConjunctiveQuery) -> list[PlanFinding]:
    """Findings for the compiled plan of one CQ disjunct."""
    from repro.engine.plan import compile_plan

    plan = compile_plan(query)
    findings: list[PlanFinding] = []
    if not plan.satisfiable or not plan.steps:
        return findings
    atoms = query.relation_atoms

    components = plan.join_components()
    if len(components) > 1:
        rendered = " | ".join(
            "{" + ", ".join(atoms[i].relation for i in sorted(c)) + "}"
            for c in components)
        findings.append(PlanFinding(
            kind="cross-product",
            message=(f"body joins {len(components)} disconnected atom "
                     f"groups ({rendered}); every group multiplies the "
                     f"bindings of the others"),
            atom_index=min(components[1]),
            suggestion=("split the disjunct into independent queries, or "
                        "add a join variable linking the groups")))

    for step in plan.steps:
        for comparison in step.comparisons:
            if isinstance(comparison, Eq):
                findings.append(PlanFinding(
                    kind="post-filter-equality",
                    message=(f"equality {comparison!r} is checked as a "
                             f"post-filter after step "
                             f"{step.relation!r} binds its variables"),
                    atom_index=step.atom_index,
                    suggestion=("substitute the equality into the atom "
                                "terms so the index key prunes before "
                                "enumeration")))

    first = plan.steps[0]
    if first.is_scan:
        keyed_alternatives = [
            index for index, atom in enumerate(atoms)
            if index != first.atom_index
            and any(isinstance(t, Const) for t in atom.terms)]
        for index in keyed_alternatives:
            replan = compile_plan(query, first_atom=index)
            if replan.steps and replan.steps[0].key_positions:
                findings.append(PlanFinding(
                    kind="unkeyed-start",
                    message=(f"the plan opens with a full scan of "
                             f"{first.relation!r} although "
                             f"{atoms[index].relation!r} carries "
                             f"constants"),
                    atom_index=first.atom_index,
                    suggestion=(f"start the join from "
                                f"{_render_atom(atoms[index])} (atom "
                                f"{index}): its constants become the "
                                f"index key")))
                break
    return findings
