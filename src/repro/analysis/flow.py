"""The whole-scenario flow pass: RC3xx interaction and RC4xx cost rules.

The per-object rules (RC0xx–RC2xx) judge each query and constraint in
isolation.  The rules here look at the scenario as a whole:

* ``RC301`` *divergent-chase* — the constraint-interaction graph
  (:mod:`repro.analysis.interaction`) has a cycle through an existential
  edge: chasing the constraints may never terminate and the RCQP unit
  enumeration loses its small-model guarantee.  The offending cycle is
  rendered in the message.
* ``RC302`` *unreachable-constraint* — a constraint whose every disjunct
  ranges over a relation forced empty by a denial IND can never fire
  against the given master data; `drop_inapplicable` removes it without
  changing any verdict.
* ``RC303`` *dead-constraint-pair* — a constraint whose query is
  contained in a denial constraint's query (Sagiv–Yannakakis over the
  existing tableau machinery) can never fire either: the denial already
  forces its premise empty on every legal extension.
* ``RC401``/``RC402``/``RC403`` — plan-shape lints over the compiled
  plans of every CQ disjunct (:mod:`repro.analysis.planlint`): inherent
  cross products, equalities surviving as post-filters, and scans that a
  reorder would turn into index probes (with a fix-it).
* ``RC404`` *explosive-search-space* — the static cost model
  (:mod:`repro.analysis.cost`) predicts the decision's governor ticks;
  past a threshold the estimate is surfaced with a suggested budget and
  worker count.

All flow rules are registered with ``cost="flow"`` and ``decider=False``:
they run only when the flow pass is requested (``repro lint``, or
``analyze(..., flow=True)``) and *never* inside the deciders' fast-fail
pass — decider verdicts, witnesses, and statistics are bit-identical with
the pass enabled or disabled.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.analysis.diagnostics import Diagnostic, Fixit, Severity
from repro.analysis.interaction import (ChaseClass, build_interaction_graph,
                                        drop_inapplicable,
                                        inapplicable_constraints)
from repro.analysis.rules import (DECIDABLE_LANGUAGES, RuleContext, _diag,
                                  lint_rule)
from repro.errors import ReproError
from repro.queries.containment import is_ucq_contained_in

__all__ = ["drop_inapplicable", "RC404_TICK_THRESHOLD"]

#: Predicted total ticks above which RC404 surfaces the cost estimate.
RC404_TICK_THRESHOLD = 100_000


def _flow_ready(ctx: RuleContext) -> bool:
    """The structural prerequisites every flow rule shares."""
    return (ctx.schema is not None and ctx.master_schema is not None
            and not ctx.parse_failures)


def _plannable_disjuncts(ctx: RuleContext) -> Iterator[tuple[str, int, Any]]:
    """Every CQ disjunct the engine will compile, with its span address."""
    if (ctx.query is not None and ctx.query_schema_ok
            and getattr(ctx.query, "language", None)
            in DECIDABLE_LANGUAGES):
        disjuncts = ctx.cq_disjuncts() or []
        for index, disjunct in enumerate(disjuncts):
            yield "query", index, disjunct
    for index, constraint in ctx.valid_constraints():
        source = ctx.constraint_source(index)
        for j, disjunct in enumerate(ctx.constraint_disjuncts(constraint)):
            yield source, j, disjunct


@lint_rule(
    "RC301", "divergent-chase", Severity.WARNING,
    "the constraint-interaction graph has a cycle through an existential "
    "edge: the chase may not terminate",
    "Fagin–Kolaitis–Miller–Popa weak acyclicity; Section 2.2's containment "
    "constraints read as TGDs", cost="flow", decider=False)
def check_divergent_chase(ctx: RuleContext) -> Iterator[Diagnostic]:
    if not _flow_ready(ctx) or not ctx.constraints:
        return
    constraints = [c for _, c in ctx.valid_constraints()]
    if not constraints:
        return
    try:
        graph = build_interaction_graph(
            constraints, schema=ctx.schema,
            master_schema=ctx.master_schema)
    except ReproError:
        return
    ctx.chase_class = graph.chase.value
    if graph.chase is not ChaseClass.DIVERGENT:
        return
    involved = sorted({edge.constraint for edge in graph.cycle})
    span = None
    for index, constraint in ctx.valid_constraints():
        if constraint.name in involved:
            span = ctx.source_span(ctx.constraint_source(index))
            break
    yield _diag(
        "RC301",
        f"constraints {', '.join(involved)} form a cyclic dependency "
        f"through a fresh-value position; the chase may diverge: "
        f"{graph.render_cycle()}",
        span)


@lint_rule(
    "RC302", "unreachable-constraint", Severity.WARNING,
    "every disjunct of the constraint ranges over a relation a denial IND "
    "forces empty; it can never fire against this master data",
    "Corollary 3.4's IND semantics: an empty master projection admits no "
    "source tuples in any legal extension", cost="flow", decider=False)
def check_unreachable_constraint(ctx: RuleContext) -> Iterator[Diagnostic]:
    if not _flow_ready(ctx) or not ctx.constraints:
        return
    constraints = [c for _, c in ctx.valid_constraints()]
    try:
        unreachable = inapplicable_constraints(constraints, ctx.master)
    except ReproError:
        return
    for index, constraint in ctx.valid_constraints():
        reason = unreachable.get(constraint.name)
        if reason is None:
            continue
        ctx.inapplicable_constraints.append(constraint.name)
        yield _diag(
            "RC302",
            f"constraint {constraint.name!r} can never fire: {reason}; "
            f"dropping it changes no verdict",
            ctx.source_span(ctx.constraint_source(index)))


@lint_rule(
    "RC303", "dead-constraint-pair", Severity.WARNING,
    "the constraint's query is contained in a denial constraint's query: "
    "the denial forces its premise empty on every legal extension",
    "Sagiv–Yannakakis UCQ containment over the canonical databases "
    "(Section 3's tableau machinery)", cost="flow", decider=False)
def check_dead_constraint_pair(ctx: RuleContext) -> Iterator[Diagnostic]:
    if not _flow_ready(ctx) or not ctx.deep:
        return
    valid = ctx.valid_constraints()
    denials = []
    for index, constraint in valid:
        target = constraint.projection
        if target.is_empty_target:
            denials.append((index, constraint))
        elif ctx.master is not None and target.relation is not None:
            try:
                if not target.evaluate(ctx.master):
                    denials.append((index, constraint))
            except ReproError:
                continue
    if not denials:
        return
    dead = set(ctx.inapplicable_constraints)
    for index, constraint in valid:
        if constraint.name in dead:
            continue
        for d_index, denial in denials:
            if d_index == index or denial.name in dead:
                continue
            if constraint.query.arity != denial.query.arity:
                continue
            try:
                contained = is_ucq_contained_in(
                    constraint.query, denial.query, ctx.schema,
                    on_inequality="unknown")
            except ReproError:
                continue
            if contained is not True:
                continue
            ctx.inapplicable_constraints.append(constraint.name)
            dead.add(constraint.name)
            yield _diag(
                "RC303",
                f"constraint {constraint.name!r} is dead: its query is "
                f"contained in the query of {denial.name!r}, whose "
                f"target admits no rows — {constraint.name!r} can never "
                f"fire while {denial.name!r} holds",
                ctx.source_span(ctx.constraint_source(index)))
            break


def _plan_findings(ctx: RuleContext, kind: str,
                   ) -> Iterator[tuple[str, int, Any]]:
    from repro.analysis.planlint import lint_plan
    for source, index, disjunct in _plannable_disjuncts(ctx):
        try:
            findings = lint_plan(disjunct)
        except (ReproError, AssertionError):
            continue
        for finding in findings:
            if finding.kind == kind:
                yield source, index, finding


@lint_rule(
    "RC401", "plan-cross-product", Severity.INFO,
    "a compiled plan joins disconnected atom groups; every group "
    "multiplies the bindings of the others",
    "the greedy join order of repro.engine.plan cannot key a step that "
    "shares no variable with the atoms before it", cost="flow",
    decider=False)
def check_plan_cross_product(ctx: RuleContext) -> Iterator[Diagnostic]:
    if not _flow_ready(ctx):
        return
    for source, index, finding in _plan_findings(ctx, "cross-product"):
        yield _diag(
            "RC401", finding.message, ctx.span(source, index),
            Fixit(finding.suggestion) if finding.suggestion else None)


@lint_rule(
    "RC402", "post-filter-equality", Severity.INFO,
    "an equality comparison survives as a post-filter check instead of "
    "narrowing an index key",
    "repro.engine.plan places comparisons at the first step where their "
    "variables are bound; substitution prunes earlier", cost="flow",
    decider=False)
def check_post_filter_equality(ctx: RuleContext) -> Iterator[Diagnostic]:
    if not _flow_ready(ctx):
        return
    for source, index, finding in _plan_findings(
            ctx, "post-filter-equality"):
        yield _diag(
            "RC402", finding.message, ctx.span(source, index),
            Fixit(finding.suggestion) if finding.suggestion else None)


@lint_rule(
    "RC403", "unkeyed-start", Severity.INFO,
    "the plan opens with a full scan although another atom carries "
    "constants that would key the first step",
    "the greedy order of repro.engine.plan seeds on shared variables "
    "only; a constant-keyed first atom scans less", cost="flow",
    decider=False)
def check_unkeyed_start(ctx: RuleContext) -> Iterator[Diagnostic]:
    if not _flow_ready(ctx):
        return
    for source, index, finding in _plan_findings(ctx, "unkeyed-start"):
        yield _diag(
            "RC403", finding.message, ctx.span(source, index),
            Fixit(finding.suggestion) if finding.suggestion else None)


@lint_rule(
    "RC404", "explosive-search-space", Severity.INFO,
    "the predicted valuation space of the decision is large; consider a "
    "budget, more workers, or tighter constraints",
    "the |Adom|^k small-model bound of Theorems 4.1/4.2 made "
    "quantitative", cost="flow", decider=False)
def check_explosive_search_space(ctx: RuleContext) -> Iterator[Diagnostic]:
    if (not _flow_ready(ctx) or ctx.query is None
            or not ctx.query_schema_ok
            or getattr(ctx.query, "language", None)
            not in DECIDABLE_LANGUAGES
            or ctx.database is None or ctx.master is None):
        return
    from repro.analysis.cost import estimate_decision, suggested_budget
    constraints = tuple(c for _, c in ctx.valid_constraints())
    try:
        estimate = estimate_decision(
            "rcdp", ctx.query, ctx.database, ctx.master, constraints)
    except (ReproError, ValueError):
        return
    ctx.cost_estimate = estimate
    if estimate.total_predicted < RC404_TICK_THRESHOLD:
        return
    from repro.parallel import suggest_workers
    workers = suggest_workers(estimate)
    yield _diag(
        "RC404",
        f"full enumeration is predicted to cost "
        f"~{estimate.total_predicted} valuation ticks "
        f"(|Adom| = {estimate.adom_size}, dominant phase "
        f"{estimate.dominant_phase}); suggested budget "
        f"{suggested_budget(estimate)}, suggested workers {workers}",
        ctx.span("query", 0) if "query" in ctx.sources
        else ctx.source_span("query"))
