"""Static analysis over queries, constraints, and scenarios.

The analyzer (``repro lint``) runs a registry of rules with stable codes
over an RCDP/RCQP scenario and reports :class:`Diagnostic` findings with
source spans and fix-its, plus machine-consumable :class:`AnalysisFacts`
(provably-empty queries, minimized bodies, droppable constraints, chase
classification, cost estimates) that the deciders and the evaluation
engine act on.

* :mod:`repro.analysis.diagnostics` — Severity/Span/Fixit/Diagnostic/
  Report vocabulary;
* :mod:`repro.analysis.rules` — the rule registry (``RC0xx`` query,
  ``RC1xx`` constraint, ``RC2xx`` scenario rules);
* :mod:`repro.analysis.flow` — the whole-scenario flow pass (``RC3xx``
  interaction rules, ``RC4xx`` cost rules);
* :mod:`repro.analysis.interaction` — constraint-interaction graphs and
  chase-termination classification;
* :mod:`repro.analysis.cost` — the static cost model (interval domain
  over compiled plans, the ``|Adom|^k`` valuation-space formula);
* :mod:`repro.analysis.planlint` — plan-shape findings over compiled
  plans;
* :mod:`repro.analysis.driver` — :func:`analyze` /
  :func:`validate_for_decision` / :func:`lint_bundle` entry points;
* :mod:`repro.analysis.boundedness` — the E3/E4 boundedness analysis
  (also exposed as rule ``RC202``).
"""

from repro.analysis.boundedness import (BoundednessReport, VariableReport,
                                        VariableStatus,
                                        analyze_boundedness)
from repro.analysis.cost import (CostEstimate, DisjunctCost, Interval,
                                 PlanEstimate, StepEstimate,
                                 estimate_decision, estimate_plan,
                                 suggested_budget)
from repro.analysis.diagnostics import (AnalysisFacts, Diagnostic, Fixit,
                                        Report, Severity, Span)
from repro.analysis.driver import (analyze, lint_bundle, lint_path,
                                   validate_for_decision)
from repro.analysis.interaction import (ChaseClass, InteractionEdge,
                                        InteractionGraph,
                                        build_interaction_graph,
                                        drop_inapplicable,
                                        forced_empty_relations,
                                        inapplicable_constraints)
from repro.analysis.planlint import PlanFinding, lint_plan
from repro.analysis.rules import RULES, LintRule, RuleContext, lint_rule

__all__ = [
    "Severity", "Span", "Fixit", "Diagnostic", "AnalysisFacts", "Report",
    "LintRule", "RuleContext", "RULES", "lint_rule",
    "analyze", "validate_for_decision", "lint_bundle", "lint_path",
    "VariableStatus", "VariableReport", "BoundednessReport",
    "analyze_boundedness",
    "ChaseClass", "InteractionEdge", "InteractionGraph",
    "build_interaction_graph", "forced_empty_relations",
    "inapplicable_constraints", "drop_inapplicable",
    "Interval", "DisjunctCost", "StepEstimate", "PlanEstimate",
    "CostEstimate", "estimate_decision", "estimate_plan",
    "suggested_budget",
    "PlanFinding", "lint_plan",
]
