"""Constraint-interaction graphs and chase-termination classification.

The deciders treat the containment constraints ``V`` one at a time, but the
expensive failure modes are *interactions* between them.  Viewed as
tuple-generating dependencies, a containment constraint

    ``q(x̄) ⊆ p``  with  ``p = π_cols(M)``

says: whenever ``q``'s body is satisfiable over the database schema with
head values ``x̄``, the master relation ``M`` must hold a tuple carrying
``x̄`` at the projected columns — and *some* values at the remaining
columns.  Chasing such dependencies invents fresh values exactly at those
unprojected (existential) columns.  The classical weak-acyclicity test
(Fagin, Kolaitis, Miller, Popa: "Data exchange: semantics and query
answering") builds a graph over *predicate positions* and checks whether a
cycle passes through an existential edge; if none does, every chase
sequence terminates.

This module builds that graph for a whole scenario:

* **Nodes** are predicate positions ``(schema, relation, column)``.  When a
  relation name is shared between the database schema and the master
  schema (with equal arity), the two positions are merged into one node —
  that sharing is the only way master-side facts can feed back into
  constraint bodies, so it is exactly what closes cycles.
* **Flow edges** go from every body position of a head variable to the
  master column that variable is projected onto.
* **Fresh edges** go from those same body positions to every *unprojected*
  master column — the positions where a chase step invents fresh values.

`classify` reports ``ACYCLIC`` (no cycles at all), ``WEAKLY_ACYCLIC``
(cycles, but none through a fresh edge — the chase still terminates), or
``DIVERGENT`` (a cycle through a fresh edge: the chase may run forever and
the RCQP unit enumeration has no small model guarantee).

The same scenario-level view yields two more interaction facts:

* `forced_empty_relations` — denial INDs (empty or empty-on-``Dm``
  targets) force their source relations empty in every legal extension.
* `inapplicable_constraints` — constraints whose every disjunct ranges
  over a forced-empty relation can never fire; `drop_inapplicable` removes
  them without changing any verdict (witnesses may differ, because the
  dropped constraints no longer contribute constants to the active
  domain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = [
    "Position",
    "EdgeKind",
    "ChaseClass",
    "InteractionEdge",
    "InteractionGraph",
    "build_interaction_graph",
    "forced_empty_relations",
    "inapplicable_constraints",
    "drop_inapplicable",
]


# A predicate position: (schema tag, relation name, column index).  The
# schema tag is "db" for database-schema positions and "dm" for
# master-schema positions; master positions whose relation name + arity
# also exist in the database schema are *merged* onto the "db" node.
Position = tuple[str, str, int]


class EdgeKind(Enum):
    FLOW = "flow"
    FRESH = "fresh"


class ChaseClass(Enum):
    """Chase-termination classification of a constraint set."""

    ACYCLIC = "acyclic"
    WEAKLY_ACYCLIC = "weakly-acyclic"
    DIVERGENT = "divergent"


@dataclass(frozen=True, slots=True)
class InteractionEdge:
    """One dependency edge, labelled with the constraint that induces it."""

    source: Position
    target: Position
    kind: EdgeKind
    constraint: str

    def render(self) -> str:
        arrow = "⇢" if self.kind is EdgeKind.FRESH else "→"
        return (f"{render_position(self.source)} {arrow} "
                f"{render_position(self.target)} [{self.constraint}]")


def render_position(position: Position) -> str:
    tag, relation, column = position
    prefix = "Dm." if tag == "dm" else ""
    return f"{prefix}{relation}.{column}"


@dataclass(frozen=True)
class InteractionGraph:
    """The position graph of a scenario, with its classification."""

    nodes: frozenset[Position]
    edges: tuple[InteractionEdge, ...]
    chase: ChaseClass
    # A concrete cycle witnessing DIVERGENT (passes through a fresh
    # edge), or witnessing WEAKLY_ACYCLIC (flow-only); empty for ACYCLIC.
    cycle: tuple[InteractionEdge, ...] = field(default=())

    def render_cycle(self) -> str:
        if not self.cycle:
            return ""
        parts = [render_position(self.cycle[0].source)]
        for edge in self.cycle:
            arrow = "⇢" if edge.kind is EdgeKind.FRESH else "→"
            parts.append(f" {arrow}[{edge.constraint}] ")
            parts.append(render_position(edge.target))
        return "".join(parts)

    def to_dict(self) -> dict[str, object]:
        return {
            "chase": self.chase.value,
            "nodes": sorted(render_position(n) for n in self.nodes),
            "edges": [e.render() for e in self.edges],
            "cycle": self.render_cycle() or None,
        }


def _position(schema: DatabaseSchema, master_schema: DatabaseSchema,
              tag: str, relation: str, column: int) -> Position:
    """Canonical node for a position, merging shared relation names."""
    if tag == "dm":
        if relation in schema.relations:
            db_rel = schema.relation(relation)
            dm_rel = master_schema.relation(relation)
            if db_rel.arity == dm_rel.arity:
                return ("db", relation, column)
    return (tag, relation, column)


def build_interaction_graph(
        constraints: Sequence[ContainmentConstraint], *,
        schema: DatabaseSchema,
        master_schema: DatabaseSchema) -> InteractionGraph:
    """Build the position graph of *constraints* and classify the chase."""
    nodes: set[Position] = set()
    edges: list[InteractionEdge] = []
    seen: set[tuple[Position, Position, EdgeKind, str]] = set()

    def canon(tag: str, relation: str, column: int) -> Position:
        node = _position(schema, master_schema, tag, relation, column)
        nodes.add(node)
        return node

    for constraint in constraints:
        target = constraint.projection
        for disjunct in constraint.query.to_cq_disjuncts():
            # Body positions of every variable of the disjunct.
            occurrences: dict[Var, list[Position]] = {}
            for atom in disjunct.relation_atoms:
                for column, term in enumerate(atom.terms):
                    if isinstance(term, Var):
                        occurrences.setdefault(term, []).append(
                            canon("db", atom.relation, column))
            if target.relation is None:
                # Denial target: the chase never fires a tuple-generating
                # step for it, so it contributes no edges (only nodes).
                continue
            try:
                master_rel = master_schema.relation(target.relation)
            except Exception:  # schema errors are RC101's business
                continue
            projected = set(target.columns)
            fresh_columns = [c for c in range(master_rel.arity)
                             if c not in projected]
            head_terms = disjunct.head
            for k, head_term in enumerate(head_terms):
                if not isinstance(head_term, Var):
                    continue
                if k >= len(target.columns):
                    continue  # arity mismatch: RC101's business
                sources = occurrences.get(head_term, ())
                flow_target = canon("dm", target.relation,
                                    target.columns[k])
                for source in sources:
                    key = (source, flow_target, EdgeKind.FLOW,
                           constraint.name)
                    if key not in seen:
                        seen.add(key)
                        edges.append(InteractionEdge(
                            source, flow_target, EdgeKind.FLOW,
                            constraint.name))
                    for column in fresh_columns:
                        fresh_target = canon("dm", target.relation, column)
                        fkey = (source, fresh_target, EdgeKind.FRESH,
                                constraint.name)
                        if fkey not in seen:
                            seen.add(fkey)
                            edges.append(InteractionEdge(
                                source, fresh_target, EdgeKind.FRESH,
                                constraint.name))

    chase, cycle = _classify(nodes, edges)
    return InteractionGraph(nodes=frozenset(nodes), edges=tuple(edges),
                            chase=chase, cycle=cycle)


def _strongly_connected_components(
        nodes: Iterable[Position],
        adjacency: Mapping[Position, Sequence[InteractionEdge]],
        ) -> list[set[Position]]:
    """Iterative Tarjan SCC (the graphs are tiny, but recursion-free)."""
    index: dict[Position, int] = {}
    lowlink: dict[Position, int] = {}
    on_stack: set[Position] = set()
    stack: list[Position] = []
    components: list[set[Position]] = []
    counter = 0
    for root in sorted(nodes):
        if root in index:
            continue
        work: list[tuple[Position, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = adjacency.get(node, ())
            while edge_index < len(successors):
                successor = successors[edge_index].target
                edge_index += 1
                if successor not in index:
                    work[-1] = (node, edge_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: set[Position] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def _cycle_through(edge: InteractionEdge, component: set[Position],
                   adjacency: Mapping[Position, Sequence[InteractionEdge]],
                   ) -> tuple[InteractionEdge, ...]:
    """A concrete cycle using *edge*, staying inside its SCC (BFS back)."""
    if edge.target == edge.source:
        return (edge,)
    # Shortest path edge.target → edge.source within the component.
    frontier: list[Position] = [edge.target]
    parents: dict[Position, InteractionEdge] = {}
    seen = {edge.target}
    while frontier:
        node = frontier.pop(0)
        if node == edge.source:
            break
        for out in adjacency.get(node, ()):
            if out.target in component and out.target not in seen:
                seen.add(out.target)
                parents[out.target] = out
                frontier.append(out.target)
    path: list[InteractionEdge] = []
    node = edge.source
    while node != edge.target:
        step = parents.get(node)
        if step is None:  # pragma: no cover - SCC guarantees a path
            return (edge,)
        path.append(step)
        node = step.source
    path.reverse()
    return (edge, *path)


def _classify(nodes: set[Position], edges: list[InteractionEdge],
              ) -> tuple[ChaseClass, tuple[InteractionEdge, ...]]:
    adjacency: dict[Position, list[InteractionEdge]] = {}
    for edge in edges:
        adjacency.setdefault(edge.source, []).append(edge)
    components = _strongly_connected_components(nodes, adjacency)
    membership: dict[Position, int] = {}
    for i, component in enumerate(components):
        for node in component:
            membership[node] = i
    cyclic: set[int] = {
        i for i, component in enumerate(components) if len(component) > 1}
    for edge in edges:  # self-loops
        if edge.source == edge.target:
            cyclic.add(membership[edge.source])
    if not cyclic:
        return ChaseClass.ACYCLIC, ()
    # Divergent iff some fresh edge lies inside a cyclic SCC.
    for edge in edges:
        if edge.kind is not EdgeKind.FRESH:
            continue
        if (membership[edge.source] == membership[edge.target]
                and membership[edge.source] in cyclic):
            component = components[membership[edge.source]]
            return ChaseClass.DIVERGENT, _cycle_through(
                edge, component, adjacency)
    # Weakly acyclic: render one flow-only cycle as the witness.
    for edge in edges:
        if (membership[edge.source] == membership[edge.target]
                and membership[edge.source] in cyclic):
            component = components[membership[edge.source]]
            return ChaseClass.WEAKLY_ACYCLIC, _cycle_through(
                edge, component, adjacency)
    return ChaseClass.WEAKLY_ACYCLIC, ()  # pragma: no cover


def forced_empty_relations(
        constraints: Sequence[ContainmentConstraint],
        master: Instance | None) -> dict[str, list[str]]:
    """Database relations forced empty by denial-acting INDs.

    An IND ``R[cols] ⊆ p`` whose target is the empty relation — or whose
    projection evaluates to no rows on the given master instance — admits
    no ``R``-tuple in any legal extension: every legal ``(D, Dm)`` and
    every completing ``Δ`` must keep ``R`` empty.  Returns a mapping from
    each forced relation to the (ordered) names of the constraints forcing
    it; the first name is the designated *keeper* that `drop_inapplicable`
    must retain to preserve the forcing.
    """
    forced: dict[str, list[str]] = {}
    for constraint in constraints:
        if not constraint.is_ind():
            continue
        target = constraint.projection
        if target.is_empty_target:
            empty = True
        elif master is not None:
            try:
                empty = not target.evaluate(master)
            except Exception:
                continue  # schema mismatch: RC101's business
        else:
            empty = False
        if empty:
            relation, _ = constraint.ind_source()
            forced.setdefault(relation, []).append(constraint.name)
    return forced


def inapplicable_constraints(
        constraints: Sequence[ContainmentConstraint],
        master: Instance | None) -> dict[str, str]:
    """Constraints that can never fire against the given master data.

    A constraint is *inapplicable* when every disjunct of its query
    contains an atom over a relation forced empty (see
    `forced_empty_relations`) — its query evaluates to ∅ on every legal
    extension, so the containment holds vacuously.  The designated keeper
    of each forced relation is never reported (dropping it would remove
    the forcing itself).  Returns ``{constraint name: reason}``.
    """
    forced = forced_empty_relations(constraints, master)
    if not forced:
        return {}
    keepers = {names[0] for names in forced.values()}
    result: dict[str, str] = {}
    for constraint in constraints:
        if constraint.name in keepers:
            continue
        reasons: list[str] = []
        for disjunct in constraint.query.to_cq_disjuncts():
            hit = next(
                (atom.relation for atom in disjunct.relation_atoms
                 if atom.relation in forced), None)
            if hit is None:
                break
            reasons.append(hit)
        else:
            if reasons:
                relations = sorted(set(reasons))
                forcers = sorted({forced[r][0] for r in relations})
                result[constraint.name] = (
                    f"every disjunct ranges over "
                    f"{', '.join(repr(r) for r in relations)}, forced "
                    f"empty by {', '.join(repr(f) for f in forcers)}")
    return result


def drop_inapplicable(
        constraints: Sequence[ContainmentConstraint],
        inapplicable: Iterable[str]) -> tuple[ContainmentConstraint, ...]:
    """Remove constraints named in *inapplicable*, preserving order.

    Sound for verdicts: an inapplicable constraint is satisfied by every
    legal extension (its query is empty on all of them), so the set of
    valid valuations — and hence every verdict — is unchanged.  Witnesses
    may differ, because dropped constraints no longer contribute constants
    to the active domain.
    """
    names = set(inapplicable)
    return tuple(c for c in constraints if c.name not in names)
