"""The analyzer driver: run the rule registry over one scenario.

Two entry points:

* :func:`analyze` — object-level analysis over already-constructed
  queries/constraints/instances.  This is what the deciders call
  (``deep=False, decider_only=True`` — cheap rules only) and what the
  :class:`~repro.mdm.audit.CompletenessAudit` and lint CLI call in full.
* :func:`lint_bundle` / :func:`lint_path` — text-level analysis over a
  JSON bundle (the :mod:`repro.io.json_io` wire format).  Query and
  constraint texts are parsed with span tracking so diagnostics carry
  exact source positions, and parse/construction failures become
  diagnostics (``RC000``/``RC001``) instead of exceptions.

:func:`validate_for_decision` wraps the decider pass: analysis *errors*
raise :class:`~repro.errors.AnalysisError` carrying the report; warnings
are left to the caller to fold into statistics.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.diagnostics import Diagnostic, Report, Severity, Span
from repro.analysis.rules import RULES, RuleContext, _diag
# Importing the flow module registers the RC3xx/RC4xx whole-scenario
# rules (cost="flow"); nothing is referenced directly.
from repro.analysis import flow as _flow  # noqa: F401
from repro.errors import (AnalysisError, ParseError, QueryError,
                          ReproError)
from repro.queries.parser import (parse_query_spanned, parse_rules_spanned)

__all__ = ["analyze", "validate_for_decision", "lint_bundle", "lint_path"]


def _run_rules(ctx: RuleContext, *, deep: bool,
               decider_only: bool, flow: bool = False) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for code in sorted(RULES):
        rule = RULES[code]
        if rule.cost == "deep" and not deep:
            continue
        if rule.cost == "flow" and not flow:
            continue
        if decider_only and not rule.decider:
            continue
        diagnostics.extend(rule.check(ctx))
    return diagnostics


def analyze(query: Any = None, constraints: Any = (), *,
            schema: Any = None, master_schema: Any = None,
            database: Any = None, master: Any = None,
            deep: bool = True, decider_only: bool = False,
            flow: bool = False,
            sources: Mapping[str, str] | None = None,
            spans: Mapping[str, list] | None = None,
            raw_rules: Mapping[str, list] | None = None,
            parse_failures: Mapping[str, ParseError] | None = None,
            constraint_sources: list[str] | None = None,
            ) -> Report:
    """Run the registered rules over one scenario and collect a
    :class:`~repro.analysis.diagnostics.Report`.

    ``deep=False`` skips the NP-hard minimization/containment rules
    (``RC005``, ``RC103``); ``flow=True`` adds the whole-scenario
    interaction/cost pass (``RC3xx``/``RC4xx``,
    :mod:`repro.analysis.flow`); ``decider_only=True`` additionally
    skips rules the deciders already enforce with dedicated exceptions
    (``RC201`` partial closedness) — flow rules all carry
    ``decider=False``, so the deciders' fast-fail pass never runs them
    and decider statistics are identical with the pass on or off.
    Schemas default to the instances' own schemas when instances are
    given.
    """
    if schema is None and database is not None:
        schema = database.schema
    if master_schema is None and master is not None:
        master_schema = master.schema
    ctx = RuleContext(query=query, constraints=tuple(constraints),
                      schema=schema, master_schema=master_schema,
                      database=database, master=master,
                      sources=dict(sources or {}),
                      spans=dict(spans or {}),
                      raw_rules=dict(raw_rules or {}),
                      parse_failures=dict(parse_failures or {}),
                      constraint_sources=list(constraint_sources or []),
                      deep=deep)
    diagnostics = _run_rules(ctx, deep=deep, decider_only=decider_only,
                             flow=flow)
    return Report(diagnostics=tuple(diagnostics), facts=ctx.facts(),
                  sources=dict(ctx.sources))


def validate_for_decision(query: Any, constraints: Any, *,
                          schema: Any = None, master_schema: Any = None,
                          database: Any = None, master: Any = None,
                          ) -> Report:
    """The deciders' fast-fail pass: cheap rules only, raise
    :class:`AnalysisError` when any *error*-severity rule fires.

    The raised error carries the full report on ``.report`` so callers
    (and tests) can inspect exactly which codes fired.
    """
    report = analyze(query, constraints, schema=schema,
                     master_schema=master_schema, database=database,
                     master=master, deep=False, decider_only=True)
    if report.has_errors:
        first = report.errors[0]
        raise AnalysisError(
            f"static analysis rejected the configuration with "
            f"{len(report.errors)} error(s); first: [{first.code}] "
            f"{first.message}", report=report)
    return report


# ---------------------------------------------------------------------------
# Text-level analysis (lint over JSON bundles)
# ---------------------------------------------------------------------------


def _parse_spanned(source: str, data: Mapping[str, Any],
                   state: dict) -> Any:
    """Parse one query payload with span tracking; record text, spans,
    raw rules, and failures under *source* in *state*.  Returns the
    constructed query or ``None`` (a diagnostic will explain why)."""
    text = data.get("text", "")
    language = data.get("language", "CQ")
    state["sources"][source] = text
    try:
        rules, rule_spans = parse_rules_spanned(text)
    except ParseError as exc:
        state["parse_failures"][source] = exc
        return None
    state["spans"][source] = rule_spans
    state["raw_rules"][source] = rules
    try:
        if language == "FP":
            from repro.queries.datalog import DatalogQuery, Rule

            return DatalogQuery([Rule(head, body) for head, body in rules],
                                goal=data["goal"])
        query, _ = parse_query_spanned(text)
        return query
    except ParseError as exc:
        state["parse_failures"][source] = exc
        return None
    except ReproError as exc:
        # Construction failed (unsafe rule, mixed arities, bad goal…).
        # RC001 re-derives unsafe variables with precise spans; anything
        # it cannot explain gets a fallback diagnostic below.
        state["construction_errors"][source] = exc
        return None


def lint_bundle(payload: Mapping[str, Any], *, deep: bool = True,
                flow: bool = True) -> Report:
    """Analyze a JSON bundle payload (the :func:`repro.io.json_io.
    dump_bundle` wire format) with source-span tracking.

    The whole-scenario flow pass (``RC3xx``/``RC4xx``) is on by default
    here — ``repro lint`` is the surface those rules were built for;
    pass ``flow=False`` to restrict to the per-object rules."""
    from repro.constraints.containment import (ContainmentConstraint,
                                               Projection)
    from repro.io.json_io import instance_from_dict, schema_from_dict

    state: dict[str, dict] = {"sources": {}, "spans": {},
                              "raw_rules": {}, "parse_failures": {},
                              "construction_errors": {}}
    schema = schema_from_dict(payload["schema"])
    master_schema = schema_from_dict(payload["master_schema"])
    database = (instance_from_dict(payload["database"], schema)
                if "database" in payload else None)
    master = (instance_from_dict(payload["master"], master_schema)
              if "master" in payload else None)
    query = (_parse_spanned("query", payload["query"], state)
             if "query" in payload else None)
    constraints = []
    constraint_sources = []
    for index, entry in enumerate(payload.get("constraints", ())):
        source = f"constraints[{index}]"
        constraint_query = _parse_spanned(source, entry["query"], state)
        if constraint_query is None:
            continue
        projection_data = entry["projection"]
        if projection_data["relation"] is None:
            projection = Projection.empty()
        else:
            projection = Projection.on(projection_data["relation"],
                                       projection_data["columns"])
        constraints.append(ContainmentConstraint(
            constraint_query, projection,
            name=entry.get("name", f"φ{index}")))
        constraint_sources.append(source)
    report = analyze(query, constraints, schema=schema,
                     master_schema=master_schema, database=database,
                     master=master, deep=deep, flow=flow,
                     sources=state["sources"], spans=state["spans"],
                     raw_rules=state["raw_rules"],
                     parse_failures=state["parse_failures"],
                     constraint_sources=constraint_sources)
    # Fallback: a construction failure RC001 could not explain still has
    # to surface as an error, or a broken bundle would lint clean.
    extra = []
    for source, error in sorted(state["construction_errors"].items()):
        if any(d.span.source == source
               and d.severity is Severity.ERROR for d in report):
            continue
        extra.append(_diag("RC001", str(error),
                           Span(source=source,
                                length=len(state["sources"][source]
                                           .splitlines()[0])
                                if state["sources"][source] else 0)))
    if extra:
        report = Report(diagnostics=report.diagnostics + tuple(extra),
                        facts=report.facts, sources=report.sources)
    return report


def _prefix_report(report: Report, prefix: str) -> Report:
    """Re-key a report's sources and spans under ``prefix:source``."""
    from dataclasses import replace

    diagnostics = tuple(
        replace(d, span=replace(d.span, source=f"{prefix}:{d.span.source}"))
        for d in report.diagnostics)
    sources = {f"{prefix}:{key}": text
               for key, text in report.sources.items()}
    return Report(diagnostics=diagnostics, facts=report.facts,
                  sources=sources)


def lint_path(path: str, *, deep: bool = True, flow: bool = True) -> Report:
    """Lint a bundle JSON file — or a directory of ``*.json`` bundles.

    A directory is linted file by file in sorted name order and merged
    into one report whose diagnostic sources are prefixed with the file
    name (``bundle.json:query``), so the aggregate exit code is the
    worst severity across the directory and deterministic for any
    listing order the OS returns.  Sidecar JSON files that are not
    bundles (no ``schema`` key — e.g. a corpus ``manifest.json`` or a
    saved run report) are skipped in directory mode; linting such a
    file directly still fails.  The merged report's facts are the
    default (facts are per-scenario; consumers that need them should
    lint files individually).
    """
    import json
    import os

    if os.path.isdir(path):
        merged: list[Diagnostic] = []
        sources: dict[str, str] = {}
        for name in sorted(os.listdir(path)):
            full = os.path.join(path, name)
            if not name.endswith(".json") or not os.path.isfile(full):
                continue
            try:
                with open(full, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                # Unreadable/corrupt files go through the file path
                # below so they still raise the usual QueryError.
                payload = {"schema": None}
            if not isinstance(payload, dict) or "schema" not in payload:
                continue
            report = _prefix_report(
                lint_path(full, deep=deep, flow=flow), name)
            merged.extend(report.diagnostics)
            sources.update(report.sources)
        return Report(diagnostics=tuple(merged), sources=sources)
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise QueryError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "schema" not in payload:
        raise QueryError(f"{path} is not a scenario bundle "
                         f"(no 'schema' block)")
    return lint_bundle(payload, deep=deep, flow=flow)
