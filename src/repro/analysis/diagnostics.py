"""The diagnostics vocabulary of the static analyzer.

A :class:`Diagnostic` is one finding: a stable rule ``code`` (``RC0xx``
for query rules, ``RC1xx`` for constraint rules, ``RC2xx`` for scenario
rules, ``RC3xx`` for cross-constraint interaction rules, ``RC4xx`` for
cost rules), a :class:`Severity`, a message, a :class:`Span` pointing into the
source it was found in, and optionally a :class:`Fixit` with a concrete
replacement.  A :class:`Report` collects the diagnostics of one
:func:`~repro.analysis.driver.analyze` run together with the
machine-consumable :class:`AnalysisFacts` the deciders and the engine
act on (provably-empty queries, minimized bodies, droppable
constraints).

Severity drives exit codes and decider behavior:

* ``ERROR`` — the input is unusable (schema mismatch, unsafe rule,
  violated partial closedness); deciders raise
  :class:`~repro.errors.AnalysisError`, ``repro lint`` exits 2.
* ``WARNING`` — the input is legal but wasteful or suspicious (empty
  query, vacuous or subsumed constraint, undecidable language);
  deciders fold the count into result statistics, lint exits 1.
* ``INFO`` — stylistic observations (single-use variables, empty master
  targets); never affects the exit code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = ["Severity", "Span", "Fixit", "Diagnostic", "AnalysisFacts",
           "Report"]


class Severity(enum.IntEnum):
    """Diagnostic severity; comparable (``INFO < WARNING < ERROR``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Span:
    """A region of one analyzed source.

    ``source`` names which input the span points into — ``"query"``,
    ``"constraints[2]"``, ``"scenario"`` — and the coordinates are
    relative to that source's text (1-based line/column, 0-based
    character offset).  Object-level analyses (no text available) use
    the default whole-source span.
    """

    source: str = "scenario"
    line: int = 1
    column: int = 1
    offset: int = 0
    length: int = 0

    def to_dict(self) -> dict:
        return {"source": self.source, "line": self.line,
                "column": self.column, "offset": self.offset,
                "length": self.length}


@dataclass(frozen=True)
class Fixit:
    """A suggested edit: human description plus, when renderable, the
    replacement text for the whole source the diagnostic points into."""

    description: str
    replacement: str | None = None

    def to_dict(self) -> dict:
        entry: dict[str, Any] = {"description": self.description}
        if self.replacement is not None:
            entry["replacement"] = self.replacement
        return entry


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule."""

    code: str
    severity: Severity
    message: str
    span: Span = field(default_factory=Span)
    rule: str = ""
    fixit: Fixit | None = None

    def to_dict(self) -> dict:
        entry: dict[str, Any] = {
            "code": self.code,
            "severity": str(self.severity),
            "rule": self.rule,
            "message": self.message,
            "span": self.span.to_dict(),
        }
        if self.fixit is not None:
            entry["fixit"] = self.fixit.to_dict()
        return entry

    def render(self, sources: Mapping[str, str] | None = None) -> str:
        """One text block: location line, then (when the source text is
        available) the offending line with a caret underneath."""
        span = self.span
        lines = [f"{span.source}:{span.line}:{span.column}: "
                 f"{self.severity}[{self.code}]: {self.message}"]
        text = (sources or {}).get(span.source)
        if text is not None:
            source_lines = text.splitlines()
            if 0 < span.line <= len(source_lines):
                code_line = source_lines[span.line - 1]
                lines.append("    " + code_line)
                width = max(1, min(span.length or 1,
                                   len(code_line) - span.column + 1))
                lines.append("    " + " " * (span.column - 1)
                             + "^" * width)
        if self.fixit is not None:
            lines.append(f"  fixit: {self.fixit.description}")
            if self.fixit.replacement is not None:
                for replacement_line in self.fixit.replacement.splitlines():
                    lines.append(f"    | {replacement_line}")
        return "\n".join(lines)


@dataclass(frozen=True)
class AnalysisFacts:
    """Machine-consumable conclusions the deciders and engine act on."""

    #: Every disjunct's ``=``/``≠`` graph is contradictory: the query
    #: evaluates to ∅ on *every* instance, so it is trivially relatively
    #: complete (no extension can add answers).
    query_provably_empty: bool = False
    #: Names of individually unsatisfiable disjuncts.
    empty_disjuncts: tuple[str, ...] = ()
    #: An equivalent query with redundant atoms folded away (Chandra–
    #: Merlin cores per disjunct); ``None`` when nothing was foldable.
    minimized_query: Any = None
    #: Names of constraints provably droppable without changing any
    #: verdict (vacuous, duplicate, or subsumed CCs).
    redundant_constraints: tuple[str, ...] = ()
    #: False when the query is outside the monotone decidable fragment
    #: (FO/FP) — the engine's semi-naive delta path is gated on this.
    monotone: bool = True
    #: Chase-termination class of the constraint set from the interaction
    #: graph (``"acyclic"`` / ``"weakly-acyclic"`` / ``"divergent"``), or
    #: ``None`` when the flow pass did not run.
    chase: str | None = None
    #: Names of constraints that can never fire against the given master
    #: data (RC302/RC303); `repro.analysis.flow.drop_inapplicable`
    #: removes them verdict-preservingly.
    inapplicable_constraints: tuple[str, ...] = ()
    #: The flow pass's `repro.analysis.cost.CostEstimate` for the
    #: scenario's decision, or ``None`` when it was not computed.
    cost_estimate: Any = None

    def to_dict(self) -> dict:
        return {
            "query_provably_empty": self.query_provably_empty,
            "empty_disjuncts": list(self.empty_disjuncts),
            "minimized_query": (
                None if self.minimized_query is None
                else getattr(self.minimized_query, "name",
                             repr(self.minimized_query))),
            "redundant_constraints": list(self.redundant_constraints),
            "monotone": self.monotone,
            "chase": self.chase,
            "inapplicable_constraints": list(
                self.inapplicable_constraints),
            "cost_estimate": (None if self.cost_estimate is None
                              else self.cost_estimate.to_dict()),
        }


@dataclass(frozen=True)
class Report:
    """Everything one analysis run produced."""

    diagnostics: tuple[Diagnostic, ...] = ()
    facts: AnalysisFacts = field(default_factory=AnalysisFacts)
    #: The analyzed source texts (for caret rendering), when available.
    sources: Mapping[str, str] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """``repro lint`` semantics: 0 clean, 1 warnings, 2 errors
        (infos never affect the exit code)."""
        if self.has_errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def codes(self) -> tuple[str, ...]:
        """Distinct rule codes that fired, in first-occurrence order."""
        return tuple(dict.fromkeys(d.code for d in self.diagnostics))

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def summary(self) -> str:
        counts = []
        for label, group in (("error", self.errors),
                             ("warning", self.warnings),
                             ("info", self.infos)):
            if group:
                plural = "s" if len(group) != 1 else ""
                counts.append(f"{len(group)} {label}{plural}")
        return ", ".join(counts) if counts else "clean"

    def render(self, sources: Mapping[str, str] | None = None) -> str:
        """Full text rendering — one block per diagnostic, most severe
        first, followed by a summary line."""
        sources = dict(self.sources) | dict(sources or {})
        ordered = sorted(self.diagnostics,
                         key=lambda d: (-int(d.severity), d.code))
        blocks = [d.render(sources) for d in ordered]
        blocks.append(self.summary())
        return "\n".join(blocks)

    def to_dict(self) -> dict:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "facts": self.facts.to_dict(),
            "summary": self.summary(),
            "exit_code": self.exit_code,
        }
