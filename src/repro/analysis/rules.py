"""The analyzer's rule registry: stable codes, one checker per rule.

Code blocks
-----------

* ``RC0xx`` — query rules (syntax, safety, schema, satisfiability,
  redundancy, language);
* ``RC1xx`` — constraint rules (schema, vacuity, subsumption, language);
* ``RC2xx`` — scenario rules (partial closedness, boundedness, master
  coverage);
* ``RC3xx`` — cross-constraint interaction rules (chase termination,
  unreachable and contradictory constraints; :mod:`repro.analysis.flow`);
* ``RC4xx`` — cost rules (plan shapes and the valuation-space estimate;
  :mod:`repro.analysis.flow`).

Each rule declares a *cost* (``"cheap"`` rules run everywhere, ``"deep"``
rules — the Chandra–Merlin containment/minimization ones — only in full
``repro lint`` runs, ``"flow"`` rules — the whole-scenario interaction
and cost pass — only when the flow pass is enabled) and whether it
participates in the deciders' fast-fail pass (``decider=False`` for
checks the deciders already perform with dedicated exceptions, like
partial closedness).

Rules are generators over a :class:`RuleContext`; they *yield*
:class:`~repro.analysis.diagnostics.Diagnostic` objects and record
machine-consumable conclusions on the context's fact slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.analysis.diagnostics import (AnalysisFacts, Diagnostic, Fixit,
                                        Severity, Span)
from repro.errors import ParseError, QueryError, ReproError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.containment import is_ucq_contained_in, minimize
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import RuleSpans
from repro.queries.tableau import Tableau
from repro.queries.terms import Var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = ["LintRule", "RuleContext", "RULES", "lint_rule",
           "DECIDABLE_LANGUAGES"]

#: The monotone languages the exact deciders accept (Theorems 3.1/4.1).
DECIDABLE_LANGUAGES = frozenset({"CQ", "UCQ", "EFO"})


@dataclass(frozen=True)
class LintRule:
    """Registry entry: metadata plus the checker callable."""

    code: str
    name: str
    severity: Severity
    description: str
    #: Where in the paper (or classic literature) the rule comes from.
    reference: str
    #: ``"cheap"`` rules run in every pass; ``"deep"`` ones (containment
    #: and minimization — NP-hard per check) only under ``deep=True``;
    #: ``"flow"`` ones (the whole-scenario interaction/cost pass of
    #: :mod:`repro.analysis.flow`) only under ``flow=True``.
    cost: str = "cheap"
    #: Whether the rule runs in the deciders' fast-fail pass.
    decider: bool = True
    check: Callable[["RuleContext"], Iterable[Diagnostic]] | None = None


RULES: dict[str, LintRule] = {}


def lint_rule(code: str, name: str, severity: Severity, description: str,
              reference: str, *, cost: str = "cheap",
              decider: bool = True) -> "Callable[[Callable], Callable]":
    """Register a checker under a stable code."""

    def decorate(check: Callable) -> Callable:
        if code in RULES:
            raise ValueError(f"duplicate lint rule code {code}")
        RULES[code] = LintRule(code=code, name=name, severity=severity,
                               description=description,
                               reference=reference, cost=cost,
                               decider=decider, check=check)
        return check

    return decorate


def _diag(code: str, message: str, span: Span | None = None,
          fixit: Fixit | None = None) -> Diagnostic:
    rule = RULES[code]
    return Diagnostic(code=code, severity=rule.severity, message=message,
                      span=span or Span(), rule=rule.name, fixit=fixit)


@dataclass
class RuleContext:
    """Everything one analysis run knows, plus mutable fact slots."""

    query: Any = None
    constraints: tuple = ()
    schema: DatabaseSchema | None = None
    master_schema: DatabaseSchema | None = None
    database: Instance | None = None
    master: Instance | None = None
    #: Source texts by key (``"query"``, ``"constraints[0]"``, …).
    sources: dict[str, str] = field(default_factory=dict)
    #: Per-source parsed rule spans, aligned with rule/disjunct index.
    spans: dict[str, list[RuleSpans]] = field(default_factory=dict)
    #: Per-source raw ``(head, body)`` rule pairs (text path only).
    raw_rules: dict[str, list[tuple]] = field(default_factory=dict)
    #: Sources whose text failed to parse (text path only).
    parse_failures: dict[str, ParseError] = field(default_factory=dict)
    #: Source key per *constructed* constraint, aligned with
    #: ``constraints``.  Needed on the text path: a constraint whose text
    #: failed to parse is absent from ``constraints``, so list indices
    #: drift from the payload's ``constraints[N]`` keys.
    constraint_sources: list[str] = field(default_factory=list)
    deep: bool = True

    # -- mutable conclusions rules fill in ------------------------------
    query_provably_empty: bool = False
    empty_disjuncts: list[str] = field(default_factory=list)
    minimized_query: Any = None
    redundant_constraints: list[str] = field(default_factory=list)
    monotone: bool = True
    #: Indices of constraints that failed validation (later rules skip
    #: them to avoid cascading crashes on the same root cause).
    invalid_constraints: set[int] = field(default_factory=set)
    #: True when RC002 fired — satisfiability/minimization rules skip
    #: the query rather than crash on the schema mismatch again.
    query_schema_ok: bool = True
    #: Chase class set by RC301 ("acyclic"/"weakly-acyclic"/"divergent").
    chase_class: str | None = None
    #: Names of constraints RC302/RC303 proved unable to ever fire.
    inapplicable_constraints: list[str] = field(default_factory=list)
    #: The `repro.analysis.cost.CostEstimate` RC404 computed, if any.
    cost_estimate: Any = None

    # -- span helpers ---------------------------------------------------

    def constraint_source(self, index: int) -> str:
        """Source key of the *index*-th constructed constraint."""
        if index < len(self.constraint_sources):
            return self.constraint_sources[index]
        return f"constraints[{index}]"

    def source_span(self, source: str) -> Span:
        """Whole-source span (line 1 caret when text is known)."""
        text = self.sources.get(source, "")
        first_line = text.splitlines()[0] if text else ""
        return Span(source=source, length=len(first_line))

    def span(self, source: str, rule_index: int | None = None, *,
             literal: int | None = None, variable: str | None = None,
             head: bool = False) -> Span:
        per_rule = self.spans.get(source)
        if (per_rule is None or rule_index is None
                or rule_index >= len(per_rule)):
            return self.source_span(source)
        spans = per_rule[rule_index]
        if variable is not None and variable in spans.variables:
            where = spans.variables[variable]
        elif literal is not None and literal < len(spans.literals):
            where = spans.literals[literal]
        elif head:
            where = spans.head
        else:
            where = spans.rule
        return Span(source=source, line=where.line, column=where.column,
                    offset=where.offset, length=where.length)

    # -- structure helpers ----------------------------------------------

    def cq_disjuncts(self) -> list[ConjunctiveQuery] | None:
        """The query's CQ disjuncts, or ``None`` for FO/FP/absent."""
        unfold = getattr(self.query, "to_cq_disjuncts", None)
        if unfold is None:
            return None
        return list(unfold())

    def constraint_disjuncts(self, constraint) -> list[ConjunctiveQuery]:
        unfold = getattr(constraint.query, "to_cq_disjuncts", None)
        return list(unfold()) if unfold is not None else []

    def valid_constraints(self) -> list[tuple[int, Any]]:
        return [(i, c) for i, c in enumerate(self.constraints)
                if i not in self.invalid_constraints]

    def facts(self) -> AnalysisFacts:
        return AnalysisFacts(
            query_provably_empty=self.query_provably_empty,
            empty_disjuncts=tuple(self.empty_disjuncts),
            minimized_query=self.minimized_query,
            redundant_constraints=tuple(self.redundant_constraints),
            monotone=self.monotone,
            chase=self.chase_class,
            inapplicable_constraints=tuple(self.inapplicable_constraints),
            cost_estimate=self.cost_estimate)


def _spans_align(ctx: RuleContext, source: str) -> bool:
    """True when per-disjunct spans of *source* align with the query's
    disjunct indices (text path, CQ/UCQ only)."""
    return source in ctx.spans


def _tableau_or_none(disjunct: ConjunctiveQuery,
                     schema: DatabaseSchema) -> Tableau | None:
    try:
        return Tableau(disjunct, schema)
    except ReproError:
        return None  # schema mismatch — RC002/RC101 already flagged it


def _render_query(disjuncts: list[ConjunctiveQuery]) -> str:
    from repro.io.json_io import _render_cq

    return "\n".join(_render_cq(d) for d in disjuncts)


# ---------------------------------------------------------------------------
# RC0xx — query rules
# ---------------------------------------------------------------------------


@lint_rule("RC000", "syntax-error", Severity.ERROR,
           "the source text could not be parsed",
           "§2.1 (query syntax)")
def _check_syntax(ctx: RuleContext) -> Iterator[Diagnostic]:
    for source, error in sorted(ctx.parse_failures.items()):
        span = Span(source=source, line=error.line or 1,
                    column=error.column or 1, offset=error.offset or 0,
                    length=getattr(error, "length", 1) or 1)
        yield _diag("RC000", str(error), span)


def _rule_unsafe_variables(head: RelAtom,
                           body: list[Any]) -> list[str]:
    bound = {term.name for atom in body if isinstance(atom, RelAtom)
             for term in atom.terms if isinstance(term, Var)}
    unsafe = []
    for term in head.terms:
        if isinstance(term, Var) and term.name not in bound:
            unsafe.append(term.name)
    for atom in body:
        if isinstance(atom, (Eq, Neq)):
            for term in (atom.left, atom.right):
                if isinstance(term, Var) and term.name not in bound:
                    unsafe.append(term.name)
    return list(dict.fromkeys(unsafe))


@lint_rule("RC001", "unsafe-rule", Severity.ERROR,
           "a head or comparison variable is not range-restricted by any "
           "relation atom",
           "§2.1 (safe-range queries); Thm 3.6 needs range restriction "
           "for the tableau construction")
def _check_safety(ctx: RuleContext) -> Iterator[Diagnostic]:
    for source, rules in sorted(ctx.raw_rules.items()):
        for index, (head, body) in enumerate(rules):
            for name in _rule_unsafe_variables(head, body):
                yield _diag(
                    "RC001",
                    f"variable {name!r} of rule {index} is unsafe: it "
                    f"occurs in the head or a comparison but in no "
                    f"relation atom",
                    ctx.span(source, index, variable=name))


@lint_rule("RC002", "query-schema-mismatch", Severity.ERROR,
           "a query atom does not match the database schema",
           "§2.1 (queries over schema R)")
def _check_query_schema(ctx: RuleContext) -> Iterator[Diagnostic]:
    if ctx.query is None or ctx.schema is None:
        return
    found = False
    disjuncts = ctx.cq_disjuncts()
    if disjuncts is not None:
        for index, disjunct in enumerate(disjuncts):
            rule_index = index if _spans_align(ctx, "query") else None
            for literal_index, atom in enumerate(disjunct.body):
                if not isinstance(atom, RelAtom):
                    continue
                try:
                    atom.validate(ctx.schema)
                except ReproError as exc:
                    found = True
                    yield _diag("RC002", str(exc),
                                ctx.span("query", rule_index,
                                         literal=literal_index))
    elif getattr(ctx.query, "language", None) == "FP":
        idb = set(ctx.query.idb_predicates)
        for index, rule in enumerate(ctx.query.rules):
            rule_index = index if _spans_align(ctx, "query") else None
            for literal_index, atom in enumerate(rule.body):
                if (not isinstance(atom, RelAtom)
                        or atom.relation in idb):
                    continue
                try:
                    atom.validate(ctx.schema)
                except ReproError as exc:
                    found = True
                    yield _diag("RC002", str(exc),
                                ctx.span("query", rule_index,
                                         literal=literal_index))
    else:
        try:
            ctx.query.validate(ctx.schema)
        except ReproError as exc:
            found = True
            yield _diag("RC002", str(exc), ctx.source_span("query"))
    if found:
        ctx.query_schema_ok = False


@lint_rule("RC003", "query-provably-empty", Severity.WARNING,
           "every disjunct's =/≠ graph is contradictory — the query is "
           "empty on all instances and trivially relatively complete",
           "§3 (tableau (T_Q, u_Q)); union-find equality folding")
def _check_query_empty(ctx: RuleContext) -> Iterator[Diagnostic]:
    if (ctx.query is None or ctx.schema is None
            or not ctx.query_schema_ok):
        return
    disjuncts = ctx.cq_disjuncts()
    if not disjuncts:
        return
    verdicts: list[tuple[int, ConjunctiveQuery, bool]] = []
    for index, disjunct in enumerate(disjuncts):
        tableau = _tableau_or_none(disjunct, ctx.schema)
        if tableau is None:
            return
        verdicts.append((index, disjunct, tableau.satisfiable))
    if all(not satisfiable for _, _, satisfiable in verdicts):
        ctx.query_provably_empty = True
        ctx.empty_disjuncts.extend(d.name for _, d, _ in verdicts)
        yield _diag(
            "RC003",
            f"query {getattr(ctx.query, 'name', '?')!r} is provably "
            f"empty: the equality/inequality atoms of every disjunct "
            f"are contradictory, so Q(D) = ∅ on every database and D "
            f"is trivially relatively complete",
            ctx.source_span("query"))


@lint_rule("RC004", "disjunct-empty", Severity.WARNING,
           "a disjunct's =/≠ graph is contradictory — it contributes no "
           "answers and can be dropped",
           "§3 (tableau (T_Q, u_Q)); union-find equality folding")
def _check_disjunct_empty(ctx: RuleContext) -> Iterator[Diagnostic]:
    if (ctx.query is None or ctx.schema is None
            or not ctx.query_schema_ok or ctx.query_provably_empty):
        return
    disjuncts = ctx.cq_disjuncts()
    if not disjuncts or len(disjuncts) < 2:
        return
    live = []
    dead = []
    for index, disjunct in enumerate(disjuncts):
        tableau = _tableau_or_none(disjunct, ctx.schema)
        if tableau is None:
            return
        (live if tableau.satisfiable else dead).append((index, disjunct))
    if not dead:
        return
    ctx.empty_disjuncts.extend(d.name for _, d in dead)
    replacement = _render_query([d for _, d in live]) if live else None
    for index, disjunct in dead:
        rule_index = index if _spans_align(ctx, "query") else None
        yield _diag(
            "RC004",
            f"disjunct {disjunct.name!r} is unsatisfiable (contradictory "
            f"=/≠ atoms) and contributes no answers",
            ctx.span("query", rule_index),
            Fixit("drop the unsatisfiable disjunct", replacement))


@lint_rule("RC005", "redundant-atom", Severity.WARNING,
           "a disjunct has homomorphically redundant atoms; the "
           "minimized core is equivalent and cheaper to evaluate",
           "Chandra–Merlin 1977 (cores); §3.2 cites CM for answer "
           "testing", cost="deep")
def _check_redundant_atoms(ctx: RuleContext) -> Iterator[Diagnostic]:
    if (ctx.query is None or ctx.schema is None
            or not ctx.query_schema_ok or ctx.query_provably_empty):
        return
    disjuncts = ctx.cq_disjuncts()
    if not disjuncts:
        return
    minimized: list[ConjunctiveQuery] = []
    shrunk_any = False
    for index, disjunct in enumerate(disjuncts):
        tableau = _tableau_or_none(disjunct, ctx.schema)
        if tableau is None or not tableau.satisfiable:
            minimized.append(disjunct)
            continue
        try:
            core = minimize(disjunct, ctx.schema, on_inequality="skip")
        except ReproError:
            minimized.append(disjunct)
            continue
        minimized.append(core)
        dropped = (len(disjunct.relation_atoms)
                   - len(core.relation_atoms))
        if dropped <= 0:
            continue
        shrunk_any = True
        rule_index = index if _spans_align(ctx, "query") else None
        yield _diag(
            "RC005",
            f"disjunct {disjunct.name!r} has {dropped} redundant "
            f"atom(s): the Chandra–Merlin core with "
            f"{len(core.relation_atoms)} atom(s) is equivalent",
            ctx.span("query", rule_index),
            Fixit("replace the query with its minimized core",
                  _render_query(minimized if len(minimized) > 1
                                else [core])))
    if shrunk_any:
        if len(minimized) == 1:
            ctx.minimized_query = minimized[0]
        else:
            from repro.queries.ucq import UnionOfConjunctiveQueries

            ctx.minimized_query = UnionOfConjunctiveQueries(
                minimized, name=getattr(ctx.query, "name", "Q"))


@lint_rule("RC006", "nonmonotone-query", Severity.WARNING,
           "the query language is outside the decidable monotone "
           "fragment; exact deciders refuse it and the engine's delta "
           "path is gated off",
           "Theorems 3.1 / 4.1 (undecidability beyond ∃FO⁺)")
def _check_query_language(ctx: RuleContext) -> Iterator[Diagnostic]:
    if ctx.query is None:
        return
    language = getattr(ctx.query, "language", None)
    if language in DECIDABLE_LANGUAGES or language is None:
        return
    ctx.monotone = False
    yield _diag(
        "RC006",
        f"query language {language} is undecidable for RCDP/RCQP "
        f"(Theorems 3.1/4.1): exact deciders will refuse it, only the "
        f"bounded semi-decision applies, and delta evaluation falls "
        f"back to full re-evaluation",
        ctx.source_span("query"))


@lint_rule("RC007", "nonrecursive-datalog", Severity.WARNING,
           "the datalog program has no recursive cycle — it is "
           "expressible as a UCQ, which would regain decidability",
           "Theorem 3.1 (FP undecidable) vs Theorem 3.6 (UCQ decidable)")
def _check_nonrecursive(ctx: RuleContext) -> Iterator[Diagnostic]:
    if getattr(ctx.query, "language", None) != "FP":
        return
    idb = set(ctx.query.idb_predicates)
    edges: dict[str, set[str]] = {p: set() for p in idb}
    for rule in ctx.query.rules:
        for atom in rule.body:
            if isinstance(atom, RelAtom) and atom.relation in idb:
                edges[rule.head.relation].add(atom.relation)
    # cycle detection over the IDB dependency graph
    state: dict[str, int] = {}

    def cyclic(node: str) -> bool:
        if state.get(node) == 1:
            return True
        if state.get(node) == 2:
            return False
        state[node] = 1
        if any(cyclic(successor) for successor in edges[node]):
            return True
        state[node] = 2
        return False

    if any(cyclic(p) for p in sorted(idb)):
        return
    yield _diag(
        "RC007",
        f"datalog program {getattr(ctx.query, 'name', '?')!r} is "
        f"non-recursive: unfolding it into a UCQ would move it into "
        f"the decidable fragment (Theorem 3.6) instead of requiring "
        f"the bounded semi-decision",
        ctx.source_span("query"))


@lint_rule("RC008", "unreachable-rule", Severity.WARNING,
           "a datalog rule cannot contribute to the goal predicate",
           "§2.1 (FP queries with designated goal)")
def _check_unreachable_rules(ctx: RuleContext) -> Iterator[Diagnostic]:
    if getattr(ctx.query, "language", None) != "FP":
        return
    idb = set(ctx.query.idb_predicates)
    edges: dict[str, set[str]] = {p: set() for p in idb}
    for rule in ctx.query.rules:
        for atom in rule.body:
            if isinstance(atom, RelAtom) and atom.relation in idb:
                edges[rule.head.relation].add(atom.relation)
    goal = ctx.query.goal
    reachable = set()
    frontier = [goal] if goal in idb else []
    while frontier:
        node = frontier.pop()
        if node in reachable:
            continue
        reachable.add(node)
        frontier.extend(edges.get(node, ()))
    for index, rule in enumerate(ctx.query.rules):
        if rule.head.relation in reachable:
            continue
        rule_index = index if _spans_align(ctx, "query") else None
        yield _diag(
            "RC008",
            f"rule {index} defines {rule.head.relation!r}, which the "
            f"goal {goal!r} never depends on; the rule is dead",
            ctx.span("query", rule_index, head=True),
            Fixit("drop the unreachable rule"))


def _single_use_variables(head_terms, body) -> list[str]:
    counts: dict[str, int] = {}
    in_head: set[str] = set()
    for term in head_terms:
        if isinstance(term, Var):
            counts[term.name] = counts.get(term.name, 0) + 1
            in_head.add(term.name)
    for atom in body:
        terms = (atom.terms if isinstance(atom, RelAtom)
                 else (atom.left, atom.right))
        for term in terms:
            if isinstance(term, Var):
                counts[term.name] = counts.get(term.name, 0) + 1
    return [name for name, count in sorted(counts.items())
            if count == 1 and name not in in_head
            and not name.startswith("_")]


@lint_rule("RC009", "single-use-variable", Severity.INFO,
           "a body variable occurs exactly once (a don't-care); prefix "
           "it with '_' to document the projection",
           "§2.1 (∃-projection in CQ bodies)")
def _check_single_use(ctx: RuleContext) -> Iterator[Diagnostic]:
    if ctx.query is None:
        return
    if getattr(ctx.query, "language", None) == "FP":
        rules = [(r.head.terms, r.body) for r in ctx.query.rules]
    else:
        disjuncts = ctx.cq_disjuncts()
        if disjuncts is None:
            return
        rules = [(d.head, d.body) for d in disjuncts]
    for index, (head_terms, body) in enumerate(rules):
        rule_index = index if _spans_align(ctx, "query") else None
        for name in _single_use_variables(head_terms, body):
            yield _diag(
                "RC009",
                f"variable {name!r} occurs only once in rule {index}; "
                f"it is an existential don't-care",
                ctx.span("query", rule_index, variable=name))


# ---------------------------------------------------------------------------
# RC1xx — constraint rules
# ---------------------------------------------------------------------------


@lint_rule("RC101", "constraint-schema-mismatch", Severity.ERROR,
           "a containment constraint does not validate against the "
           "database/master schemas",
           "§2.1 (CCs q(D) ⊆ p(Dm) over schemas (R, Rm))")
def _check_constraint_schema(ctx: RuleContext) -> Iterator[Diagnostic]:
    if ctx.schema is None or ctx.master_schema is None:
        return
    for index, constraint in enumerate(ctx.constraints):
        try:
            constraint.validate(ctx.schema, ctx.master_schema)
        except ReproError as exc:
            ctx.invalid_constraints.add(index)
            yield _diag(
                "RC101",
                f"constraint {constraint.name!r}: {exc}",
                ctx.source_span(ctx.constraint_source(index)))


@lint_rule("RC102", "vacuous-constraint", Severity.WARNING,
           "the constraint's query is unsatisfiable, so the CC holds on "
           "every (D, Dm) and constrains nothing",
           "§2.1; union-find equality folding on the CC's tableau")
def _check_vacuous_constraints(ctx: RuleContext) -> Iterator[Diagnostic]:
    if ctx.schema is None:
        return
    for index, constraint in ctx.valid_constraints():
        disjuncts = ctx.constraint_disjuncts(constraint)
        if not disjuncts:
            continue
        tableaux = [_tableau_or_none(d, ctx.schema) for d in disjuncts]
        if any(t is None for t in tableaux):
            continue
        if any(t.satisfiable for t in tableaux):
            continue
        ctx.redundant_constraints.append(constraint.name)
        yield _diag(
            "RC102",
            f"constraint {constraint.name!r} is vacuous: its query is "
            f"unsatisfiable, so q(D) = ∅ ⊆ p(Dm) holds on every pair "
            f"(D, Dm)",
            ctx.source_span(ctx.constraint_source(index)),
            Fixit("drop the vacuous constraint"))


@lint_rule("RC103", "subsumed-constraint", Severity.WARNING,
           "the constraint is implied by another CC with the same "
           "projection whose query contains it",
           "Chandra–Merlin / Sagiv–Yannakakis containment; §2.1",
           cost="deep")
def _check_subsumed_constraints(ctx: RuleContext) -> Iterator[Diagnostic]:
    if ctx.schema is None:
        return
    candidates = [(i, c) for i, c in ctx.valid_constraints()
                  if c.name not in ctx.redundant_constraints
                  and ctx.constraint_disjuncts(c)]
    flagged: set[int] = set()
    for position, (i, first) in enumerate(candidates):
        for j, second in candidates[position + 1:]:
            if i in flagged and j in flagged:
                continue
            if first.projection != second.projection:
                continue
            if getattr(first.query, "arity", None) != getattr(
                    second.query, "arity", None):
                continue
            try:
                forward = is_ucq_contained_in(
                    first.query, second.query, ctx.schema,
                    on_inequality="unknown")
                backward = is_ucq_contained_in(
                    second.query, first.query, ctx.schema,
                    on_inequality="unknown")
            except ReproError:
                continue
            # q_i ⊆ q_j with equal projections means φ_j implies φ_i:
            # q_i(D) ⊆ q_j(D) ⊆ p(Dm) whenever φ_j holds.
            if forward and backward and j not in flagged:
                flagged.add(j)
                ctx.redundant_constraints.append(second.name)
                yield _diag(
                    "RC103",
                    f"constraint {second.name!r} duplicates "
                    f"{first.name!r}: equivalent queries, identical "
                    f"projection",
                    ctx.source_span(ctx.constraint_source(j)),
                    Fixit(f"drop {second.name!r}; {first.name!r} "
                          f"already enforces it"))
            elif forward and not backward and i not in flagged:
                flagged.add(i)
                ctx.redundant_constraints.append(first.name)
                yield _diag(
                    "RC103",
                    f"constraint {first.name!r} is subsumed by "
                    f"{second.name!r}: q[{first.name}] ⊆ "
                    f"q[{second.name}] and both project into the same "
                    f"master target",
                    ctx.source_span(ctx.constraint_source(i)),
                    Fixit(f"drop {first.name!r}; {second.name!r} "
                          f"already enforces it"))
            elif backward and not forward and j not in flagged:
                flagged.add(j)
                ctx.redundant_constraints.append(second.name)
                yield _diag(
                    "RC103",
                    f"constraint {second.name!r} is subsumed by "
                    f"{first.name!r}: q[{second.name}] ⊆ "
                    f"q[{first.name}] and both project into the same "
                    f"master target",
                    ctx.source_span(ctx.constraint_source(j)),
                    Fixit(f"drop {second.name!r}; {first.name!r} "
                          f"already enforces it"))


@lint_rule("RC104", "nonmonotone-constraint", Severity.WARNING,
           "a constraint's query language is outside the decidable "
           "fragment; exact deciders refuse the configuration",
           "Theorems 3.1 / 4.1 (undecidability beyond ∃FO⁺)")
def _check_constraint_language(ctx: RuleContext) -> Iterator[Diagnostic]:
    for index, constraint in enumerate(ctx.constraints):
        language = getattr(constraint.query, "language", None)
        if language in DECIDABLE_LANGUAGES or language is None:
            continue
        yield _diag(
            "RC104",
            f"constraint {constraint.name!r} uses {language}: "
            f"RCDP/RCQP are undecidable for this configuration "
            f"(Theorems 3.1/4.1); exact deciders will refuse it",
            ctx.source_span(ctx.constraint_source(index)))


# ---------------------------------------------------------------------------
# RC2xx — scenario rules
# ---------------------------------------------------------------------------


@lint_rule("RC201", "not-partially-closed", Severity.ERROR,
           "the database violates a containment constraint — (D, Dm) is "
           "not partially closed, so RCDP is undefined on it",
           "§2.1 (partially closed databases); RCDP precondition",
           decider=False)
def _check_partially_closed(ctx: RuleContext) -> Iterator[Diagnostic]:
    if ctx.database is None or ctx.master is None:
        return
    for index, constraint in ctx.valid_constraints():
        try:
            violations = constraint.violating_answers(ctx.database,
                                                      ctx.master)
        except ReproError:
            continue
        if not violations:
            continue
        shown = sorted(violations, key=repr)[:3]
        listed = ", ".join(repr(v) for v in shown)
        more = " …" if len(violations) > len(shown) else ""
        yield _diag(
            "RC201",
            f"(D, Dm) violates {constraint.name!r}: "
            f"{len(violations)} answer(s) of q(D) leave p(Dm), e.g. "
            f"{listed}{more}",
            ctx.source_span(ctx.constraint_source(index)))


@lint_rule("RC202", "unbounded-output-variable", Severity.WARNING,
           "an output variable ranges over an infinite domain no IND "
           "covers — no relatively complete database can exist without "
           "expanding the master data",
           "Proposition 4.3, conditions E3/E4; §2.3 paradigm 3")
def _check_boundedness(ctx: RuleContext) -> Iterator[Diagnostic]:
    from repro.analysis.boundedness import (VariableStatus,
                                            analyze_boundedness)

    if (ctx.query is None or ctx.schema is None
            or not ctx.query_schema_ok):
        return
    disjuncts = ctx.cq_disjuncts()
    if not disjuncts:
        return
    constraints = [c for _, c in ctx.valid_constraints()]
    try:
        report = analyze_boundedness(ctx.query, constraints, ctx.schema)
    except ReproError:
        return
    index_by_name = {d.name: i for i, d in enumerate(disjuncts)}
    for variable_report in report.variables:
        if variable_report.status is not VariableStatus.UNBOUNDED:
            continue
        columns = ", ".join(f"{r}.{a}"
                            for r, a in variable_report.columns)
        rule_index = index_by_name.get(variable_report.disjunct)
        if not _spans_align(ctx, "query"):
            rule_index = None
        yield _diag(
            "RC202",
            f"output variable {variable_report.variable.name!r} of "
            f"disjunct {variable_report.disjunct!r} is unbounded "
            f"(fails E3 and E4): no finite domain or covering IND "
            f"bounds it; master the values of {columns} to bound it",
            ctx.span("query", rule_index,
                     variable=variable_report.variable.name))


@lint_rule("RC203", "empty-master-target", Severity.INFO,
           "a constraint's master-side projection is empty, pinning its "
           "query to ∅ — a denial constraint in CC form",
           "Proposition 2.1 (denial constraints as CCs q ⊆ ∅)")
def _check_empty_master_target(ctx: RuleContext) -> Iterator[Diagnostic]:
    if ctx.master is None:
        return
    for index, constraint in ctx.valid_constraints():
        if constraint.name in ctx.redundant_constraints:
            continue
        try:
            rows = constraint.projection.evaluate(ctx.master)
        except ReproError:
            continue
        if rows:
            continue
        target = ("∅" if constraint.projection.is_empty_target
                  else f"{constraint.projection!r} (currently empty on "
                       f"Dm)")
        yield _diag(
            "RC203",
            f"constraint {constraint.name!r} projects into {target}: "
            f"it forces q(D) = ∅, i.e. it acts as a denial constraint",
            ctx.source_span(ctx.constraint_source(index)))
