"""Static boundedness analysis: *why* is a query (not) relatively
complete, and what master data would fix it?

Section 2.3's third paradigm says that when no relatively complete
database exists, the master data must be expanded — but expanded *how*?
The syntactic characterization of Proposition 4.3 (conditions E3/E4)
pinpoints the culprit: an output variable over an infinite domain that no
IND covers.  This module turns that into a per-variable report naming the
database columns where the unbounded variable lives — exactly the
attributes a new master relation would need to bound.

The analysis is syntactic (sound for IND constraint sets, heuristic
guidance beyond), deliberately cheap, and used by the audit workflow to
narrate EXPAND_MASTER_DATA verdicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.queries.tableau import Tableau
from repro.queries.terms import Var
from repro.relational.schema import DatabaseSchema

__all__ = ["VariableStatus", "VariableReport", "BoundednessReport",
           "analyze_boundedness"]


class VariableStatus(enum.Enum):
    """How an output variable is bounded (or not)."""

    FINITE_DOMAIN = "finite-domain"      # condition E3
    IND_COVERED = "ind-covered"          # condition E4
    CONSTRAINED = "constrained"          # touched by a non-IND CC (may
    #                                      still be bounded — needs the
    #                                      full E2 search to know)
    UNBOUNDED = "unbounded"              # nothing constrains it


@dataclass(frozen=True)
class VariableReport:
    """Analysis of one output variable of one disjunct."""

    disjunct: str
    variable: Var
    status: VariableStatus
    #: database columns (relation, attribute) where the variable occurs —
    #: the candidates for new master-data coverage when unbounded.
    columns: tuple[tuple[str, str], ...]
    #: name of the covering IND (when IND_COVERED) or the touching CCs.
    constraints: tuple[str, ...] = ()

    def __repr__(self) -> str:
        where = ", ".join(f"{r}.{a}" for r, a in self.columns)
        return (f"{self.variable!r}@{self.disjunct}: {self.status.value} "
                f"[{where}]")


@dataclass(frozen=True)
class BoundednessReport:
    """All output variables of all disjuncts, analyzed."""

    variables: tuple[VariableReport, ...]

    @property
    def unbounded(self) -> tuple[VariableReport, ...]:
        return tuple(v for v in self.variables
                     if v.status is VariableStatus.UNBOUNDED)

    @property
    def syntactically_bounded(self) -> bool:
        """True when every output variable satisfies E3 or E4 — for IND
        constraint sets this means the query is relatively complete
        (Proposition 4.3, modulo the no-valid-valuation case)."""
        return all(v.status in (VariableStatus.FINITE_DOMAIN,
                                VariableStatus.IND_COVERED)
                   for v in self.variables)

    def master_data_suggestions(self) -> list[str]:
        """Human-readable expansion advice for the unbounded variables."""
        suggestions = []
        for report in self.unbounded:
            columns = ", ".join(f"{r}.{a}" for r, a in report.columns)
            suggestions.append(
                f"master the values of {columns} (output variable "
                f"{report.variable.name!r} of {report.disjunct} is "
                f"unbounded)")
        return suggestions

    def __repr__(self) -> str:
        return "\n".join(repr(v) for v in self.variables) or \
            "BoundednessReport[no output variables]"


def _column_names(tableau: Tableau, variable: Var,
                  schema: DatabaseSchema) -> tuple[tuple[str, str], ...]:
    columns = []
    for relation_name, position in tableau.columns_of(variable):
        relation = schema.relation(relation_name)
        columns.append((relation_name,
                        relation.attribute_names[position]))
    return tuple(dict.fromkeys(columns))


def _covering_ind(tableau: Tableau, variable: Var,
                  constraints: Sequence[ContainmentConstraint],
                  ) -> ContainmentConstraint | None:
    for constraint in constraints:
        if not constraint.is_ind():
            continue
        relation, positions = constraint.ind_source()
        position_set = set(positions)
        for row in tableau.rows:
            if row.relation != relation:
                continue
            for position, term in enumerate(row.terms):
                if term == variable and position in position_set:
                    return constraint
    return None


def _touching_constraints(tableau: Tableau, variable: Var,
                          constraints: Sequence[ContainmentConstraint],
                          ) -> tuple[str, ...]:
    """Non-IND CCs whose queries mention a relation+column where the
    variable occurs (a cheap over-approximation of 'may bound it')."""
    occupied = set()
    for relation, position in tableau.columns_of(variable):
        occupied.add((relation, position))
    names = []
    for constraint in constraints:
        if constraint.is_ind():
            continue
        for disjunct in getattr(constraint.query, "to_cq_disjuncts",
                                lambda: [])():
            for atom in disjunct.relation_atoms:
                for position in range(atom.arity):
                    if (atom.relation, position) in occupied:
                        names.append(constraint.name)
                        break
    return tuple(dict.fromkeys(names))


def analyze_boundedness(query: Any,
                        constraints: Sequence[ContainmentConstraint],
                        schema: DatabaseSchema) -> BoundednessReport:
    """Classify every output variable of every satisfiable disjunct.

    For IND-only constraint sets the report decides Proposition 4.3's
    syntactic conditions exactly; CQ and richer constraints are reported
    as CONSTRAINED (their boundedness needs the semantic E2 search in
    :func:`repro.core.rcqp.decide_rcqp`).
    """
    reports: list[VariableReport] = []
    for disjunct in query.to_cq_disjuncts():
        tableau = Tableau(disjunct, schema)
        if not tableau.satisfiable:
            continue
        for variable in sorted(tableau.summary_variables(),
                               key=lambda v: v.name):
            columns = _column_names(tableau, variable, schema)
            if tableau.has_finite_domain(variable):
                reports.append(VariableReport(
                    disjunct=disjunct.name, variable=variable,
                    status=VariableStatus.FINITE_DOMAIN, columns=columns))
                continue
            ind = _covering_ind(tableau, variable, constraints)
            if ind is not None:
                reports.append(VariableReport(
                    disjunct=disjunct.name, variable=variable,
                    status=VariableStatus.IND_COVERED, columns=columns,
                    constraints=(ind.name,)))
                continue
            touching = _touching_constraints(tableau, variable,
                                             constraints)
            status = (VariableStatus.CONSTRAINED if touching
                      else VariableStatus.UNBOUNDED)
            reports.append(VariableReport(
                disjunct=disjunct.name, variable=variable, status=status,
                columns=columns, constraints=touching))
    return BoundednessReport(variables=tuple(reports))
