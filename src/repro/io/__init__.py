"""JSON serialization for problem instances."""

from repro.io.json_io import (constraint_from_dict, constraint_to_dict,
                              dump_bundle, instance_from_dict,
                              instance_to_dict, load_bundle,
                              query_from_dict, query_to_dict,
                              schema_from_dict, schema_to_dict)

__all__ = [
    "constraint_from_dict", "constraint_to_dict", "dump_bundle",
    "instance_from_dict", "instance_to_dict", "load_bundle",
    "query_from_dict", "query_to_dict", "schema_from_dict",
    "schema_to_dict",
]
