"""JSON (de)serialization for schemas, instances, queries, constraints.

The wire format is intentionally explicit:

* schema: ``{"relations": [{"name": "R", "attributes":
  [{"name": "a"}, {"name": "b", "domain": ["x", "y"]}]}]}`` — an attribute
  without ``"domain"`` is infinite, with it a finite domain;
* instance: ``{"R": [[1, 2], [3, 4]]}``;
* query: ``{"language": "CQ" | "UCQ" | "FP", "text": "...", "goal": "T"}``
  using the textual rule syntax of :mod:`repro.queries.parser`;
* constraint: ``{"name": "φ0", "query": {...},
  "projection": {"relation": "DCust", "columns": [0]}}`` where a null
  relation means the empty target ``∅``.

Values round-trip as JSON scalars; tuples inside instances become lists on
disk and tuples again on load.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.errors import ReproError
from repro.queries.parser import parse_program, parse_query
from repro.relational.domain import FiniteDomain, INFINITE
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

__all__ = [
    "schema_to_dict", "schema_from_dict",
    "instance_to_dict", "instance_from_dict",
    "query_to_dict", "query_from_dict",
    "constraint_to_dict", "constraint_from_dict",
    "incomplete_to_dict", "incomplete_from_dict",
    "dump_bundle", "load_bundle",
]


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


def schema_to_dict(schema: DatabaseSchema) -> dict:
    relations = []
    for relation in schema:
        attributes = []
        for attribute in relation.attributes:
            entry: dict[str, Any] = {"name": attribute.name}
            if not attribute.domain.is_infinite:
                entry["domain"] = sorted(
                    attribute.domain.values, key=repr)
            attributes.append(entry)
        relations.append({"name": relation.name, "attributes": attributes})
    return {"relations": relations}


def schema_from_dict(data: dict) -> DatabaseSchema:
    relations = []
    for relation in data["relations"]:
        attributes = []
        for attribute in relation["attributes"]:
            if "domain" in attribute:
                domain = FiniteDomain(attribute["domain"],
                                      name=f"{attribute['name']}-domain")
            else:
                domain = INFINITE
            attributes.append(Attribute(attribute["name"], domain))
        relations.append(RelationSchema(relation["name"], attributes))
    return DatabaseSchema(relations)


# ---------------------------------------------------------------------------
# Instances
# ---------------------------------------------------------------------------


def instance_to_dict(instance: Instance) -> dict:
    # Rows are ordered by a type-aware key rather than plain ``sorted``:
    # a relation mixing int and str values in one column (generated
    # corpora do this) would otherwise crash the comparison.  The key is
    # deterministic, so identical instances serialize byte-identically.
    return {name: [list(row) for row in
                   sorted(rows, key=_row_sort_key)]
            for name, rows in instance if rows}


def _row_sort_key(row: tuple) -> tuple:
    # Values of one type compare natively; across types the type name
    # decides, so int/str mixtures order deterministically.
    return tuple((type(value).__name__, value) for value in row)


def instance_from_dict(data: dict, schema: DatabaseSchema, *,
                       validate: bool = True) -> Instance:
    """Build an :class:`Instance` from the wire format.

    ``validate=False`` is the bulk-load fast path: arity and domain
    checks are skipped, which is sound for bundles this module wrote
    itself (``dump_bundle`` only serializes validated instances).
    """
    contents = {name: {tuple(row) for row in rows}
                for name, rows in data.items()}
    return Instance(schema, contents, validate=validate)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def query_to_dict(query: Any) -> dict:
    language = getattr(query, "language", None)
    if language in ("CQ", "UCQ"):
        disjuncts = query.to_cq_disjuncts()
        text = "\n".join(_render_cq(d) for d in disjuncts)
        return {"language": language, "text": text}
    if language == "FP":
        rename = _variable_renaming(
            name for r in query.rules
            for atom in (r.head, *r.body)
            for name in _atom_variable_names(atom))
        text = "\n".join(_render_rule(r.head, r.body, rename)
                         for r in query.rules)
        return {"language": "FP", "text": text, "goal": query.goal}
    raise ReproError(
        f"JSON serialization supports CQ/UCQ/FP queries, not {language}")


_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")


def _atom_variable_names(atom: Any) -> list[str]:
    from repro.queries.atoms import RelAtom
    from repro.queries.terms import Var

    terms = (atom.terms if isinstance(atom, RelAtom)
             else (atom.left, atom.right))
    return [t.name for t in terms if isinstance(t, Var)]


def _variable_renaming(names: Iterable[str]) -> dict[str, str]:
    """Map variable names onto parser-legal identifiers.

    Queries compiled from constraint classes embed the constraint name
    in their variables (``manage⊆managem.eid1``), which the textual rule
    syntax cannot express; those are rewritten (collision-free) so the
    bundle round-trips.  Legal names pass through untouched.
    """
    distinct = sorted(set(names))
    used = {name for name in distinct if _IDENTIFIER_RE.match(name)}
    rename: dict[str, str] = {}
    for name in distinct:
        if _IDENTIFIER_RE.match(name):
            rename[name] = name
            continue
        base = re.sub(r"[^A-Za-z0-9_]+", "_", name).strip("_") or "v"
        if not re.match(r"[A-Za-z_]", base):
            base = "v_" + base
        candidate, suffix = base, 1
        while candidate in used:
            suffix += 1
            candidate = f"{base}_{suffix}"
        used.add(candidate)
        rename[name] = candidate
    return rename


def _render_term(term: Any, rename: dict[str, str] | None = None) -> str:
    from repro.queries.terms import Var

    if isinstance(term, Var):
        return rename.get(term.name, term.name) if rename else term.name
    value = term.value
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ReproError(
            f"the textual wire format supports int and str constants "
            f"only, got {value!r} ({type(value).__name__})")
    if isinstance(value, int):
        return str(value)
    if "'" in value:
        raise ReproError(
            f"string constant {value!r} contains a quote; not "
            f"representable in the textual wire format")
    return "'" + value + "'"


def _render_atom(atom: Any, rename: dict[str, str] | None = None) -> str:
    from repro.queries.atoms import Eq, RelAtom

    if isinstance(atom, RelAtom):
        inner = ", ".join(_render_term(t, rename) for t in atom.terms)
        return f"{atom.relation}({inner})"
    symbol = "=" if isinstance(atom, Eq) else "!="
    return (f"{_render_term(atom.left, rename)} {symbol} "
            f"{_render_term(atom.right, rename)}")


def _render_rule(head: Any, body: Any,
                 rename: dict[str, str] | None = None) -> str:
    head_text = _render_atom(head, rename)
    if not body:
        return head_text
    return head_text + " :- " + ", ".join(_render_atom(a, rename)
                                          for a in body)


def _render_cq(query: Any) -> str:
    from repro.queries.atoms import RelAtom

    head = RelAtom("Q", query.head)
    rename = _variable_renaming(
        name for atom in (head, *query.body)
        for name in _atom_variable_names(atom))
    return _render_rule(head, query.body, rename)


def query_from_dict(data: dict) -> Any:
    language = data.get("language", "CQ")
    if language in ("CQ", "UCQ"):
        return parse_query(data["text"])
    if language == "FP":
        return parse_program(data["text"], goal=data["goal"])
    raise ReproError(f"unsupported query language {language!r}")


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------


def constraint_to_dict(constraint: ContainmentConstraint) -> dict:
    projection = constraint.projection
    return {
        "name": constraint.name,
        "query": query_to_dict(constraint.query),
        "projection": {
            "relation": projection.relation,
            "columns": list(projection.columns),
        },
    }


def constraint_from_dict(data: dict) -> ContainmentConstraint:
    projection_data = data["projection"]
    if projection_data["relation"] is None:
        projection = Projection.empty()
    else:
        projection = Projection.on(projection_data["relation"],
                                   projection_data["columns"])
    return ContainmentConstraint(
        query_from_dict(data["query"]), projection,
        name=data.get("name", "φ"))


# ---------------------------------------------------------------------------
# Bundles
# ---------------------------------------------------------------------------


def dump_bundle(path: str, *, schema: DatabaseSchema,
                master_schema: DatabaseSchema, database: Instance,
                master: Instance, query: Any,
                constraints: list[ContainmentConstraint],
                extra: dict | None = None) -> None:
    """Write a whole RCDP problem instance to a JSON file.

    *extra* merges additional top-level blocks into the payload —
    ``"expected"`` golden verdicts, ``"trace"`` expectations, corpus
    metadata.  :func:`load_bundle` ignores unknown keys, so the blocks
    ride along without affecting the problem instance; they may not
    shadow the six problem keys.
    """
    payload = {
        "schema": schema_to_dict(schema),
        "master_schema": schema_to_dict(master_schema),
        "database": instance_to_dict(database),
        "master": instance_to_dict(master),
        "query": query_to_dict(query),
        "constraints": [constraint_to_dict(c) for c in constraints],
    }
    for key, value in (extra or {}).items():
        if key in payload:
            raise ReproError(
                f"bundle extra block {key!r} would shadow a problem key")
        payload[key] = value
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True,
                  ensure_ascii=False)
        handle.write("\n")


def load_bundle(path: str, *, validate: bool = True,
                backend: str | None = None) -> dict:
    """Load a bundle written by :func:`dump_bundle`; returns a dict with
    keys ``schema``, ``master_schema``, ``database``, ``master``,
    ``query``, ``constraints``.

    ``validate=False`` skips per-row arity/domain validation (the bulk
    fast path for trusted bundles).  *backend* eagerly attaches that
    storage backend (``"python"``, ``"columnar"``, ``"sqlite"``) to the
    loaded instances so the first decision doesn't pay the load cost.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = schema_from_dict(payload["schema"])
    master_schema = schema_from_dict(payload["master_schema"])
    database = instance_from_dict(payload["database"], schema,
                                  validate=validate)
    master = instance_from_dict(payload["master"], master_schema,
                                validate=validate)
    if backend is not None:
        database.storage(backend)
        master.storage(backend)
    return {
        "schema": schema,
        "master_schema": master_schema,
        "database": database,
        "master": master,
        "query": query_from_dict(payload["query"]),
        "constraints": [constraint_from_dict(c)
                        for c in payload["constraints"]],
    }


# ---------------------------------------------------------------------------
# Incomplete databases (marked nulls, c-tables)
# ---------------------------------------------------------------------------

_NULL_KEY = "⊥"


def _encode_value(value: Any) -> Any:
    from repro.incomplete.nulls import MarkedNull

    if isinstance(value, MarkedNull):
        return {_NULL_KEY: value.name}
    return value


def _decode_value(value: Any) -> Any:
    from repro.incomplete.nulls import MarkedNull

    if isinstance(value, dict) and set(value) == {_NULL_KEY}:
        return MarkedNull(value[_NULL_KEY])
    return value


def incomplete_to_dict(database: Any) -> dict:
    """Serialize an :class:`~repro.incomplete.tables.IncompleteDatabase`.

    Marked nulls become ``{"⊥": name}`` objects; row conditions become
    ``[op, left, right]`` triples with ``op ∈ {"=", "!="}``.
    """
    from repro.incomplete.conditions import EqCondition

    payload: dict[str, list] = {}
    for name in database.schema.relation_names:
        rows = []
        for conditional in database.rows(name):
            entry: dict[str, Any] = {
                "row": [_encode_value(v) for v in conditional.row]}
            if not conditional.condition.is_trivially_true:
                entry["if"] = [
                    ["=" if isinstance(atom, EqCondition) else "!=",
                     _encode_value(atom.left), _encode_value(atom.right)]
                    for atom in conditional.condition.atoms]
            rows.append(entry)
        if rows:
            payload[name] = rows
    return payload


def incomplete_from_dict(data: dict, schema: DatabaseSchema) -> Any:
    """Inverse of :func:`incomplete_to_dict`."""
    from repro.incomplete.conditions import (Condition, EqCondition,
                                             NeqCondition)
    from repro.incomplete.tables import (ConditionalRow,
                                         IncompleteDatabase)

    contents: dict[str, list] = {}
    for name, rows in data.items():
        decoded = []
        for entry in rows:
            row = tuple(_decode_value(v) for v in entry["row"])
            atoms = []
            for op, left, right in entry.get("if", []):
                kind = EqCondition if op == "=" else NeqCondition
                atoms.append(kind(_decode_value(left),
                                  _decode_value(right)))
            decoded.append(ConditionalRow(row, Condition(atoms)))
        contents[name] = decoded
    return IncompleteDatabase(schema, contents)
