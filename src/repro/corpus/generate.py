"""Seeded scenario generation across the four domain families.

Every builder constructs a *verdict-by-construction* scenario: the
instances are assembled so the target verdict (relatively COMPLETE or
INCOMPLETE) follows from the constraint structure, then the python
serial decider is run as an oracle and the generator refuses to emit
any scenario whose actual verdict disagrees (:class:`CorpusError`).
The oracle's verdict, witness, and exact missing-answer count are
stamped into the bundle's ``"expected"`` block, so every generated
bundle doubles as a golden regression fixture.

Family shapes:

* ``crm`` — the paper's running example (:class:`CRMScenario`) with
  finite attribute domains derived from the generated data, the φ0 /
  cust01 CCs, the ``Manage ⊆ Managem`` IND, and (odd indices) the φ1
  at-most-*k* denial;
* ``erp`` — purchase orders with three INDs into vendor/dept/item
  master relations, plus a denial over the nullary ``Freeze()`` flag
  (always present: it pins the nullary-relation round-trip);
* ``scm`` — :class:`SCMScenario` with *mixed int/str shipment ids*
  (pinning the mixed-type row-sort fix) and, on odd indices, the
  shipment-key FD compiled to denial CCs;
* ``hierarchy`` — a bare management tree under a two-column IND, with
  (odd indices) a no-self-management denial.

Instance sizes are deliberately tiny (≤ tens of rows): the corpus buys
coverage through scenario *count* and axis diversity, and every
scenario must stay cheap enough to decide ~6 times (backend × worker
matrix) plus three counting passes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from random import Random
from typing import Callable, Sequence

from repro.constraints.containment import ContainmentConstraint
from repro.constraints.denial import DenialConstraint
from repro.constraints.ind import InclusionDependency
from repro.core.rcdp import decide_rcdp
from repro.corpus.diversity import ensure_diverse
from repro.corpus.spec import (FAMILIES, GENERATOR_VERSION, ScenarioSpec,
                               scenario_rng, spec_for)
from repro.errors import CorpusError
from repro.incomplete.counting import count_missing_answers
from repro.io.json_io import dump_bundle
from repro.mdm.scenario import CRMScenario, CustomerRecord
from repro.mdm.scm import SCMScenario
from repro.queries.atoms import eq, neq, rel
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.domain import FiniteDomain, INFINITE
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

__all__ = ["BuiltScenario", "build_scenario", "dump_scenario",
           "generate_corpus", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"


@dataclass
class BuiltScenario:
    """One generated problem instance, before oracle verification."""

    spec: ScenarioSpec
    schema: DatabaseSchema
    master_schema: DatabaseSchema
    database: Instance
    master: Instance
    query: object
    constraints: list[ContainmentConstraint]
    #: constraint classes present: subset of {"cc", "ind", "denial"}
    classes: tuple[str, ...]


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _attr(name: str, values: set) -> Attribute:
    """An attribute whose domain is the finite *values* set.

    Finite domains make the generated query heads bounded (condition
    E3) and keep the valuation enumeration proportional to the data
    rather than to the global active domain.  Sets of fewer than two
    values stay infinite (:class:`FiniteDomain` requires a genuine
    choice).
    """
    if len(values) < 2:
        return Attribute(name, INFINITE)
    return Attribute(name, FiniteDomain(values, name=f"{name}-domain"))


def _rebuild(instance: Instance, schema: DatabaseSchema) -> Instance:
    return Instance(schema, {name: set(rows) for name, rows in instance})


# ---------------------------------------------------------------------------
# Family: CRM (the paper's running example)
# ---------------------------------------------------------------------------

_CRM_NAMES = ("ann", "bob", "cecilia", "dave", "erin",
              "fay", "gil", "hana")
_CRM_ACS = ("908", "212", "973")


def _domestic_cust_atoms(c, n, ccv, a, p) -> list:
    return [rel("Cust", c, n, ccv, a, p), eq(ccv, "01")]


def _build_crm(spec: ScenarioSpec, rng: Random) -> BuiltScenario:
    n = 3 if spec.size == "small" else 5
    pool = list(_CRM_ACS)
    rng.shuffle(pool)
    acs = [pool[i % len(pool)] for i in range(n)]
    domestic = [CustomerRecord(f"c{i + 1}", _CRM_NAMES[i], acs[i],
                               f"555-00{10 + i}") for i in range(n)]
    international = [CustomerRecord("i1", "ines", "+44-20", "555-9001")]
    support = {("e0" if i % 2 == 0 else "e1", "sales", r.cid)
               for i, r in enumerate(domestic) if rng.random() < 0.8}
    if rng.random() < 0.5:
        support.add(("e1", "sales", "i1"))
    manage_master = {("e2", "e0"), ("e2", "e1"), ("e3", "e2")}
    scenario = CRMScenario(domestic=domestic, international=international,
                           support=support, manage_master=manage_master,
                           manage=set(manage_master))

    missing: list[str] = []
    victim = None
    if spec.target == "incomplete":
        victim = domestic[rng.randrange(n)]
        missing = [victim.cid]

    c, nm, ccv, a, p = (var(x) for x in ("c", "nm", "ccv", "a", "p"))
    if spec.tier == "CQ":
        ac0 = victim.ac if victim else rng.choice(acs)
        query = cq([c], _domestic_cust_atoms(c, nm, ccv, a, p)
                   + [eq(a, ac0)], name=f"Qac[{ac0}]")
    elif spec.tier == "CQ!=":
        if victim:
            excluded = rng.choice(
                [x for x in _CRM_ACS if x != victim.ac])
        else:
            excluded = rng.choice(_CRM_ACS)
        query = cq([c], _domestic_cust_atoms(c, nm, ccv, a, p)
                   + [neq(a, excluded)], name=f"Qnotac[{excluded}]")
    else:
        ac_a = victim.ac if victim else rng.choice(acs)
        ac_b = rng.choice([x for x in _CRM_ACS if x != ac_a])
        query = ucq([
            cq([c], _domestic_cust_atoms(c, nm, ccv, a, p)
               + [eq(a, ac_a)], name=f"Qac[{ac_a}]"),
            cq([c], _domestic_cust_atoms(c, nm, ccv, a, p)
               + [eq(a, ac_b)], name=f"Qac[{ac_b}]"),
        ], name=f"Qac[{ac_a}|{ac_b}]")

    constraints = scenario.default_constraints()
    classes = ("cc", "ind")
    if spec.index % 2 == 1:
        constraints.append(scenario.phi1_at_most_k(4))
        classes = ("cc", "ind", "denial")

    # Domains are computed over the *full* scenario (master included),
    # so a customer dropped from D to create incompleteness is still a
    # candidate value — the decider must be able to put them back.
    records = domestic + international
    cids = {r.cid for r in records}
    names = {r.name for r in records}
    area_codes = {r.ac for r in records}
    phones = {r.phn for r in records}
    country_codes = {"01", "44"}
    eids = {"e0", "e1", "e2", "e3"}
    schema = DatabaseSchema([
        RelationSchema("Cust", [
            _attr("cid", cids), _attr("name", names),
            _attr("cc", country_codes), _attr("ac", area_codes),
            _attr("phn", phones)]),
        RelationSchema("Supt", [
            _attr("eid", eids), Attribute("dept", INFINITE),
            _attr("cid", cids)]),
        RelationSchema("Manage", [_attr("eid1", eids),
                                  _attr("eid2", eids)]),
    ])
    master_schema = DatabaseSchema([
        RelationSchema("DCust", [
            _attr("cid", cids), _attr("name", names),
            _attr("ac", area_codes), _attr("phn", phones)]),
        RelationSchema("Managem", [_attr("eid1", eids),
                                   _attr("eid2", eids)]),
        RelationSchema("Empty", [Attribute("z", INFINITE)]),
    ])
    return BuiltScenario(
        spec=spec, schema=schema, master_schema=master_schema,
        database=_rebuild(scenario.database(missing_customers=missing),
                          schema),
        master=_rebuild(scenario.master(), master_schema),
        query=query, constraints=constraints, classes=classes)


# ---------------------------------------------------------------------------
# Family: ERP (purchase orders, nullary Freeze flag)
# ---------------------------------------------------------------------------


def _build_erp(spec: ScenarioSpec, rng: Random) -> BuiltScenario:
    n = 3 if spec.size == "small" else 4
    vendors = [f"v{i}" for i in range(n)]
    depts = ["d0", "d1"]
    items = ["i0", "i1"]
    schema = DatabaseSchema([
        RelationSchema("PO", ["po", "vendor", "dept"]),
        RelationSchema("Recv", ["po", "item"]),
        RelationSchema("Freeze", []),
    ])
    master_schema = DatabaseSchema([
        RelationSchema("VendorM", ["vendor"]),
        RelationSchema("DeptM", ["dept"]),
        RelationSchema("ItemM", ["item"]),
    ])
    master = Instance(master_schema, {
        "VendorM": {(v,) for v in vendors},
        "DeptM": {(d,) for d in depts},
        "ItemM": {(i,) for i in items},
    })

    victim = vendors[rng.randrange(n)] if spec.target == "incomplete" \
        else None
    pos: set[tuple[str, str, str]] = set()
    recv: set[tuple[str, str]] = set()
    counter = 0

    def add_po(vendor: str, dept: str, item: str | None = None) -> None:
        nonlocal counter
        po_id = f"po{counter}"
        counter += 1
        pos.add((po_id, vendor, dept))
        if item is not None:
            recv.add((po_id, item))

    for vendor in vendors:
        if spec.tier == "CQ":
            # Q: vendors with a PO in dept d0.
            if vendor == victim:
                add_po(vendor, "d1")
            else:
                add_po(vendor, "d0")
                if rng.random() < 0.5:
                    add_po(vendor, "d1", item=rng.choice(items))
        elif spec.tier == "CQ!=":
            # Q: vendors with a PO outside dept d0.
            if vendor == victim:
                add_po(vendor, "d0")
            else:
                add_po(vendor, "d1")
                if rng.random() < 0.5:
                    add_po(vendor, "d0")
        else:
            # Q: vendors with a d0 PO, or with a received i0 item.
            if vendor == victim:
                add_po(vendor, "d1", item="i1")
            elif rng.random() < 0.5:
                add_po(vendor, "d0")
            else:
                add_po(vendor, "d1", item="i0")
    database = Instance(schema, {"PO": pos, "Recv": recv})

    po, v, d, i = (var(x) for x in ("po", "v", "d", "i"))
    if spec.tier == "CQ":
        query = cq([v], [rel("PO", po, v, d), eq(d, "d0")], name="Qd0")
    elif spec.tier == "CQ!=":
        query = cq([v], [rel("PO", po, v, d), neq(d, "d0")],
                   name="Qnotd0")
    else:
        query = ucq([
            cq([v], [rel("PO", po, v, d), eq(d, "d0")], name="Qd0"),
            cq([v], [rel("PO", po, v, d), rel("Recv", po, i),
                     eq(i, "i0")], name="Qrecv"),
        ], name="Qd0|recv")

    constraints = [
        InclusionDependency("PO", ["vendor"], "VendorM", ["vendor"],
                            name="po⊆vendorm").to_containment_constraint(
            schema, master_schema),
        InclusionDependency("PO", ["dept"], "DeptM", ["dept"],
                            name="po⊆deptm").to_containment_constraint(
            schema, master_schema),
        InclusionDependency("Recv", ["item"], "ItemM", ["item"],
                            name="recv⊆itemm").to_containment_constraint(
            schema, master_schema),
        # A frozen ledger admits no purchase orders: ¬(Freeze ∧ PO).
        # Freeze is empty in every generated instance, so the denial is
        # satisfied and verdict-neutral — it rides along to pin the
        # nullary-relation round-trip through every ERP bundle.
        DenialConstraint([rel("Freeze"), rel("PO", po, v, d)],
                         name="freeze-no-po").to_containment_constraint(),
    ]
    return BuiltScenario(
        spec=spec, schema=schema, master_schema=master_schema,
        database=database, master=master, query=query,
        constraints=constraints, classes=("ind", "denial"))


# ---------------------------------------------------------------------------
# Family: SCM (supply chain, mixed-type shipment ids)
# ---------------------------------------------------------------------------

_SCM_CATS = ("bolts", "panels")


def _build_scm(spec: ScenarioSpec, rng: Random) -> BuiltScenario:
    k = 3 if spec.size == "small" else 5
    parts = [f"p{i}" for i in range(k)]
    category_of = {parts[i]: _SCM_CATS[i % 2] for i in range(k)}
    catalog = {(part, category_of[part]) for part in parts}
    suppliers = ["acme", "globex"] + (["initech"]
                                      if spec.size == "medium" else [])
    shipments: set[tuple, ...] = set()
    counter = 0

    def ship(supplier: str, part: str) -> None:
        # Alternate int and str shipment ids: mixed-type columns pin the
        # type-aware bundle row ordering.
        nonlocal counter
        sid = counter if counter % 2 == 0 else f"s{counter}"
        counter += 1
        shipments.add((sid, supplier, part))

    target_cat = rng.choice(_SCM_CATS)
    victim = (rng.choice(suppliers) if spec.target == "incomplete"
              else None)
    if spec.tier in ("CQ", "CQ!="):
        # Q(CQ): suppliers that shipped a part of category target_cat;
        # Q(CQ!=): ... of any category except target_cat.
        answer_cat = (target_cat if spec.tier == "CQ" else
                      _SCM_CATS[1 - _SCM_CATS.index(target_cat)])
        in_cat = [p for p in parts if category_of[p] == answer_cat]
        off_cat = [p for p in parts if category_of[p] != answer_cat]
        for supplier in suppliers:
            if supplier == victim:
                ship(supplier, rng.choice(off_cat))
            else:
                ship(supplier, rng.choice(in_cat))
                if rng.random() < 0.5:
                    ship(supplier, rng.choice(off_cat))
        s, sup, p, cat = (var(x) for x in ("s", "sup", "p", "cat"))
        body = [rel("Ship", s, sup, p), rel("PartInfo", p, cat)]
        if spec.tier == "CQ":
            query = cq([sup], body + [eq(cat, target_cat)],
                       name=f"Qsup[{target_cat}]")
        else:
            query = cq([sup], body + [neq(cat, target_cat)],
                       name=f"Qsup[!{target_cat}]")
    else:
        # Q(UCQ): parts shipped by either of the first two suppliers —
        # complete iff together they cover the whole catalog.
        pair = suppliers[:2]
        hole = rng.choice(parts) if spec.target == "incomplete" else None
        for part in parts:
            if part == hole:
                continue
            ship(rng.choice(pair), part)
        if len(suppliers) > 2 and rng.random() < 0.7:
            ship(suppliers[2], rng.choice(parts))
        s, sup, p = (var(x) for x in ("s", "sup", "p"))
        query = ucq([
            cq([p], [rel("Ship", s, pair[0], p)], name=f"Qp[{pair[0]}]"),
            cq([p], [rel("Ship", s, pair[1], p)], name=f"Qp[{pair[1]}]"),
        ], name=f"Qp[{pair[0]}|{pair[1]}]")
        victim = None  # the hole, not a supplier, is the gap

    scenario = SCMScenario(approved_suppliers=set(suppliers),
                           catalog=catalog, shipments=shipments,
                           part_info=set(catalog))
    constraints = [scenario.supplier_ind(), scenario.part_ind(),
                   scenario.part_info_ind()]
    classes = ("ind",)
    if spec.index % 2 == 1:
        constraints.extend(scenario.sid_key())
        classes = ("ind", "denial")
    return BuiltScenario(
        spec=spec, schema=scenario.schema,
        master_schema=scenario.master_schema,
        database=scenario.database(), master=scenario.master(),
        query=query, constraints=constraints, classes=classes)


# ---------------------------------------------------------------------------
# Family: hierarchy (management tree under a two-column IND)
# ---------------------------------------------------------------------------


def _build_hierarchy(spec: ScenarioSpec, rng: Random) -> BuiltScenario:
    m = 5 if spec.size == "small" else 8
    nodes = [f"n{i}" for i in range(m)]
    # Forced spine: n2 → n1 → {n0, n3} gives every query a witness with
    # a deterministic shape; random edges only ever add children n4+.
    edges = {(nodes[1], nodes[0]), (nodes[2], nodes[1]),
             (nodes[1], nodes[3])}
    for child in range(4, m):
        edges.add((nodes[rng.randrange(child)], nodes[child]))

    schema = DatabaseSchema([RelationSchema("Manage", ["eid1", "eid2"])])
    master_schema = DatabaseSchema(
        [RelationSchema("Managem", ["eid1", "eid2"])])
    master = Instance(master_schema, {"Managem": set(edges)})

    g, mid, s, pa = (var(x) for x in ("g", "mid", "s", "pa"))
    if spec.tier == "CQ":
        query = cq([g], [rel("Manage", g, mid), rel("Manage", mid, "n0")],
                   name="Qgrand")
        dropped = (nodes[2], nodes[1])
    elif spec.tier == "CQ!=":
        query = cq([s], [rel("Manage", pa, "n0"), rel("Manage", pa, s),
                         neq(s, "n0")], name="Qsibling")
        dropped = (nodes[1], nodes[3])
    else:
        query = ucq([
            cq([pa], [rel("Manage", pa, "n0")], name="Qparent"),
            cq([g], [rel("Manage", g, mid), rel("Manage", mid, "n0")],
               name="Qgrand"),
        ], name="Qparent|grand")
        dropped = (nodes[2], nodes[1])

    manage = set(edges)
    if spec.target == "incomplete":
        manage.discard(dropped)
    database = Instance(schema, {"Manage": manage})

    constraints = [InclusionDependency(
        "Manage", ["eid1", "eid2"], "Managem", ["eid1", "eid2"],
        name="manage⊆managem").to_containment_constraint(
        schema, master_schema)]
    classes = ("ind",)
    if spec.index % 2 == 1:
        x = var("x")
        constraints.append(DenialConstraint(
            [rel("Manage", x, x)],
            name="no-self-manage").to_containment_constraint())
        classes = ("ind", "denial")
    return BuiltScenario(
        spec=spec, schema=schema, master_schema=master_schema,
        database=database, master=master, query=query,
        constraints=constraints, classes=classes)


_BUILDERS: dict[str, Callable[[ScenarioSpec, Random], BuiltScenario]] = {
    "crm": _build_crm,
    "erp": _build_erp,
    "scm": _build_scm,
    "hierarchy": _build_hierarchy,
}


def build_scenario(spec: ScenarioSpec) -> BuiltScenario:
    """Build the problem instance for *spec* (no oracle run yet)."""
    try:
        builder = _BUILDERS[spec.family]
    except KeyError:
        raise CorpusError(
            f"unknown corpus family {spec.family!r}; "
            f"expected one of {', '.join(FAMILIES)}") from None
    return builder(spec, scenario_rng(spec.family, spec.seed, spec.index))


# ---------------------------------------------------------------------------
# Sweep generation
# ---------------------------------------------------------------------------


def _verify_against_oracle(built: BuiltScenario) -> tuple[dict, str]:
    """Run the python-serial oracle; return (expected block, verdict).

    Raises :class:`CorpusError` when the actual verdict disagrees with
    the spec's target — a generator bug, never a user error.
    """
    result = decide_rcdp(built.query, built.database, built.master,
                         built.constraints, backend="python", workers=1)
    verdict = result.status.value
    if verdict != built.spec.target:
        raise CorpusError(
            f"scenario {built.spec.name} self-check failed: built for "
            f"target {built.spec.target!r} but the oracle decided "
            f"{verdict!r} ({result.explanation})")
    count = count_missing_answers(built.query, built.database,
                                  built.master, built.constraints,
                                  backend="python")
    if not count.exhaustive or (count.count == 0) != result.is_complete:
        raise CorpusError(
            f"scenario {built.spec.name} self-check failed: "
            f"missing-answer count {count!r} contradicts verdict "
            f"{verdict!r}")
    expected: dict = {"rcdp": verdict, "missing_answers": count.count}
    if result.certificate is not None:
        expected["new_answer"] = list(result.certificate.new_answer)
    return expected, verdict


def _dump_built(path: str, built: BuiltScenario, expected: dict) -> None:
    """Write one oracle-verified scenario with its golden blocks."""
    spec = built.spec
    dump_bundle(path, schema=built.schema,
                master_schema=built.master_schema,
                database=built.database, master=built.master,
                query=built.query, constraints=built.constraints,
                extra={"expected": expected,
                       "corpus": {
                           "family": spec.family, "index": spec.index,
                           "seed": spec.seed, "tier": spec.tier,
                           "size": spec.size, "target": spec.target,
                           "classes": list(built.classes),
                           "generator_version": GENERATOR_VERSION}})


def dump_scenario(path: str, family: str, seed: int,
                  index: int) -> ScenarioSpec:
    """Oracle-verify and export a single generated scenario.

    The golden-export entry point (``examples/export_bundles.py``): the
    written bundle carries the oracle-stamped ``expected`` block, so
    the bundle-corpus regression test treats it like any hand-built
    golden.  Returns the spec that was exported.
    """
    spec = spec_for(family, seed, index)
    built = build_scenario(spec)
    expected, _ = _verify_against_oracle(built)
    _dump_built(path, built, expected)
    return spec


def generate_corpus(out_dir: str, *, seed: int, per_family: int = 25,
                    families: Sequence[str] = FAMILIES,
                    min_per_family: int | None = None) -> dict:
    """Generate ``per_family`` scenarios for each family into *out_dir*.

    Every scenario is oracle-verified before anything is written; the
    diversity gate then vets the whole sweep (raising
    :class:`~repro.errors.DiversityError` on coverage collapse), and
    only a gated sweep reaches disk: bundles plus a ``manifest.json``
    the runner consumes.  Returns the manifest as a dict.
    """
    if per_family < 1:
        raise CorpusError(f"per_family must be ≥ 1, got {per_family}")
    for family in families:
        if family not in _BUILDERS:
            raise CorpusError(
                f"unknown corpus family {family!r}; "
                f"expected one of {', '.join(FAMILIES)}")
    entries = []
    bundles = []
    records = []
    for family in families:
        for index in range(per_family):
            spec = spec_for(family, seed, index)
            built = build_scenario(spec)
            expected, verdict = _verify_against_oracle(built)
            records.append({"family": family, "tier": spec.tier,
                            "classes": built.classes,
                            "verdict": verdict})
            entry = {
                "file": f"{spec.name}.json",
                "family": family, "index": index, "seed": seed,
                "tier": spec.tier, "size": spec.size,
                "target": spec.target, "classes": list(built.classes),
                "verdict": verdict,
                "missing_answers": expected["missing_answers"],
            }
            entries.append(entry)
            bundles.append((built, expected, entry))
    ensure_diverse(records, families=families,
                   min_per_family=min_per_family)

    os.makedirs(out_dir, exist_ok=True)
    for built, expected, entry in bundles:
        _dump_built(os.path.join(out_dir, entry["file"]), built,
                    expected)
    manifest = {
        "generator_version": GENERATOR_VERSION,
        "seed": seed,
        "per_family": per_family,
        "families": list(families),
        "scenarios": entries,
    }
    with open(os.path.join(out_dir, MANIFEST_NAME), "w",
              encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True,
                  ensure_ascii=False)
        handle.write("\n")
    return manifest
