"""Scenario-corpus axes and specifications.

The corpus sweeps four generator axes, each of which changes what the
deciders have to prove:

* **family** — the application domain shape: the paper's CRM running
  example, an ERP purchase-order schema (with a nullary freeze flag),
  the SCM supply-chain scenario, and a bare management hierarchy;
* **tier** — query language: plain CQs, CQs with ``≠`` comparisons,
  and genuine unions (UCQ);
* **constraint classes** — which of the paper's compiled constraint
  forms appear: general CCs, INDs compiled to CCs, and denial
  constraints (``q ⊆ ∅``);
* **size / target verdict** — instance scale and whether the scenario
  is constructed to be relatively COMPLETE or INCOMPLETE.

A :class:`ScenarioSpec` pins one point on that grid; the generator maps
``(family, seed, index)`` to a spec deterministically, so the same seed
always reproduces the same corpus byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

__all__ = ["ScenarioSpec", "FAMILIES", "TIERS", "SIZES", "TARGETS",
           "CONSTRAINT_CLASSES", "GENERATOR_VERSION", "scenario_rng",
           "spec_for"]

#: Bumped whenever a family builder changes its output for an existing
#: (seed, index) pair; pinned goldens record the version they were
#: generated with.
GENERATOR_VERSION = 1

FAMILIES = ("crm", "erp", "scm", "hierarchy")
TIERS = ("CQ", "CQ!=", "UCQ")
SIZES = ("small", "medium")
TARGETS = ("complete", "incomplete")
CONSTRAINT_CLASSES = ("cc", "ind", "denial")


@dataclass(frozen=True)
class ScenarioSpec:
    """One point on the sweep grid, before any random choices."""

    family: str
    seed: int
    index: int
    tier: str
    size: str
    target: str

    @property
    def name(self) -> str:
        return f"gen_{self.family}_{self.seed:04d}_{self.index:03d}"


def scenario_rng(family: str, seed: int, index: int) -> Random:
    """The per-scenario PRNG.

    Seeded with a string so the stream is stable across platforms and
    Python versions, and so scenarios never share state: changing one
    index cannot perturb any other.
    """
    return Random(f"{family}:{seed}:{index}")


def spec_for(family: str, seed: int, index: int) -> ScenarioSpec:
    """Deterministically place ``(family, seed, index)`` on the grid.

    Tier, size, and target cycle through all 3 × 2 × 2 combinations as
    the index advances, so any sweep of ≥ 12 scenarios per family covers
    the full grid — which is what the diversity gate checks.
    """
    tier = TIERS[index % len(TIERS)]
    size = SIZES[(index // len(TIERS)) % len(SIZES)]
    target = TARGETS[(index // (len(TIERS) * len(SIZES))) % len(TARGETS)]
    # Interleave targets faster than the pure radix order would: flip
    # the target on odd tier-rows so small sweeps still see both.
    if (index // len(TIERS)) % 2 == 1:
        target = TARGETS[1 - TARGETS.index(target)]
    return ScenarioSpec(family=family, seed=seed, index=index,
                        tier=tier, size=size, target=target)
