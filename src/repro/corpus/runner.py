"""Differential corpus runs: every scenario × every engine cell.

The runner is the corpus's reason to exist: each generated bundle is
decided once by the python-serial oracle and then re-decided across
the full backend × worker matrix, asserting

* **verdict equality** — same :class:`RCDPStatus` and explanation;
* **witness equality** — identical certificate (extension facts and
  new answer; the parallel drivers guarantee the serial-first witness);
* **statistics equality** — ``valuations_examined`` and
  ``constraint_checks`` must match the oracle exactly for serial
  cells; parallel cells must match on COMPLETE verdicts (full
  enumeration), while an early-exit INCOMPLETE may legitimately stop a
  shard at a different point;

plus a **counting leg**: ``missing_answers_report`` per backend must
return the oracle's answer set, and its cardinality must equal the
``missing_answers`` golden stamped at generation time.

A scenario failure (mismatch or crash) is recorded, not raised — the
run always completes and reports per-family pass rates; enforcement
lives in the report gates.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.rcdp import decide_rcdp, missing_answers_report
from repro.core.results import RCDPStatus
from repro.corpus.generate import MANIFEST_NAME
from repro.errors import CorpusError, ReproError
from repro.incomplete.counting import count_missing_answers
from repro.io.json_io import load_bundle
from repro.relational.backends import BACKEND_NAMES

__all__ = ["CellOutcome", "ScenarioOutcome", "CorpusRunResult",
           "run_corpus"]

ORACLE_BACKEND = "python"


@dataclass(frozen=True)
class CellOutcome:
    """One (backend, workers) decision compared against the oracle."""

    backend: str
    workers: int
    verdict: str
    wall_s: float
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's full trip through the matrix."""

    name: str
    family: str
    tier: str
    verdict: str
    wall_s: float
    cells: tuple[CellOutcome, ...]
    failures: tuple[str, ...]  # oracle-level: goldens, counting, crashes

    @property
    def ok(self) -> bool:
        return not self.failures and all(c.ok for c in self.cells)

    def all_failures(self) -> tuple[str, ...]:
        cell_failures = tuple(
            f"[{cell.backend}×{cell.workers}] {failure}"
            for cell in self.cells for failure in cell.failures)
        return self.failures + cell_failures


@dataclass(frozen=True)
class CorpusRunResult:
    """Everything a report needs about one corpus run."""

    directory: str
    backends: tuple[str, ...]
    workers: tuple[int, ...]
    scenarios: tuple[ScenarioOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    def pass_rates(self) -> dict[str, tuple[int, int]]:
        """family → (passed, total)."""
        rates: dict[str, list[int]] = {}
        for scenario in self.scenarios:
            passed, total = rates.setdefault(scenario.family, [0, 0])
            rates[scenario.family] = [passed + (1 if scenario.ok else 0),
                                      total + 1]
        return {family: (passed, total)
                for family, (passed, total) in sorted(rates.items())}


def _bundle_files(directory: str) -> list[str]:
    """Scenario files from the manifest, or a directory glob fallback."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        return [entry["file"] for entry in manifest["scenarios"]]
    if not os.path.isdir(directory):
        raise CorpusError(
            f"corpus directory {directory!r} does not exist; run "
            f"`repro corpus generate` first")
    files = sorted(name for name in os.listdir(directory)
                   if name.endswith(".json") and name != MANIFEST_NAME)
    if not files:
        raise CorpusError(
            f"no corpus bundles found in {directory!r}; run "
            f"`repro corpus generate` first")
    return files


def _compare_cell(oracle, result, *, parallel: bool) -> list[str]:
    failures: list[str] = []
    if result.status is not oracle.status:
        failures.append(f"verdict {result.status.value!r} != oracle "
                        f"{oracle.status.value!r}")
        return failures  # everything downstream is incomparable
    if result.explanation != oracle.explanation:
        failures.append("explanation differs from oracle")
    if (oracle.certificate is None) != (result.certificate is None):
        failures.append("certificate presence differs from oracle")
    elif oracle.certificate is not None:
        if (result.certificate.extension_facts
                != oracle.certificate.extension_facts):
            failures.append("witness extension facts differ from oracle")
        if result.certificate.new_answer != oracle.certificate.new_answer:
            failures.append(
                f"witness new answer {result.certificate.new_answer!r} "
                f"!= oracle {oracle.certificate.new_answer!r}")
    exact = not parallel or oracle.status is RCDPStatus.COMPLETE
    if exact and (result.statistics.valuations_examined
                  != oracle.statistics.valuations_examined):
        failures.append(
            f"valuations_examined "
            f"{result.statistics.valuations_examined} != oracle "
            f"{oracle.statistics.valuations_examined}")
    if not parallel and (result.statistics.constraint_checks
                         != oracle.statistics.constraint_checks):
        failures.append(
            f"constraint_checks {result.statistics.constraint_checks} "
            f"!= oracle {oracle.statistics.constraint_checks}")
    return failures


def _check_goldens(bundle: dict, payload: Mapping, oracle,
                   oracle_missing) -> list[str]:
    """Cross-check the oracle against the bundle's ``expected`` block."""
    failures: list[str] = []
    expected = payload.get("expected", {})
    golden = expected.get("rcdp")
    if golden is not None and oracle.status.value != golden:
        failures.append(f"oracle verdict {oracle.status.value!r} != "
                        f"golden {golden!r}")
    if "new_answer" in expected:
        if oracle.certificate is None:
            failures.append("golden expects a witness, oracle has none")
        elif (list(oracle.certificate.new_answer)
                != expected["new_answer"]):
            failures.append(
                f"oracle new answer "
                f"{list(oracle.certificate.new_answer)!r} != golden "
                f"{expected['new_answer']!r}")
    if "missing_answers" in expected:
        if not oracle_missing.exhaustive:
            failures.append("oracle missing-answer report not exhaustive")
        elif len(oracle_missing.answers) != expected["missing_answers"]:
            failures.append(
                f"oracle missing-answer count "
                f"{len(oracle_missing.answers)} != golden "
                f"{expected['missing_answers']}")
    count = count_missing_answers(
        bundle["query"], bundle["database"], bundle["master"],
        bundle["constraints"], backend=ORACLE_BACKEND)
    if count.count != len(oracle_missing.answers):
        failures.append(
            f"count_missing_answers {count.count} != "
            f"len(missing_answers_report) {len(oracle_missing.answers)}")
    return failures


def _record_scenario(ledger: str, bundle: dict,
                     outcome: ScenarioOutcome) -> None:
    """Append one :class:`~repro.obs.ledger.RunRecord` per scenario:
    the oracle verdict, the whole-matrix wall time, and a content key
    so re-runs of the same generated scenario correlate."""
    from repro.obs.ledger import RunRecord, append_record, run_key

    append_record(ledger, RunRecord(
        procedure="corpus", label=outcome.name,
        key=run_key("corpus", bundle["query"], bundle["database"],
                    bundle["master"], bundle["constraints"]),
        verdict=outcome.verdict, backend="matrix", workers=0,
        wall_s=outcome.wall_s,
        extra={"family": outcome.family, "tier": outcome.tier,
               "ok": outcome.ok, "cells": len(outcome.cells),
               "failures": len(outcome.all_failures())}))


def _run_scenario(directory: str, filename: str,
                  backends: Sequence[str], workers: Sequence[int],
                  check_counting: bool,
                  ledger: str | None = None) -> ScenarioOutcome:
    with open(os.path.join(directory, filename),
              encoding="utf-8") as handle:
        payload = json.load(handle)
    corpus_block = payload.get("corpus", {})
    family = corpus_block.get("family", "unknown")
    tier = corpus_block.get("tier", "unknown")
    name = filename[:-len(".json")]

    started = time.perf_counter()
    bundle = load_bundle(os.path.join(directory, filename))
    oracle = decide_rcdp(bundle["query"], bundle["database"],
                         bundle["master"], bundle["constraints"],
                         backend=ORACLE_BACKEND, workers=1)
    oracle_missing = missing_answers_report(
        bundle["query"], bundle["database"], bundle["master"],
        bundle["constraints"], backend=ORACLE_BACKEND)
    failures = _check_goldens(bundle, payload, oracle, oracle_missing)

    cells = []
    for backend in backends:
        for worker_count in workers:
            if backend == ORACLE_BACKEND and worker_count == 1:
                continue  # that *is* the oracle
            cell_started = time.perf_counter()
            try:
                result = decide_rcdp(
                    bundle["query"], bundle["database"],
                    bundle["master"], bundle["constraints"],
                    backend=backend, workers=worker_count)
                cell_failures = _compare_cell(
                    oracle, result, parallel=worker_count > 1)
                verdict = result.status.value
            except ReproError as error:
                cell_failures = [f"decider raised: {error}"]
                verdict = "error"
            cells.append(CellOutcome(
                backend=backend, workers=worker_count, verdict=verdict,
                wall_s=time.perf_counter() - cell_started,
                failures=tuple(cell_failures)))

    if check_counting:
        for backend in backends:
            if backend == ORACLE_BACKEND:
                continue
            try:
                report = missing_answers_report(
                    bundle["query"], bundle["database"],
                    bundle["master"], bundle["constraints"],
                    backend=backend)
                if report.answers != oracle_missing.answers:
                    failures.append(
                        f"[{backend}] missing-answer set differs "
                        f"from oracle")
                if report.exhaustive != oracle_missing.exhaustive:
                    failures.append(
                        f"[{backend}] missing-answer exhaustiveness "
                        f"differs from oracle")
            except ReproError as error:
                failures.append(f"[{backend}] counting raised: {error}")

    outcome = ScenarioOutcome(
        name=name, family=family, tier=tier,
        verdict=oracle.status.value,
        wall_s=time.perf_counter() - started,
        cells=tuple(cells), failures=tuple(failures))
    if ledger is not None:
        _record_scenario(ledger, bundle, outcome)
    return outcome


def run_corpus(directory: str, *,
               backends: Sequence[str] = BACKEND_NAMES,
               workers: Sequence[int] = (1, 2),
               check_counting: bool = True,
               ledger: str | None = None) -> CorpusRunResult:
    """Run every bundle in *directory* through the decider matrix.

    Never raises on a scenario mismatch or crash — those become
    recorded failures that drag the per-family pass rate below its
    gate.  Raises :class:`CorpusError` only when the corpus itself is
    unusable (no bundles).  With *ledger* set, every scenario appends
    a run record to that JSONL ledger file (see
    :mod:`repro.obs.ledger`).
    """
    for backend in backends:
        if backend not in BACKEND_NAMES:
            raise CorpusError(
                f"unknown backend {backend!r}; expected one of "
                f"{', '.join(BACKEND_NAMES)}")
    scenarios = []
    for filename in _bundle_files(directory):
        try:
            outcome = _run_scenario(directory, filename, tuple(backends),
                                    tuple(workers), check_counting,
                                    ledger=ledger)
        except (ReproError, OSError, KeyError, ValueError) as error:
            # A scenario too broken to even load still counts against
            # its family's pass rate.
            outcome = ScenarioOutcome(
                name=filename[:-len(".json")]
                if filename.endswith(".json") else filename,
                family="unknown", tier="unknown", verdict="error",
                wall_s=0.0, cells=(),
                failures=(f"scenario crashed: {error}",))
        scenarios.append(outcome)
    return CorpusRunResult(
        directory=directory, backends=tuple(backends),
        workers=tuple(workers), scenarios=tuple(scenarios))
