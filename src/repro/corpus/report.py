"""Corpus run reports in the shared ``BENCH_*.json`` shape.

The corpus run report uses the exact schema of
``benchmarks/report_schema.py`` (``bench_report_version`` 1: rows,
gates, extra), so CI artifact tooling treats a corpus report like any
other bench report.  One row per family carries the verdict mix and
the latency distribution; one enforced gate per family requires a
100 % pass rate, and an unenforced latency gate records the p90 so
regressions are visible in the artifact without failing the build.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.corpus.runner import CorpusRunResult
from repro.errors import CorpusError

__all__ = ["build_report", "render_report", "check_report",
           "load_report", "REPORT_VERSION"]

REPORT_VERSION = 1

#: Every family must pass completely — one divergent backend cell is a
#: soundness bug, not a flake.
PASS_RATE_REQUIRED = 1.0

#: Recorded (not enforced): per-scenario p90 latency budget in seconds.
LATENCY_P90_BUDGET_S = 2.0


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def build_report(result: CorpusRunResult, *, name: str = "corpus",
                 smoke: bool = False) -> dict:
    """Shape one :class:`CorpusRunResult` into a BENCH report dict."""
    rows = []
    gates = []
    for family, (passed, total) in result.pass_rates().items():
        outcomes = [s for s in result.scenarios if s.family == family]
        walls = [s.wall_s for s in outcomes]
        verdicts: dict[str, int] = {}
        for scenario in outcomes:
            verdicts[scenario.verdict] = \
                verdicts.get(scenario.verdict, 0) + 1
        failures = [failure for scenario in outcomes
                    for failure in scenario.all_failures()]
        p90 = _percentile(walls, 0.9)
        rows.append({
            "name": f"corpus/{family}",
            "wall_s": round(sum(walls), 6),
            "ticks": {},
            "verdicts": verdicts,
            "extra": {
                "scenarios": total,
                "passed": passed,
                "tiers": sorted({s.tier for s in outcomes}),
                "latency_s": {
                    "p50": round(_percentile(walls, 0.5), 6),
                    "p90": round(p90, 6),
                    "max": round(max(walls, default=0.0), 6),
                },
                # Cap the recorded mismatches: one bad refactor can fail
                # every cell and the report should stay readable.
                "failures": failures[:20],
            },
        })
        gates.append({
            "name": f"corpus_pass_rate/{family}",
            "required": PASS_RATE_REQUIRED,
            "measured": round(passed / total, 6) if total else None,
            "higher_is_better": True,
            "enforced": True,
            "passed": bool(total) and passed == total,
        })
        gates.append({
            "name": f"corpus_latency_p90/{family}",
            "required": LATENCY_P90_BUDGET_S,
            "measured": round(p90, 6),
            "higher_is_better": False,
            "enforced": False,
            "passed": True,
        })
    return {
        "bench_report_version": REPORT_VERSION,
        "name": name,
        "smoke": bool(smoke),
        "rows": rows,
        "gates": gates,
        "extra": {
            "directory": result.directory,
            "backends": list(result.backends),
            "workers": list(result.workers),
            "scenarios": len(result.scenarios),
            "ok": result.ok,
        },
    }


def render_report(report: dict) -> str:
    """A human summary of a corpus report: per-family pass rates and
    latency distributions, then the gate table."""
    lines = [f"corpus report: {report['extra'].get('scenarios', '?')} "
             f"scenarios, backends "
             f"{'/'.join(report['extra'].get('backends', []))}, workers "
             f"{'/'.join(str(w) for w in report['extra'].get('workers', []))}"]
    for row in report.get("rows", []):
        extra = row.get("extra", {})
        latency = extra.get("latency_s", {})
        verdicts = ", ".join(f"{count}×{verdict}" for verdict, count
                             in sorted(row.get("verdicts", {}).items()))
        lines.append(
            f"  {row['name']}: {extra.get('passed', '?')}/"
            f"{extra.get('scenarios', '?')} passed ({verdicts}); "
            f"latency p50={latency.get('p50', 0):.3f}s "
            f"p90={latency.get('p90', 0):.3f}s "
            f"max={latency.get('max', 0):.3f}s")
        for failure in extra.get("failures", []):
            lines.append(f"    FAIL {failure}")
    for gate in report.get("gates", []):
        if not gate.get("enforced"):
            continue
        direction = "≥" if gate.get("higher_is_better", True) else "≤"
        state = "pass" if gate.get("passed") else "FAIL"
        lines.append(f"  gate {gate['name']}: {gate['measured']} "
                     f"{direction} {gate['required']} … {state}")
    return "\n".join(lines)


def check_report(report: dict) -> int:
    """Exit-code logic shared with ``report_schema.check_gates``: 0 when
    every enforced gate passed, 1 otherwise."""
    failed = [gate for gate in report.get("gates", [])
              if gate.get("enforced") and not gate.get("passed")]
    return 1 if failed else 0


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("bench_report_version") != REPORT_VERSION:
        raise CorpusError(
            f"{path!r} is not a version-{REPORT_VERSION} bench report")
    return report
