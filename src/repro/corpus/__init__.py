"""Scenario corpus: seeded generation, differential runs, reporting.

The corpus is the repository's standing acceptance harness: a seeded,
deterministic sweep over domain families × language tiers × constraint
classes × sizes × target verdicts, every scenario oracle-verified at
generation time and re-decided across the full backend × worker matrix
by the runner.  See ``docs/CORPUS.md``.
"""

from repro.corpus.diversity import (DiversityReport, check_diversity,
                                    ensure_diverse)
from repro.corpus.generate import (BuiltScenario, build_scenario,
                                   generate_corpus)
from repro.corpus.report import (build_report, check_report,
                                 render_report)
from repro.corpus.runner import (CellOutcome, CorpusRunResult,
                                 ScenarioOutcome, run_corpus)
from repro.corpus.spec import (CONSTRAINT_CLASSES, FAMILIES,
                               GENERATOR_VERSION, SIZES, TARGETS, TIERS,
                               ScenarioSpec, scenario_rng, spec_for)

__all__ = [
    "BuiltScenario",
    "CONSTRAINT_CLASSES",
    "CellOutcome",
    "CorpusRunResult",
    "DiversityReport",
    "FAMILIES",
    "GENERATOR_VERSION",
    "SIZES",
    "ScenarioOutcome",
    "ScenarioSpec",
    "TARGETS",
    "TIERS",
    "build_report",
    "build_scenario",
    "check_diversity",
    "check_report",
    "ensure_diverse",
    "generate_corpus",
    "render_report",
    "run_corpus",
    "scenario_rng",
    "spec_for",
]
