"""The corpus diversity gate.

A generated sweep is only useful as an acceptance harness if it keeps
exercising *different* things: every requested family, both verdicts
inside each family, every query-language tier, and every constraint
class.  A refactor of the generator (or a careless ``--families``
sweep) that collapses one of those axes would silently turn the corpus
into a monoculture — hundreds of scenarios all proving the same fact.
The gate measures coverage and fails generation instead.

Checked requirements, in gate order:

1. every requested family contributes at least ``min_per_family``
   scenarios (default: enough to cycle the tier grid once);
2. within each family of ≥ 2 scenarios, both verdicts occur;
3. globally, every language tier (CQ, CQ≠, UCQ) occurs;
4. globally, every constraint class (cc, ind, denial) occurs —
   except ``cc`` when the only family that builds CCs was not swept;
5. no single verdict exceeds ``max_verdict_share`` of the sweep.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.corpus.spec import CONSTRAINT_CLASSES, FAMILIES, TIERS
from repro.errors import DiversityError

__all__ = ["DiversityReport", "check_diversity", "ensure_diverse"]

#: Verdict share above which the sweep counts as a monoculture.
MAX_VERDICT_SHARE = 0.9


@dataclass(frozen=True)
class DiversityReport:
    """Coverage measurements plus the list of violated requirements."""

    ok: bool
    problems: tuple[str, ...]
    families: Mapping[str, int]
    verdicts: Mapping[str, int]
    tiers: Mapping[str, int]
    classes: Mapping[str, int]

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.problems)} problem(s)"
        return f"DiversityReport[{state}]"


def check_diversity(records: Sequence[Mapping], *,
                    families: Sequence[str] = FAMILIES,
                    min_per_family: int | None = None,
                    max_verdict_share: float = MAX_VERDICT_SHARE,
                    ) -> DiversityReport:
    """Measure a sweep's coverage.

    Each record needs ``family``, ``tier``, ``verdict``, and
    ``classes`` keys (the generator's per-scenario records).  The
    default *min_per_family* is ``min(len(TIERS), observed maximum)``
    so tiny smoke sweeps are not asked for more scenarios than any
    family got.
    """
    family_counts = Counter(r["family"] for r in records)
    verdict_counts = Counter(r["verdict"] for r in records)
    tier_counts = Counter(r["tier"] for r in records)
    class_counts: Counter = Counter()
    for record in records:
        class_counts.update(record["classes"])

    if min_per_family is None:
        observed_max = max(family_counts.values(), default=0)
        min_per_family = min(len(TIERS), observed_max) or 1

    problems: list[str] = []
    for family in families:
        count = family_counts.get(family, 0)
        if count < min_per_family:
            problems.append(
                f"family {family!r} has {count} scenario(s), "
                f"needs ≥ {min_per_family}")
            continue
        if count >= 2:
            per_family = {r["verdict"] for r in records
                          if r["family"] == family}
            if len(per_family) < 2:
                only = next(iter(per_family))
                problems.append(
                    f"family {family!r} decides {only!r} only — "
                    f"both verdicts required")
    for tier in TIERS:
        if not tier_counts.get(tier):
            problems.append(f"language tier {tier!r} never generated")
    for cls in CONSTRAINT_CLASSES:
        if not class_counts.get(cls):
            if cls == "cc" and "crm" not in families:
                continue  # only the CRM family builds general CCs
            problems.append(f"constraint class {cls!r} never exercised")
    total = sum(verdict_counts.values())
    if total:
        verdict, count = verdict_counts.most_common(1)[0]
        if count / total > max_verdict_share:
            problems.append(
                f"verdict monoculture: {verdict!r} is {count}/{total} "
                f"of the sweep (> {max_verdict_share:.0%})")

    return DiversityReport(
        ok=not problems, problems=tuple(problems),
        families=dict(family_counts), verdicts=dict(verdict_counts),
        tiers=dict(tier_counts), classes=dict(class_counts))


def ensure_diverse(records: Sequence[Mapping], *,
                   families: Sequence[str] = FAMILIES,
                   min_per_family: int | None = None,
                   max_verdict_share: float = MAX_VERDICT_SHARE,
                   ) -> DiversityReport:
    """:func:`check_diversity`, raising :class:`DiversityError` when
    any requirement is violated."""
    report = check_diversity(records, families=families,
                             min_per_family=min_per_family,
                             max_verdict_share=max_verdict_share)
    if not report.ok:
        raise DiversityError(
            "corpus diversity gate tripped:\n  - "
            + "\n  - ".join(report.problems))
    return report
