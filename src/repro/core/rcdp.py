"""RCDP — the relatively complete database problem (Section 3).

Given a query ``Q`` (CQ / UCQ / ∃FO⁺), master data ``Dm``, containment
constraints ``V`` (same languages, or INDs), and a partially closed ``D``,
decide whether ``D ∈ RCQ(Q, Dm, V)``.

The decider implements the Σᵖ₂ algorithm from the proof of Theorem 3.6,
justified by the characterizations of Proposition 3.3 (conditions C1/C2 for
CQ), Corollary 3.4 (C3 for INDs), and Corollary 3.5 (C4 for UCQ):

1. enumerate a CQ disjunct ``Q_i = (T_i, u_i)`` of ``Q``;
2. enumerate a *valid valuation* ``μ`` of ``T_i`` over the active domain;
3. reject the guess when ``μ(u_i) ∈ Q(D)``;
4. otherwise test ``(D ∪ μ(T_i), Dm) ⊨ V`` — when ``V`` consists of INDs,
   testing ``(μ(T_i), Dm) ⊨ V`` suffices (Corollary 3.4), since ``D`` is
   already partially closed and IND satisfaction is tuple-local;
5. a surviving guess is a counterexample: ``D`` is INCOMPLETE, and the
   instantiated tableau is returned as a certificate.  If no guess survives,
   ``D`` is COMPLETE.

The enumeration is *governed* (:mod:`repro.runtime`): a budget, deadline,
cancellation token, or injected fault can interrupt it at any valuation
boundary.  Under ``on_exhausted="partial"`` the decider then degrades
gracefully — it returns an :class:`~repro.core.results.RCDPStatus.EXHAUSTED`
result carrying the statistics accumulated so far and a resumable
:class:`~repro.runtime.checkpoint.SearchCheckpoint`; under the default
``"error"`` mode it raises :class:`~repro.errors.SearchBudgetExceededError`
with the same data attached.

FO / FP queries or constraints raise
:class:`~repro.errors.UndecidableConfigurationError` (Theorem 3.1); use
:mod:`repro.core.bounded` for best-effort semi-decision.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Sequence

from repro.analysis.diagnostics import Report
from repro.analysis.driver import validate_for_decision
from repro.constraints.containment import (ContainmentConstraint,
                                           satisfies_all,
                                           satisfies_all_extension,
                                           violated_constraints)
from repro.core.results import (IncompletenessCertificate,
                                MissingAnswersReport, RCDPResult,
                                RCDPStatus, SearchStatistics)
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.engine import EvaluationContext, decision_key
from repro.errors import (ExecutionInterrupted, NotPartiallyClosedError,
                          UndecidableConfigurationError)
from repro.obs import obs_of, obs_span, traced
from repro.queries.tableau import Tableau
from repro.relational.instance import Instance, extend_unvalidated
from repro.runtime import (ExecutionGovernor, SearchCheckpoint,
                           resolve_governor, validate_exhaustion_mode)

__all__ = ["decide_rcdp", "enumerate_missing_answers",
           "missing_answers_report", "split_ind_constraints",
           "assert_decidable_configuration", "ensure_partially_closed",
           "resolve_context", "resolve_analysis"]

_DECIDABLE = frozenset({"CQ", "UCQ", "EFO"})

RowFilter = Callable[[str, tuple], bool]


def resolve_context(context: EvaluationContext | None,
                    use_engine: bool,
                    backend: str | None = None) -> EvaluationContext | None:
    """Normalize a decider's ``(context, use_engine, backend)`` triple.

    ``use_engine=False`` forces the pre-engine evaluation paths (for
    ablation and the engine-equivalence property tests); otherwise a
    private context is created when the caller did not supply a shared
    one, running on *backend* (one of
    :data:`~repro.relational.backends.BACKEND_NAMES`, ``None`` resolving
    via ``$REPRO_BACKEND``).  A caller-supplied context keeps its own
    backend.
    """
    if not use_engine:
        return None
    return context if context is not None else EvaluationContext(
        backend=backend)


def assert_decidable_configuration(
        query: Any,
        constraints: Sequence[ContainmentConstraint]) -> None:
    """Raise unless ``(L_Q, L_C)`` is a decidable configuration.

    By Theorems 3.1 and 4.1, FO or FP on either side makes both problems
    undecidable.
    """
    language = getattr(query, "language", None)
    if language not in _DECIDABLE:
        raise UndecidableConfigurationError(
            f"L_Q = {language}: RCDP/RCQP are undecidable beyond ∃FO⁺ "
            f"(Theorem 3.1 / 4.1); use repro.core.bounded for a bounded "
            f"semi-decision")
    for constraint in constraints:
        if not constraint.is_decidable_language:
            raise UndecidableConfigurationError(
                f"containment constraint {constraint.name!r} is in "
                f"{constraint.language}: RCDP/RCQP are undecidable beyond "
                f"∃FO⁺ (Theorem 3.1 / 4.1); use repro.core.bounded for a "
                f"bounded semi-decision")


def resolve_analysis(query: Any,
                     constraints: Sequence[ContainmentConstraint],
                     database: Instance, master: Instance,
                     analysis: Report | None,
                     analyze: bool) -> Report | None:
    """Normalize a decider's ``(analysis, analyze)`` pair.

    A caller-supplied report (audits, completion loops — one pass shared
    across many decisions) wins; otherwise the cheap decider rules run
    here.  ``analyze=False`` disables the pass entirely (for ablation
    and for inner loops that already validated).  Error-severity
    findings raise :class:`~repro.errors.AnalysisError` from inside
    :func:`~repro.analysis.driver.validate_for_decision`.
    """
    if analysis is not None or not analyze:
        return analysis
    return validate_for_decision(
        query, constraints, schema=database.schema,
        master_schema=master.schema, database=database, master=master)


def ensure_partially_closed(
        database: Instance, master: Instance,
        constraints: Sequence[ContainmentConstraint],
        context: EvaluationContext | None = None) -> None:
    """Raise :class:`NotPartiallyClosedError` unless ``(D, Dm) ⊨ V``."""
    violated = violated_constraints(database, master, constraints,
                                    context=context)
    if violated:
        names = ", ".join(c.name for c in violated)
        raise NotPartiallyClosedError(
            f"database is not partially closed: violates {names}")


#: ``D ∪ Δ`` without re-validating domains (Δ may hold fresh values).
#: Lives in :mod:`repro.relational.instance` now; re-exported here under
#: its historical name for the other core modules that import it.
_extend_unvalidated = extend_unvalidated


def split_ind_constraints(
        constraints: Sequence[ContainmentConstraint], master: Instance,
        *, use_ind_pruning: bool = True,
        context: EvaluationContext | None = None,
        ) -> tuple[RowFilter | None, list[ContainmentConstraint]]:
    """Compile IND constraints into a tuple-local row filter.

    IND constraints are tuple-local, so they can prune the valuation
    enumeration row-by-row (Corollary 3.4 made operational): a single
    instantiated tableau row whose projection leaves the master projection
    kills the whole branch.  Returns ``(row_filter, other_constraints)``
    where *row_filter* is ``None`` when no IND is available (or pruning is
    disabled) and *other_constraints* are the ones that still need the
    full ``(D ∪ Δ, Dm) ⊨ V`` check per surviving valuation.
    """
    ind_projections: dict[str, list[tuple[tuple[int, ...], frozenset]]] = {}
    other_constraints: list[ContainmentConstraint] = []
    for constraint in constraints:
        if use_ind_pruning and constraint.is_ind():
            relation, columns = constraint.ind_source()
            ind_projections.setdefault(relation, []).append(
                (columns,
                 constraint.projection.evaluate(master, context=context)))
        else:
            other_constraints.append(constraint)
    if not ind_projections:
        return None, other_constraints

    def row_filter(relation: str, row: tuple) -> bool:
        for columns, allowed in ind_projections.get(relation, ()):
            if tuple(row[c] for c in columns) not in allowed:
                return False
        return True

    return row_filter, other_constraints


def _prepare_search(query: Any, database: Instance, master: Instance,
                    constraints: Sequence[ContainmentConstraint],
                    context: EvaluationContext | None,
                    ) -> tuple[list[Tableau], ActiveDomain]:
    """Tableaux and active domain for one ``(Q, D, Dm, V)`` decision.

    With a shared context these are memoized, so repeated decisions on
    the same inputs (audits, completion loops, benchmarks) stop paying
    the per-entry rebuild cost."""

    def build() -> tuple[list[Tableau], ActiveDomain]:
        disjuncts = query.to_cq_disjuncts()
        tableaux = [Tableau(d, database.schema) for d in disjuncts]
        adom = ActiveDomain.build(
            instances=(database, master),
            queries=[query] + [c.query for c in constraints],
            tableaux=[t for t in tableaux if t.satisfiable])
        return tableaux, adom

    if context is None:
        return build()
    # Content-based key: identical across processes, so parallel workers
    # that rebuild the search space from pickled inputs hit the same memo
    # entry a resumed or repeated run would.
    key = decision_key("rcdp-search", query, database, master, *constraints)
    return context.memo(key, build,
                        pin=(query, database, master, *constraints))


@traced("decide_rcdp")
def decide_rcdp(query: Any, database: Instance, master: Instance,
                constraints: Sequence[ContainmentConstraint],
                *, check_partially_closed: bool = True,
                budget: int | None = None,
                use_ind_pruning: bool = True,
                governor: ExecutionGovernor | None = None,
                on_exhausted: str = "error",
                resume_from: SearchCheckpoint | None = None,
                use_engine: bool = True,
                context: EvaluationContext | None = None,
                backend: str | None = None,
                analyze: bool = True,
                analysis: Report | None = None,
                workers: int | None = 1) -> RCDPResult:
    """Decide whether *database* is complete for *query* relative to
    ``(master, constraints)``.

    Parameters
    ----------
    query:
        A CQ, UCQ, or ∃FO⁺ query over the database schema.
    database, master:
        The partially closed database ``D`` and master data ``Dm``.
    constraints:
        Containment constraints ``V`` (CQ/UCQ/∃FO⁺ queries on the left).
    check_partially_closed:
        When True (default), verify ``(D, Dm) ⊨ V`` first and raise
        :class:`NotPartiallyClosedError` otherwise — RCDP is only defined
        for partially closed inputs.
    budget:
        Shorthand for a governor capping the number of valuations
        examined.  The problem is Πᵖ₂-complete, so adversarial inputs are
        necessarily expensive.  Mutually exclusive with *governor*.
    use_ind_pruning:
        When True (default), IND constraints prune the valuation
        enumeration row-by-row instead of being re-checked per candidate
        extension (Corollary 3.4 made operational).  Setting it to False
        is for the ablation benchmarks only — the verdict is identical.
    governor:
        An :class:`~repro.runtime.ExecutionGovernor` checked at every
        valuation; may be shared with enclosing searches for unified
        accounting.
    on_exhausted:
        ``"error"`` (default): interruption raises
        :class:`~repro.errors.SearchBudgetExceededError` with statistics,
        partial result, and checkpoint attached.  ``"partial"``: the
        decider returns an ``EXHAUSTED`` result instead.
    resume_from:
        A checkpoint from a previous interrupted ``decide_rcdp`` run *on
        the same inputs*; the enumeration fast-forwards past the already-
        examined (and rejected) prefix without charging the governor, and
        statistics are reported cumulatively.
    use_engine:
        When True (default), evaluation runs on the
        :mod:`repro.engine` — compiled plans, hash-indexed joins, and
        semi-naive delta evaluation of each candidate's ``(D ∪ Δ, Dm)
        ⊨ V`` check.  False forces the pre-engine naive paths (ablation
        and equivalence testing); the verdict is identical.
    context:
        A shared :class:`~repro.engine.EvaluationContext` carrying
        plan/index/answer caches across calls (audits, completion
        loops).  Defaults to a fresh private context when the engine is
        enabled.  The decider attaches its governor to the context only
        while the search loop runs, so engine work during setup is
        never charged.
    backend:
        Storage backend for the private context — ``"python"``
        (default), ``"columnar"``, or ``"sqlite"`` (see
        ``docs/BACKENDS.md``); ``None`` resolves via ``$REPRO_BACKEND``.
        The verdict, witness, and search statistics are identical across
        backends.  Ignored when *context* is supplied (it has its own).
    analyze:
        When True (default), the static analyzer's cheap decider rules
        (:mod:`repro.analysis`) run first: error-severity findings
        (schema mismatches, invalid constraints) raise
        :class:`~repro.errors.AnalysisError` carrying the full report;
        warning counts fold into ``statistics.analysis_warnings``; and a
        query the analyzer proves empty short-circuits to COMPLETE
        without searching (``Q(D') = ∅`` for every ``D'``, so no
        extension changes the answer).
    analysis:
        A precomputed :class:`~repro.analysis.diagnostics.Report` to use
        instead of re-running the pass (audits and completion loops
        analyze once and share).
    workers:
        Shard the valuation search across this many worker processes
        (``1`` = serial, ``0`` = all cores; see ``docs/PARALLEL.md``).
        The verdict — including which witness is reported — is identical
        for every worker count.  Parallel checkpoints record the worker
        count and must be resumed with the same one.

    Returns
    -------
    RCDPResult
        COMPLETE, INCOMPLETE with an
        :class:`~repro.core.results.IncompletenessCertificate`, or
        EXHAUSTED (only under ``on_exhausted="partial"``) with a
        checkpoint.  The checkpoint cursor is ``(tableau_index,
        valuations_consumed_in_that_tableau)``.
    """
    from repro.parallel.partition import resolve_workers

    count = resolve_workers(workers)
    if count > 1:
        from repro.parallel.api import decide_rcdp_parallel

        return decide_rcdp_parallel(
            query, database, master, constraints, workers=count,
            check_partially_closed=check_partially_closed, budget=budget,
            use_ind_pruning=use_ind_pruning, governor=governor,
            on_exhausted=on_exhausted, resume_from=resume_from,
            use_engine=use_engine, context=context, backend=backend,
            analyze=analyze, analysis=analysis)
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    obs = obs_of(governor)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    with obs_span(obs, "analyze"):
        analysis = resolve_analysis(query, constraints, database, master,
                                    analysis, analyze)
    # Resumed searches already counted the warnings in the checkpoint's
    # base statistics; recounting would double them.
    fresh_warnings = (len(analysis.warnings)
                      if analysis is not None and resume_from is None
                      else 0)
    query.validate(database.schema)
    if check_partially_closed:
        with obs_span(obs, "check_ccs"):
            ensure_partially_closed(database, master, constraints, context)

    if analysis is not None and analysis.facts.query_provably_empty:
        stats = SearchStatistics(analysis_warnings=fresh_warnings)
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return RCDPResult(
            status=RCDPStatus.COMPLETE,
            explanation=(
                "static analysis proved the query empty (contradictory "
                "=/≠ atoms in every disjunct): Q(D') = ∅ for every D', "
                "so no extension can add an answer and D is trivially "
                "relatively complete"),
            statistics=stats)

    with obs_span(obs, "compile_plans"):
        tableaux, adom = _prepare_search(query, database, master,
                                         constraints, context)
    with obs_span(obs, "evaluate_Q"):
        answers = (context.evaluate(query, database)
                   if context is not None else query.evaluate(database))

    row_filter, other_constraints = split_ind_constraints(
        constraints, master, use_ind_pruning=use_ind_pruning,
        context=context)

    start_tableau, start_position = 0, 0
    base_stats = SearchStatistics()
    if resume_from is not None:
        resume_from.require("rcdp")
        start_tableau, start_position = resume_from.cursor
        base_stats = resume_from.base_statistics()

    def _stats() -> SearchStatistics:
        stats = base_stats.merged(SearchStatistics(
            valuations_examined=examined,
            constraint_checks=constraint_checks,
            analysis_warnings=fresh_warnings))
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    examined = 0
    constraint_checks = 0
    tableau_index = start_tableau
    position = start_position
    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        with governed, obs_span(obs, "enumerate_valuations"):
            for tableau_index, tableau in enumerate(tableaux):
                if tableau_index < start_tableau or not tableau.satisfiable:
                    continue
                to_skip = (start_position if tableau_index == start_tableau
                           else 0)
                position = to_skip
                for valuation in iter_valid_valuations(
                        tableau, adom, fresh="own", row_filter=row_filter):
                    if to_skip > 0:
                        to_skip -= 1
                        continue
                    if governor is not None:
                        governor.tick("valuations")
                    examined += 1
                    summary = tableau.summary_under(valuation)
                    if summary in answers:
                        position += 1
                        continue
                    delta = tableau.instantiate(valuation)
                    constraint_checks += 1
                    if not other_constraints:
                        satisfied = True
                    elif context is not None:
                        satisfied = satisfies_all_extension(
                            database, delta, master, other_constraints,
                            context=context)
                    else:
                        candidate = _extend_unvalidated(database, delta)
                        satisfied = satisfies_all(candidate, master,
                                                  other_constraints)
                    if satisfied:
                        certificate = IncompletenessCertificate(
                            extension_facts=tuple(delta),
                            new_answer=summary,
                            disjunct_name=tableau.query.name)
                        return RCDPResult(
                            status=RCDPStatus.INCOMPLETE,
                            certificate=certificate,
                            explanation=(
                                f"adding {len(delta)} fact(s) keeps V "
                                f"satisfied but produces the new answer "
                                f"{summary!r}"),
                            statistics=_stats())
                    position += 1
    except ExecutionInterrupted as interrupt:
        stats = _stats()
        checkpoint = SearchCheckpoint(
            procedure="rcdp", cursor=(tableau_index, position),
            statistics=stats)
        partial = RCDPResult(
            status=RCDPStatus.EXHAUSTED,
            explanation=(
                f"search interrupted ({interrupt.reason}) after "
                f"{stats.valuations_examined} valuation(s); resume from "
                f"the checkpoint to continue"),
            statistics=stats,
            checkpoint=checkpoint,
            interrupted=interrupt.reason)
        if on_exhausted == "error":
            interrupt.statistics = stats
            interrupt.partial_result = partial
            interrupt.checkpoint = checkpoint
            raise
        return partial

    return RCDPResult(
        status=RCDPStatus.COMPLETE,
        explanation=(
            "no valid valuation over the active domain extends D "
            "consistently with V while changing Q(D) "
            "(conditions C1/C2 hold)"),
        statistics=_stats())


@traced("missing_answers_report")
def missing_answers_report(query: Any, database: Instance,
                           master: Instance,
                           constraints: Sequence[ContainmentConstraint],
                           *, limit: int | None = None,
                           check_partially_closed: bool = True,
                           budget: int | None = None,
                           governor: ExecutionGovernor | None = None,
                           on_exhausted: str = "partial",
                           resume_from: SearchCheckpoint | None = None,
                           use_engine: bool = True,
                           context: EvaluationContext | None = None,
                           backend: str | None = None,
                           analyze: bool = True,
                           analysis: Report | None = None,
                           workers: int | None = 1,
                           ) -> MissingAnswersReport:
    """All answers the query could still gain over the active domain.

    Example 1.1 observes that when an employee supports at most ``k``
    customers and ``k'`` are known, "we need to add at most ``k − k'``
    tuples to make it complete": this function makes that kind of margin
    computable.  It reports every tuple ``s ∉ Q(D)`` such that some valid
    valuation over the active domain yields ``s`` via a constraint-
    consistent extension.  The database is relatively complete iff the
    full enumeration is empty (same enumeration as :func:`decide_rcdp`,
    without the early exit).

    *limit* truncates the enumeration once that many missing answers have
    been found; a *budget*/*governor* interrupts it mid-search.  In both
    cases ``exhaustive`` is False and the answer set is a lower bound; an
    interrupted report additionally carries a resumable checkpoint whose
    payload preserves the answers already found (cursor layout:
    ``(tableau_index, valuations_consumed)``).  *on_exhausted* defaults
    to ``"partial"`` here — a truncated margin is still useful — but
    ``"error"`` gives strict-mode callers the historical raising behavior
    with the partial report attached to the exception.
    """
    from repro.parallel.partition import resolve_workers

    count = resolve_workers(workers)
    if count > 1:
        from repro.parallel.api import missing_answers_parallel

        return missing_answers_parallel(
            query, database, master, constraints, workers=count,
            limit=limit, check_partially_closed=check_partially_closed,
            budget=budget, governor=governor, on_exhausted=on_exhausted,
            resume_from=resume_from, use_engine=use_engine,
            context=context, backend=backend, analyze=analyze,
            analysis=analysis)
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    obs = obs_of(governor)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    with obs_span(obs, "analyze"):
        analysis = resolve_analysis(query, constraints, database, master,
                                    analysis, analyze)
    fresh_warnings = (len(analysis.warnings)
                      if analysis is not None and resume_from is None
                      else 0)
    query.validate(database.schema)
    if check_partially_closed:
        with obs_span(obs, "check_ccs"):
            ensure_partially_closed(database, master, constraints, context)

    if analysis is not None and analysis.facts.query_provably_empty:
        stats = SearchStatistics(analysis_warnings=fresh_warnings)
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return MissingAnswersReport(answers=frozenset(),
                                    exhaustive=True, statistics=stats)

    with obs_span(obs, "compile_plans"):
        tableaux, adom = _prepare_search(query, database, master,
                                         constraints, context)
    with obs_span(obs, "evaluate_Q"):
        answers = (context.evaluate(query, database)
                   if context is not None else query.evaluate(database))

    row_filter, other_constraints = split_ind_constraints(
        constraints, master, context=context)

    start_tableau, start_position = 0, 0
    base_stats = SearchStatistics()
    missing: set[tuple] = set()
    if resume_from is not None:
        resume_from.require("missing")
        start_tableau, start_position = resume_from.cursor
        base_stats = resume_from.base_statistics()
        missing.update(resume_from.payload)

    examined = 0
    constraint_checks = 0
    tableau_index = start_tableau
    position = start_position
    def _stats() -> SearchStatistics:
        stats = base_stats.merged(SearchStatistics(
            valuations_examined=examined,
            constraint_checks=constraint_checks,
            analysis_warnings=fresh_warnings))
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        with governed, obs_span(obs, "enumerate_valuations"):
            for tableau_index, tableau in enumerate(tableaux):
                if tableau_index < start_tableau or not tableau.satisfiable:
                    continue
                to_skip = (start_position if tableau_index == start_tableau
                           else 0)
                position = to_skip
                for valuation in iter_valid_valuations(
                        tableau, adom, fresh="own", row_filter=row_filter):
                    if to_skip > 0:
                        to_skip -= 1
                        continue
                    if governor is not None:
                        governor.tick("valuations")
                    examined += 1
                    position += 1
                    summary = tableau.summary_under(valuation)
                    if summary in answers or summary in missing:
                        continue
                    if other_constraints:
                        constraint_checks += 1
                        delta = tableau.instantiate(valuation)
                        if context is not None:
                            if not satisfies_all_extension(
                                    database, delta, master,
                                    other_constraints, context=context):
                                continue
                        else:
                            candidate = _extend_unvalidated(database, delta)
                            if not satisfies_all(candidate, master,
                                                 other_constraints):
                                continue
                    missing.add(summary)
                    if limit is not None and len(missing) >= limit:
                        return MissingAnswersReport(
                            answers=frozenset(missing), exhaustive=False,
                            statistics=_stats())
    except ExecutionInterrupted as interrupt:
        checkpoint = SearchCheckpoint(
            procedure="missing", cursor=(tableau_index, position),
            statistics=_stats(),
            payload=tuple(sorted(missing, key=repr)))
        report = MissingAnswersReport(
            answers=frozenset(missing), exhaustive=False,
            statistics=_stats(), checkpoint=checkpoint,
            interrupted=interrupt.reason)
        if on_exhausted == "error":
            interrupt.statistics = report.statistics
            interrupt.partial_result = report
            interrupt.checkpoint = checkpoint
            raise
        return report
    return MissingAnswersReport(
        answers=frozenset(missing), exhaustive=True, statistics=_stats())


def enumerate_missing_answers(query: Any, database: Instance,
                              master: Instance,
                              constraints: Sequence[ContainmentConstraint],
                              *, limit: int | None = None,
                              check_partially_closed: bool = True,
                              budget: int | None = None,
                              governor: ExecutionGovernor | None = None,
                              on_exhausted: str = "error",
                              resume_from: SearchCheckpoint | None = None,
                              use_engine: bool = True,
                              context: EvaluationContext | None = None,
                              backend: str | None = None,
                              analyze: bool = True,
                              analysis: Report | None = None,
                              workers: int | None = 1,
                              ) -> frozenset[tuple]:
    """Plain-set façade over :func:`missing_answers_report`.

    Historically this enumeration accepted no budget at all and could hang
    on adversarial inputs even though :func:`decide_rcdp` was capped; it
    is now governed identically.  Under ``on_exhausted="partial"`` an
    interrupted enumeration returns the lower-bound set found so far (use
    :func:`missing_answers_report` when you also need the checkpoint);
    under the default ``"error"`` it raises, with the partial report
    attached to the exception.
    """
    return missing_answers_report(
        query, database, master, constraints, limit=limit,
        check_partially_closed=check_partially_closed, budget=budget,
        governor=governor, on_exhausted=on_exhausted,
        resume_from=resume_from, use_engine=use_engine,
        context=context, backend=backend, analyze=analyze,
        analysis=analysis, workers=workers).answers
