"""RCDP — the relatively complete database problem (Section 3).

Given a query ``Q`` (CQ / UCQ / ∃FO⁺), master data ``Dm``, containment
constraints ``V`` (same languages, or INDs), and a partially closed ``D``,
decide whether ``D ∈ RCQ(Q, Dm, V)``.

The decider implements the Σᵖ₂ algorithm from the proof of Theorem 3.6,
justified by the characterizations of Proposition 3.3 (conditions C1/C2 for
CQ), Corollary 3.4 (C3 for INDs), and Corollary 3.5 (C4 for UCQ):

1. enumerate a CQ disjunct ``Q_i = (T_i, u_i)`` of ``Q``;
2. enumerate a *valid valuation* ``μ`` of ``T_i`` over the active domain;
3. reject the guess when ``μ(u_i) ∈ Q(D)``;
4. otherwise test ``(D ∪ μ(T_i), Dm) ⊨ V`` — when ``V`` consists of INDs,
   testing ``(μ(T_i), Dm) ⊨ V`` suffices (Corollary 3.4), since ``D`` is
   already partially closed and IND satisfaction is tuple-local;
5. a surviving guess is a counterexample: ``D`` is INCOMPLETE, and the
   instantiated tableau is returned as a certificate.  If no guess survives,
   ``D`` is COMPLETE.

FO / FP queries or constraints raise
:class:`~repro.errors.UndecidableConfigurationError` (Theorem 3.1); use
:mod:`repro.core.bounded` for best-effort semi-decision.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.constraints.containment import (ContainmentConstraint,
                                           satisfies_all,
                                           violated_constraints)
from repro.core.results import (IncompletenessCertificate, RCDPResult,
                                RCDPStatus, SearchStatistics)
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.errors import (NotPartiallyClosedError,
                          SearchBudgetExceededError,
                          UndecidableConfigurationError)
from repro.queries.tableau import Tableau
from repro.relational.instance import Instance

__all__ = ["decide_rcdp", "enumerate_missing_answers",
           "assert_decidable_configuration", "ensure_partially_closed"]

_DECIDABLE = frozenset({"CQ", "UCQ", "EFO"})


def assert_decidable_configuration(
        query: Any,
        constraints: Sequence[ContainmentConstraint]) -> None:
    """Raise unless ``(L_Q, L_C)`` is a decidable configuration.

    By Theorems 3.1 and 4.1, FO or FP on either side makes both problems
    undecidable.
    """
    language = getattr(query, "language", None)
    if language not in _DECIDABLE:
        raise UndecidableConfigurationError(
            f"L_Q = {language}: RCDP/RCQP are undecidable beyond ∃FO⁺ "
            f"(Theorem 3.1 / 4.1); use repro.core.bounded for a bounded "
            f"semi-decision")
    for constraint in constraints:
        if not constraint.is_decidable_language:
            raise UndecidableConfigurationError(
                f"containment constraint {constraint.name!r} is in "
                f"{constraint.language}: RCDP/RCQP are undecidable beyond "
                f"∃FO⁺ (Theorem 3.1 / 4.1); use repro.core.bounded for a "
                f"bounded semi-decision")


def ensure_partially_closed(
        database: Instance, master: Instance,
        constraints: Sequence[ContainmentConstraint]) -> None:
    """Raise :class:`NotPartiallyClosedError` unless ``(D, Dm) ⊨ V``."""
    violated = violated_constraints(database, master, constraints)
    if violated:
        names = ", ".join(c.name for c in violated)
        raise NotPartiallyClosedError(
            f"database is not partially closed: violates {names}")


def _extend_unvalidated(database: Instance,
                        facts: list[tuple[str, tuple]]) -> Instance:
    """``D ∪ Δ`` without re-validating domains (Δ may hold fresh values)."""
    contents = {name: set(rows) for name, rows in database}
    for name, row in facts:
        contents[name].add(row)
    return Instance(database.schema, contents, validate=False)


def decide_rcdp(query: Any, database: Instance, master: Instance,
                constraints: Sequence[ContainmentConstraint],
                *, check_partially_closed: bool = True,
                budget: int | None = None,
                use_ind_pruning: bool = True) -> RCDPResult:
    """Decide whether *database* is complete for *query* relative to
    ``(master, constraints)``.

    Parameters
    ----------
    query:
        A CQ, UCQ, or ∃FO⁺ query over the database schema.
    database, master:
        The partially closed database ``D`` and master data ``Dm``.
    constraints:
        Containment constraints ``V`` (CQ/UCQ/∃FO⁺ queries on the left).
    check_partially_closed:
        When True (default), verify ``(D, Dm) ⊨ V`` first and raise
        :class:`NotPartiallyClosedError` otherwise — RCDP is only defined
        for partially closed inputs.
    budget:
        Optional cap on the number of valuations examined; exceeding it
        raises :class:`SearchBudgetExceededError`.  The problem is
        Πᵖ₂-complete, so adversarial inputs are necessarily expensive.
    use_ind_pruning:
        When True (default), IND constraints prune the valuation
        enumeration row-by-row instead of being re-checked per candidate
        extension (Corollary 3.4 made operational).  Setting it to False
        is for the ablation benchmarks only — the verdict is identical.

    Returns
    -------
    RCDPResult
        COMPLETE, or INCOMPLETE with an
        :class:`~repro.core.results.IncompletenessCertificate`.
    """
    assert_decidable_configuration(query, constraints)
    query.validate(database.schema)
    if check_partially_closed:
        ensure_partially_closed(database, master, constraints)

    disjuncts = query.to_cq_disjuncts()
    tableaux = [Tableau(d, database.schema) for d in disjuncts]
    adom = ActiveDomain.build(
        instances=(database, master),
        queries=[query] + [c.query for c in constraints],
        tableaux=[t for t in tableaux if t.satisfiable])

    answers = query.evaluate(database)

    # IND constraints are tuple-local, so they prune the valuation
    # enumeration row-by-row (Corollary 3.4): a single instantiated tableau
    # row whose projection leaves the master projection kills the branch.
    # Only the remaining (non-IND) constraints need the full
    # ``(D ∪ Δ, Dm) ⊨ V`` check per surviving valuation.
    ind_projections: dict[str, list[tuple[tuple[int, ...], frozenset]]] = {}
    other_constraints = []
    for constraint in constraints:
        if use_ind_pruning and constraint.is_ind():
            relation, columns = constraint.ind_source()
            ind_projections.setdefault(relation, []).append(
                (columns, constraint.projection.evaluate(master)))
        else:
            other_constraints.append(constraint)

    def row_filter(relation: str, row: tuple) -> bool:
        for columns, allowed in ind_projections.get(relation, ()):
            if tuple(row[c] for c in columns) not in allowed:
                return False
        return True

    examined = 0
    constraint_checks = 0
    for tableau in tableaux:
        if not tableau.satisfiable:
            continue
        for valuation in iter_valid_valuations(
                tableau, adom, fresh="own",
                row_filter=row_filter if ind_projections else None):
            examined += 1
            if budget is not None and examined > budget:
                raise SearchBudgetExceededError(
                    f"RCDP budget of {budget} valuations exceeded")
            summary = tableau.summary_under(valuation)
            if summary in answers:
                continue
            delta = tableau.instantiate(valuation)
            constraint_checks += 1
            if not other_constraints:
                satisfied = True
            else:
                candidate = _extend_unvalidated(database, delta)
                satisfied = satisfies_all(candidate, master,
                                          other_constraints)
            if satisfied:
                stats = SearchStatistics(
                    valuations_examined=examined,
                    constraint_checks=constraint_checks)
                certificate = IncompletenessCertificate(
                    extension_facts=tuple(delta),
                    new_answer=summary,
                    disjunct_name=tableau.query.name)
                return RCDPResult(
                    status=RCDPStatus.INCOMPLETE,
                    certificate=certificate,
                    explanation=(
                        f"adding {len(delta)} fact(s) keeps V satisfied "
                        f"but produces the new answer {summary!r}"),
                    statistics=stats)

    stats = SearchStatistics(valuations_examined=examined,
                             constraint_checks=constraint_checks)
    return RCDPResult(
        status=RCDPStatus.COMPLETE,
        explanation=(
            "no valid valuation over the active domain extends D "
            "consistently with V while changing Q(D) "
            "(conditions C1/C2 hold)"),
        statistics=stats)


def enumerate_missing_answers(query: Any, database: Instance,
                              master: Instance,
                              constraints: Sequence[ContainmentConstraint],
                              *, limit: int | None = None,
                              check_partially_closed: bool = True,
                              ) -> frozenset[tuple]:
    """All answers the query could still gain over the active domain.

    Example 1.1 observes that when an employee supports at most ``k``
    customers and ``k'`` are known, "we need to add at most ``k − k'``
    tuples to make it complete": this function makes that kind of margin
    computable.  It returns every tuple ``s ∉ Q(D)`` such that some valid
    valuation over the active domain yields ``s`` via a constraint-
    consistent extension.  The database is relatively complete iff the
    result is empty (same enumeration as :func:`decide_rcdp`, without the
    early exit).

    *limit*, when given, truncates the enumeration once that many missing
    answers have been found (the set is then a lower bound).
    """
    assert_decidable_configuration(query, constraints)
    query.validate(database.schema)
    if check_partially_closed:
        ensure_partially_closed(database, master, constraints)

    disjuncts = query.to_cq_disjuncts()
    tableaux = [Tableau(d, database.schema) for d in disjuncts]
    adom = ActiveDomain.build(
        instances=(database, master),
        queries=[query] + [c.query for c in constraints],
        tableaux=[t for t in tableaux if t.satisfiable])
    answers = query.evaluate(database)

    ind_projections: dict[str, list[tuple[tuple[int, ...], frozenset]]] = {}
    other_constraints = []
    for constraint in constraints:
        if constraint.is_ind():
            relation, columns = constraint.ind_source()
            ind_projections.setdefault(relation, []).append(
                (columns, constraint.projection.evaluate(master)))
        else:
            other_constraints.append(constraint)

    def row_filter(relation: str, row: tuple) -> bool:
        for columns, allowed in ind_projections.get(relation, ()):
            if tuple(row[c] for c in columns) not in allowed:
                return False
        return True

    missing: set[tuple] = set()
    for tableau in tableaux:
        if not tableau.satisfiable:
            continue
        for valuation in iter_valid_valuations(
                tableau, adom, fresh="own",
                row_filter=row_filter if ind_projections else None):
            summary = tableau.summary_under(valuation)
            if summary in answers or summary in missing:
                continue
            if other_constraints:
                candidate = _extend_unvalidated(
                    database, tableau.instantiate(valuation))
                if not satisfies_all(candidate, master, other_constraints):
                    continue
            missing.add(summary)
            if limit is not None and len(missing) >= limit:
                return frozenset(missing)
    return frozenset(missing)
