"""RCDP — the relatively complete database problem (Section 3).

Given a query ``Q`` (CQ / UCQ / ∃FO⁺), master data ``Dm``, containment
constraints ``V`` (same languages, or INDs), and a partially closed ``D``,
decide whether ``D ∈ RCQ(Q, Dm, V)``.

The decider implements the Σᵖ₂ algorithm from the proof of Theorem 3.6,
justified by the characterizations of Proposition 3.3 (conditions C1/C2 for
CQ), Corollary 3.4 (C3 for INDs), and Corollary 3.5 (C4 for UCQ):

1. enumerate a CQ disjunct ``Q_i = (T_i, u_i)`` of ``Q``;
2. enumerate a *valid valuation* ``μ`` of ``T_i`` over the active domain;
3. reject the guess when ``μ(u_i) ∈ Q(D)``;
4. otherwise test ``(D ∪ μ(T_i), Dm) ⊨ V`` — when ``V`` consists of INDs,
   testing ``(μ(T_i), Dm) ⊨ V`` suffices (Corollary 3.4), since ``D`` is
   already partially closed and IND satisfaction is tuple-local;
5. a surviving guess is a counterexample: ``D`` is INCOMPLETE, and the
   instantiated tableau is returned as a certificate.  If no guess survives,
   ``D`` is COMPLETE.

The enumeration is *governed* (:mod:`repro.runtime`): a budget, deadline,
cancellation token, or injected fault can interrupt it at any valuation
boundary.  Under ``on_exhausted="partial"`` the decider then degrades
gracefully — it returns an :class:`~repro.core.results.RCDPStatus.EXHAUSTED`
result carrying the statistics accumulated so far and a resumable
:class:`~repro.runtime.checkpoint.SearchCheckpoint`; under the default
``"error"`` mode it raises :class:`~repro.errors.SearchBudgetExceededError`
with the same data attached.

FO / FP queries or constraints raise
:class:`~repro.errors.UndecidableConfigurationError` (Theorem 3.1); use
:mod:`repro.core.bounded` for best-effort semi-decision.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.constraints.containment import (ContainmentConstraint,
                                           satisfies_all,
                                           violated_constraints)
from repro.core.results import (IncompletenessCertificate,
                                MissingAnswersReport, RCDPResult,
                                RCDPStatus, SearchStatistics)
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.errors import (ExecutionInterrupted, NotPartiallyClosedError,
                          UndecidableConfigurationError)
from repro.queries.tableau import Tableau
from repro.relational.instance import Instance
from repro.runtime import (ExecutionGovernor, SearchCheckpoint,
                           resolve_governor, validate_exhaustion_mode)

__all__ = ["decide_rcdp", "enumerate_missing_answers",
           "missing_answers_report", "split_ind_constraints",
           "assert_decidable_configuration", "ensure_partially_closed"]

_DECIDABLE = frozenset({"CQ", "UCQ", "EFO"})

RowFilter = Callable[[str, tuple], bool]


def assert_decidable_configuration(
        query: Any,
        constraints: Sequence[ContainmentConstraint]) -> None:
    """Raise unless ``(L_Q, L_C)`` is a decidable configuration.

    By Theorems 3.1 and 4.1, FO or FP on either side makes both problems
    undecidable.
    """
    language = getattr(query, "language", None)
    if language not in _DECIDABLE:
        raise UndecidableConfigurationError(
            f"L_Q = {language}: RCDP/RCQP are undecidable beyond ∃FO⁺ "
            f"(Theorem 3.1 / 4.1); use repro.core.bounded for a bounded "
            f"semi-decision")
    for constraint in constraints:
        if not constraint.is_decidable_language:
            raise UndecidableConfigurationError(
                f"containment constraint {constraint.name!r} is in "
                f"{constraint.language}: RCDP/RCQP are undecidable beyond "
                f"∃FO⁺ (Theorem 3.1 / 4.1); use repro.core.bounded for a "
                f"bounded semi-decision")


def ensure_partially_closed(
        database: Instance, master: Instance,
        constraints: Sequence[ContainmentConstraint]) -> None:
    """Raise :class:`NotPartiallyClosedError` unless ``(D, Dm) ⊨ V``."""
    violated = violated_constraints(database, master, constraints)
    if violated:
        names = ", ".join(c.name for c in violated)
        raise NotPartiallyClosedError(
            f"database is not partially closed: violates {names}")


def _extend_unvalidated(database: Instance,
                        facts: list[tuple[str, tuple]]) -> Instance:
    """``D ∪ Δ`` without re-validating domains (Δ may hold fresh values)."""
    contents = {name: set(rows) for name, rows in database}
    for name, row in facts:
        contents[name].add(row)
    return Instance(database.schema, contents, validate=False)


def split_ind_constraints(
        constraints: Sequence[ContainmentConstraint], master: Instance,
        *, use_ind_pruning: bool = True,
        ) -> tuple[RowFilter | None, list[ContainmentConstraint]]:
    """Compile IND constraints into a tuple-local row filter.

    IND constraints are tuple-local, so they can prune the valuation
    enumeration row-by-row (Corollary 3.4 made operational): a single
    instantiated tableau row whose projection leaves the master projection
    kills the whole branch.  Returns ``(row_filter, other_constraints)``
    where *row_filter* is ``None`` when no IND is available (or pruning is
    disabled) and *other_constraints* are the ones that still need the
    full ``(D ∪ Δ, Dm) ⊨ V`` check per surviving valuation.
    """
    ind_projections: dict[str, list[tuple[tuple[int, ...], frozenset]]] = {}
    other_constraints: list[ContainmentConstraint] = []
    for constraint in constraints:
        if use_ind_pruning and constraint.is_ind():
            relation, columns = constraint.ind_source()
            ind_projections.setdefault(relation, []).append(
                (columns, constraint.projection.evaluate(master)))
        else:
            other_constraints.append(constraint)
    if not ind_projections:
        return None, other_constraints

    def row_filter(relation: str, row: tuple) -> bool:
        for columns, allowed in ind_projections.get(relation, ()):
            if tuple(row[c] for c in columns) not in allowed:
                return False
        return True

    return row_filter, other_constraints


def decide_rcdp(query: Any, database: Instance, master: Instance,
                constraints: Sequence[ContainmentConstraint],
                *, check_partially_closed: bool = True,
                budget: int | None = None,
                use_ind_pruning: bool = True,
                governor: ExecutionGovernor | None = None,
                on_exhausted: str = "error",
                resume_from: SearchCheckpoint | None = None) -> RCDPResult:
    """Decide whether *database* is complete for *query* relative to
    ``(master, constraints)``.

    Parameters
    ----------
    query:
        A CQ, UCQ, or ∃FO⁺ query over the database schema.
    database, master:
        The partially closed database ``D`` and master data ``Dm``.
    constraints:
        Containment constraints ``V`` (CQ/UCQ/∃FO⁺ queries on the left).
    check_partially_closed:
        When True (default), verify ``(D, Dm) ⊨ V`` first and raise
        :class:`NotPartiallyClosedError` otherwise — RCDP is only defined
        for partially closed inputs.
    budget:
        Shorthand for a governor capping the number of valuations
        examined.  The problem is Πᵖ₂-complete, so adversarial inputs are
        necessarily expensive.  Mutually exclusive with *governor*.
    use_ind_pruning:
        When True (default), IND constraints prune the valuation
        enumeration row-by-row instead of being re-checked per candidate
        extension (Corollary 3.4 made operational).  Setting it to False
        is for the ablation benchmarks only — the verdict is identical.
    governor:
        An :class:`~repro.runtime.ExecutionGovernor` checked at every
        valuation; may be shared with enclosing searches for unified
        accounting.
    on_exhausted:
        ``"error"`` (default): interruption raises
        :class:`~repro.errors.SearchBudgetExceededError` with statistics,
        partial result, and checkpoint attached.  ``"partial"``: the
        decider returns an ``EXHAUSTED`` result instead.
    resume_from:
        A checkpoint from a previous interrupted ``decide_rcdp`` run *on
        the same inputs*; the enumeration fast-forwards past the already-
        examined (and rejected) prefix without charging the governor, and
        statistics are reported cumulatively.

    Returns
    -------
    RCDPResult
        COMPLETE, INCOMPLETE with an
        :class:`~repro.core.results.IncompletenessCertificate`, or
        EXHAUSTED (only under ``on_exhausted="partial"``) with a
        checkpoint.  The checkpoint cursor is ``(tableau_index,
        valuations_consumed_in_that_tableau)``.
    """
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    assert_decidable_configuration(query, constraints)
    query.validate(database.schema)
    if check_partially_closed:
        ensure_partially_closed(database, master, constraints)

    disjuncts = query.to_cq_disjuncts()
    tableaux = [Tableau(d, database.schema) for d in disjuncts]
    adom = ActiveDomain.build(
        instances=(database, master),
        queries=[query] + [c.query for c in constraints],
        tableaux=[t for t in tableaux if t.satisfiable])

    answers = query.evaluate(database)

    row_filter, other_constraints = split_ind_constraints(
        constraints, master, use_ind_pruning=use_ind_pruning)

    start_tableau, start_position = 0, 0
    base_stats = SearchStatistics()
    if resume_from is not None:
        resume_from.require("rcdp")
        start_tableau, start_position = resume_from.cursor
        base_stats = resume_from.base_statistics()

    examined = 0
    constraint_checks = 0
    tableau_index = start_tableau
    position = start_position
    try:
        for tableau_index, tableau in enumerate(tableaux):
            if tableau_index < start_tableau or not tableau.satisfiable:
                continue
            to_skip = (start_position if tableau_index == start_tableau
                       else 0)
            position = to_skip
            for valuation in iter_valid_valuations(
                    tableau, adom, fresh="own", row_filter=row_filter):
                if to_skip > 0:
                    to_skip -= 1
                    continue
                if governor is not None:
                    governor.tick("valuations")
                examined += 1
                summary = tableau.summary_under(valuation)
                if summary in answers:
                    position += 1
                    continue
                delta = tableau.instantiate(valuation)
                constraint_checks += 1
                if not other_constraints:
                    satisfied = True
                else:
                    candidate = _extend_unvalidated(database, delta)
                    satisfied = satisfies_all(candidate, master,
                                              other_constraints)
                if satisfied:
                    stats = base_stats.merged(SearchStatistics(
                        valuations_examined=examined,
                        constraint_checks=constraint_checks))
                    certificate = IncompletenessCertificate(
                        extension_facts=tuple(delta),
                        new_answer=summary,
                        disjunct_name=tableau.query.name)
                    return RCDPResult(
                        status=RCDPStatus.INCOMPLETE,
                        certificate=certificate,
                        explanation=(
                            f"adding {len(delta)} fact(s) keeps V satisfied "
                            f"but produces the new answer {summary!r}"),
                        statistics=stats)
                position += 1
    except ExecutionInterrupted as interrupt:
        stats = base_stats.merged(SearchStatistics(
            valuations_examined=examined,
            constraint_checks=constraint_checks))
        checkpoint = SearchCheckpoint(
            procedure="rcdp", cursor=(tableau_index, position),
            statistics=stats)
        partial = RCDPResult(
            status=RCDPStatus.EXHAUSTED,
            explanation=(
                f"search interrupted ({interrupt.reason}) after "
                f"{stats.valuations_examined} valuation(s); resume from "
                f"the checkpoint to continue"),
            statistics=stats,
            checkpoint=checkpoint,
            interrupted=interrupt.reason)
        if on_exhausted == "error":
            interrupt.statistics = stats
            interrupt.partial_result = partial
            interrupt.checkpoint = checkpoint
            raise
        return partial

    stats = base_stats.merged(SearchStatistics(
        valuations_examined=examined,
        constraint_checks=constraint_checks))
    return RCDPResult(
        status=RCDPStatus.COMPLETE,
        explanation=(
            "no valid valuation over the active domain extends D "
            "consistently with V while changing Q(D) "
            "(conditions C1/C2 hold)"),
        statistics=stats)


def missing_answers_report(query: Any, database: Instance,
                           master: Instance,
                           constraints: Sequence[ContainmentConstraint],
                           *, limit: int | None = None,
                           check_partially_closed: bool = True,
                           budget: int | None = None,
                           governor: ExecutionGovernor | None = None,
                           on_exhausted: str = "partial",
                           resume_from: SearchCheckpoint | None = None,
                           ) -> MissingAnswersReport:
    """All answers the query could still gain over the active domain.

    Example 1.1 observes that when an employee supports at most ``k``
    customers and ``k'`` are known, "we need to add at most ``k − k'``
    tuples to make it complete": this function makes that kind of margin
    computable.  It reports every tuple ``s ∉ Q(D)`` such that some valid
    valuation over the active domain yields ``s`` via a constraint-
    consistent extension.  The database is relatively complete iff the
    full enumeration is empty (same enumeration as :func:`decide_rcdp`,
    without the early exit).

    *limit* truncates the enumeration once that many missing answers have
    been found; a *budget*/*governor* interrupts it mid-search.  In both
    cases ``exhaustive`` is False and the answer set is a lower bound; an
    interrupted report additionally carries a resumable checkpoint whose
    payload preserves the answers already found (cursor layout:
    ``(tableau_index, valuations_consumed)``).  *on_exhausted* defaults
    to ``"partial"`` here — a truncated margin is still useful — but
    ``"error"`` gives strict-mode callers the historical raising behavior
    with the partial report attached to the exception.
    """
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    assert_decidable_configuration(query, constraints)
    query.validate(database.schema)
    if check_partially_closed:
        ensure_partially_closed(database, master, constraints)

    disjuncts = query.to_cq_disjuncts()
    tableaux = [Tableau(d, database.schema) for d in disjuncts]
    adom = ActiveDomain.build(
        instances=(database, master),
        queries=[query] + [c.query for c in constraints],
        tableaux=[t for t in tableaux if t.satisfiable])
    answers = query.evaluate(database)

    row_filter, other_constraints = split_ind_constraints(
        constraints, master)

    start_tableau, start_position = 0, 0
    base_stats = SearchStatistics()
    missing: set[tuple] = set()
    if resume_from is not None:
        resume_from.require("missing")
        start_tableau, start_position = resume_from.cursor
        base_stats = resume_from.base_statistics()
        missing.update(resume_from.payload)

    examined = 0
    constraint_checks = 0
    tableau_index = start_tableau
    position = start_position

    def _stats() -> SearchStatistics:
        return base_stats.merged(SearchStatistics(
            valuations_examined=examined,
            constraint_checks=constraint_checks))

    try:
        for tableau_index, tableau in enumerate(tableaux):
            if tableau_index < start_tableau or not tableau.satisfiable:
                continue
            to_skip = (start_position if tableau_index == start_tableau
                       else 0)
            position = to_skip
            for valuation in iter_valid_valuations(
                    tableau, adom, fresh="own", row_filter=row_filter):
                if to_skip > 0:
                    to_skip -= 1
                    continue
                if governor is not None:
                    governor.tick("valuations")
                examined += 1
                position += 1
                summary = tableau.summary_under(valuation)
                if summary in answers or summary in missing:
                    continue
                if other_constraints:
                    constraint_checks += 1
                    candidate = _extend_unvalidated(
                        database, tableau.instantiate(valuation))
                    if not satisfies_all(candidate, master,
                                         other_constraints):
                        continue
                missing.add(summary)
                if limit is not None and len(missing) >= limit:
                    return MissingAnswersReport(
                        answers=frozenset(missing), exhaustive=False,
                        statistics=_stats())
    except ExecutionInterrupted as interrupt:
        checkpoint = SearchCheckpoint(
            procedure="missing", cursor=(tableau_index, position),
            statistics=_stats(),
            payload=tuple(sorted(missing, key=repr)))
        report = MissingAnswersReport(
            answers=frozenset(missing), exhaustive=False,
            statistics=_stats(), checkpoint=checkpoint,
            interrupted=interrupt.reason)
        if on_exhausted == "error":
            interrupt.statistics = report.statistics
            interrupt.partial_result = report
            interrupt.checkpoint = checkpoint
            raise
        return report
    return MissingAnswersReport(
        answers=frozenset(missing), exhaustive=True, statistics=_stats())


def enumerate_missing_answers(query: Any, database: Instance,
                              master: Instance,
                              constraints: Sequence[ContainmentConstraint],
                              *, limit: int | None = None,
                              check_partially_closed: bool = True,
                              budget: int | None = None,
                              governor: ExecutionGovernor | None = None,
                              on_exhausted: str = "error",
                              resume_from: SearchCheckpoint | None = None,
                              ) -> frozenset[tuple]:
    """Plain-set façade over :func:`missing_answers_report`.

    Historically this enumeration accepted no budget at all and could hang
    on adversarial inputs even though :func:`decide_rcdp` was capped; it
    is now governed identically.  Under ``on_exhausted="partial"`` an
    interrupted enumeration returns the lower-bound set found so far (use
    :func:`missing_answers_report` when you also need the checkpoint);
    under the default ``"error"`` it raises, with the partial report
    attached to the exception.
    """
    return missing_answers_report(
        query, database, master, constraints, limit=limit,
        check_partially_closed=check_partially_closed, budget=budget,
        governor=governor, on_exhausted=on_exhausted,
        resume_from=resume_from).answers
