"""Witness construction and data-collection guidance (Section 2.3).

The characterizations are constructive: an INCOMPLETE verdict comes with a
certificate extension, and repeatedly *applying* certificates drives a
database toward relative completeness.  :func:`make_complete` implements
that loop — it is the executable form of the paper's paradigm (2), "guidance
for what data should be collected in a database".

The loop need not terminate in general (the query may not be relatively
complete at all — paradigm (3) then says the *master data* must grow), so it
is bounded by ``max_rounds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.analysis.diagnostics import Report
from repro.constraints.containment import (ContainmentConstraint,
                                           satisfies_all)
from repro.core.rcdp import (_extend_unvalidated, decide_rcdp,
                             resolve_analysis, resolve_context)
from repro.core.results import RCDPResult, RCDPStatus, SearchStatistics
from repro.engine import EvaluationContext
from repro.errors import ExecutionInterrupted, ReproError
from repro.obs import obs_of, obs_span, traced
from repro.relational.instance import Instance
from repro.runtime import ExecutionGovernor, validate_exhaustion_mode

__all__ = ["CompletionOutcome", "make_complete", "minimize_witness"]


@dataclass(frozen=True)
class CompletionOutcome:
    """Result of :func:`make_complete`.

    Attributes
    ----------
    database:
        The final database (the input extended with all applied
        certificates).
    complete:
        True when the final database is relatively complete for the query.
    rounds:
        Number of certificates applied.
    added_facts:
        All facts added across rounds, in application order.
    """

    database: Instance
    complete: bool
    rounds: int
    added_facts: tuple[tuple[str, tuple], ...]
    #: Set when a governed run was interrupted mid-completion
    #: (``"budget"``, ``"deadline"``, or ``"cancelled"``); the partially
    #: completed database and the facts applied so far are preserved.
    interrupted: str | None = None
    #: Search counters accumulated across all completion rounds; in
    #: particular ``analysis_warnings`` carries the static analyzer's
    #: warning count for the scenario (the pass runs once up front).
    statistics: SearchStatistics = SearchStatistics()

    def __repr__(self) -> str:
        state = "complete" if self.complete else "still incomplete"
        if self.interrupted:
            state += f", interrupted: {self.interrupted}"
        return (f"CompletionOutcome[{state} after {self.rounds} round(s), "
                f"{len(self.added_facts)} fact(s) added]")


@traced("make_complete")
def make_complete(query: Any, database: Instance, master: Instance,
                  constraints: Sequence[ContainmentConstraint],
                  *, max_rounds: int = 32,
                  governor: ExecutionGovernor | None = None,
                  on_exhausted: str = "partial",
                  use_engine: bool = True,
                  context: EvaluationContext | None = None,
                  backend: str | None = None,
                  analyze: bool = True,
                  analysis: Report | None = None,
                  workers: int | None = 1,
                  ) -> CompletionOutcome:
    """Repeatedly apply incompleteness certificates until the database is
    complete for *query* relative to ``(master, constraints)`` or
    *max_rounds* certificates have been applied.

    Each round asks the exact RCDP decider for a counterexample extension
    and merges it into the database.  Certificates built over the active
    domain may contain fresh placeholder values — in a real deployment these
    mark *which* records are missing (e.g. "a domestic customer with this
    id"); here they make the final database a genuine member of
    ``RCQ(Q, Dm, V)`` whenever the loop converges.

    A *governor* bounds the whole loop (all rounds charge the same
    budget).  When it trips, ``on_exhausted="partial"`` (default) returns
    the partially completed database with ``interrupted`` set — the facts
    already collected remain valid guidance — while ``"error"``
    propagates the governor's exception.

    The static analyzer's decider pass runs *once* up front (unless
    *analyze* is False or a precomputed *analysis* report is supplied)
    and is shared by every round's RCDP decision; its warning count is
    reported once in ``outcome.statistics.analysis_warnings``.
    """
    from dataclasses import replace

    validate_exhaustion_mode(on_exhausted)
    obs = obs_of(governor)
    context = resolve_context(context, use_engine, backend)
    with obs_span(obs, "analyze"):
        analysis = resolve_analysis(query, constraints, database, master,
                                    analysis, analyze)
    analysis_stats = SearchStatistics(
        analysis_warnings=len(analysis.warnings)
        if analysis is not None else 0)
    totals = SearchStatistics()

    def _merge(verdict_stats: SearchStatistics) -> None:
        # The shared report's warnings would be recounted every round;
        # they are added exactly once via analysis_stats instead.
        nonlocal totals
        totals = totals.merged(replace(verdict_stats,
                                       analysis_warnings=0))

    current = database
    added: list[tuple[str, tuple]] = []
    rounds_done = 0
    try:
        for round_index in range(max_rounds):
            rounds_done = round_index
            verdict: RCDPResult = decide_rcdp(
                query, current, master, constraints,
                check_partially_closed=(round_index == 0),
                governor=governor, context=context,
                use_engine=context is not None, analysis=analysis,
                analyze=False, workers=workers)
            _merge(verdict.statistics)
            if verdict.status is RCDPStatus.COMPLETE:
                return CompletionOutcome(
                    database=current, complete=True, rounds=round_index,
                    added_facts=tuple(added),
                    statistics=totals.merged(analysis_stats))
            certificate = verdict.certificate
            assert certificate is not None
            new_facts = [
                fact for fact in certificate.extension_facts
                if fact[1] not in current.relation(fact[0])]
            if not new_facts:  # pragma: no cover - certificate always adds
                break
            added.extend(new_facts)
            current = _extend_unvalidated(current, new_facts)
        verdict = decide_rcdp(query, current, master, constraints,
                              check_partially_closed=False,
                              governor=governor, context=context,
                              use_engine=context is not None,
                              analysis=analysis, analyze=False,
                              workers=workers)
        _merge(verdict.statistics)
    except ExecutionInterrupted as interrupt:
        if on_exhausted == "error":
            raise
        return CompletionOutcome(
            database=current, complete=False, rounds=rounds_done,
            added_facts=tuple(added), interrupted=interrupt.reason,
            statistics=totals.merged(analysis_stats))
    return CompletionOutcome(
        database=current,
        complete=verdict.status is RCDPStatus.COMPLETE,
        rounds=max_rounds,
        added_facts=tuple(added),
        statistics=totals.merged(analysis_stats))


def minimize_witness(query: Any, database: Instance, master: Instance,
                     constraints: Sequence[ContainmentConstraint],
                     *, use_engine: bool = True,
                     context: EvaluationContext | None = None,
                     backend: str | None = None,
                     governor: ExecutionGovernor | None = None) -> Instance:
    """Shrink a relatively complete database while keeping it complete.

    RCQP witnesses (and completion results) can contain more facts than
    necessary; this greedily drops facts whose removal preserves both
    partial closure and relative completeness.  The result is *minimal*
    (no single fact can be removed) but not necessarily minimum.

    Raises :class:`~repro.errors.ReproError` if *database* is not
    relatively complete to begin with.
    """
    context = resolve_context(context, use_engine, backend)
    obs = obs_of(governor)
    analysis = resolve_analysis(query, constraints, database, master,
                                None, True)
    verdict = decide_rcdp(query, database, master, constraints,
                          context=context,
                          use_engine=context is not None,
                          analysis=analysis, analyze=False,
                          governor=governor)
    if verdict.status is not RCDPStatus.COMPLETE:
        raise ReproError(
            "minimize_witness requires a relatively complete database")
    current = database
    changed = True
    with obs_span(obs, "witness_minimize"):
        while changed:
            changed = False
            for name, row in sorted(current.facts(), key=repr):
                contents = {rel_name: set(rows)
                            for rel_name, rows in current}
                contents[name] = contents[name] - {row}
                candidate = Instance(current.schema, contents,
                                     validate=False)
                if not satisfies_all(candidate, master, constraints,
                                     context=context):
                    continue
                shrunk = decide_rcdp(query, candidate, master, constraints,
                                     check_partially_closed=False,
                                     context=context,
                                     use_engine=context is not None,
                                     analysis=analysis, analyze=False,
                                     governor=governor)
                if shrunk.status is RCDPStatus.COMPLETE:
                    current = candidate
                    changed = True
                    break
    return current
